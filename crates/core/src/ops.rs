//! The molecule algebra (Def. 8–10, Theorems 2–3).
//!
//! [`Engine`] couples a [`Database`] with the copy-[`Provenance`] that the
//! propagation function `prop` needs, and exposes the operators:
//!
//! * **α** — molecule-type definition ([`Engine::define`], Def. 8),
//! * **Σ** — molecule-type restriction ([`Engine::restrict`], Def. 10),
//! * **Π** — molecule-type projection ([`Engine::project`]),
//! * **X** — molecule-type cartesian product ([`Engine::product`]),
//! * **Ω** — molecule-type union ([`Engine::union`]),
//! * **Δ** — molecule-type difference ([`Engine::difference`]),
//! * **Ψ** — intersection, defined — exactly as in §3.2 — as
//!   `Δ(mt1, Δ(mt1, mt2))` ([`Engine::intersection`]).
//!
//! Every operator follows the Fig. 5 pipeline: an operation-specific action
//! produces a *result set* (structure + molecules, expressed over canonical
//! base atoms), `prop` materializes it into the
//! enlarged database DB′ as renamed atom types and inherited link types
//! (Def. 9), and the closing molecule-type definition yields the result.
//! Theorems 2–3 — every operator output is a valid molecule type over DB′ —
//! are checked *experimentally* by [`Engine::verify_closure`], which
//! re-derives `m_dom(md)` over DB′ and compares.
//!
//! ### Projection caveat (reconstructed from \[Mi88a\])
//!
//! Π removes structure nodes (and, optionally, attributes). The kept node
//! set must be *predecessor-closed*: every kept node keeps all its incoming
//! edges. Dropping one incoming edge of a kept diamond node would change
//! which atoms the ∀/∃ containment of Def. 6 admits, so the projected
//! molecules would no longer be total over the projected description — the
//! exact correspondence Def. 9 promises would break. Branch pruning (the
//! SELECT-clause use case of §4) always satisfies the rule.

use crate::derive::{
    derive_bitset_pruned, derive_molecules, derive_one, DeriveOptions, Strategy,
};
use crate::molecule::{Molecule, MoleculeType};
use crate::provenance::Provenance;
use crate::qual::{CmpOp, NodeConjunct, QualExpr};
use crate::structure::{finalize, MoleculeStructure, MsEdge, MsNode};
use crate::trace::{OpTrace, Stage, TraceLog};
use mad_model::{
    AtomId, AtomTypeDef, AttrDef, AttrType, BitSet, FxHashMap, LinkTypeDef, MadError, Result,
    Value,
};
use mad_storage::database::Direction;
use mad_storage::{Database, IndexKind};
use std::ops::Bound;

/// How a pushed conjunct's candidate bitset was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Postings of a secondary [`mad_storage::AttrIndex`].
    Index,
    /// A filtered scan of the atom-type occurrence.
    Scan,
}

/// The pushed conjuncts of one structure node and how they were evaluated.
#[derive(Clone, Debug)]
pub struct NodePushdown {
    /// The structure node the conjuncts restrict.
    pub node: usize,
    /// Each pushed conjunct with its access path.
    pub conjuncts: Vec<(NodeConjunct, AccessPath)>,
}

/// The qualification-pushdown plan for one derivation: per-node candidate
/// bitsets (`prune[n]`) plus the per-conjunct access-path report EXPLAIN
/// renders.
#[derive(Clone, Debug, Default)]
pub struct PushdownPlan {
    /// Per structure node: the slots satisfying all pushed conjuncts of the
    /// node (`None` when nothing was pushable there).
    pub prune: Vec<Option<BitSet>>,
    /// Report entries, one per node with pushed conjuncts.
    pub nodes: Vec<NodePushdown>,
}

/// Classify the pushable conjuncts of `qual` per structure node: which
/// access path each would use, without materializing any candidate bitset.
/// EXPLAIN consumes this directly; [`plan_pushdown`] builds the bitsets on
/// top of it, so report and execution can never disagree. Conjuncts with
/// out-of-range node or attribute references (possible when the
/// qualification was never validated against `md`) are skipped rather than
/// panicking.
pub(crate) fn classify_pushdown(
    db: &Database,
    md: &MoleculeStructure,
    qual: &QualExpr,
) -> Vec<NodePushdown> {
    let mut nodes: Vec<NodePushdown> = Vec::new();
    for c in qual.node_conjuncts() {
        let Some(node) = md.nodes().get(c.node) else {
            continue;
        };
        if db.schema().atom_type(node.ty).attrs.get(c.attr).is_none() {
            continue;
        }
        let access = if index_probe_key(db, node.ty, c.attr, c.op, &c.value).is_some() {
            AccessPath::Index
        } else {
            AccessPath::Scan
        };
        match nodes.iter_mut().find(|n| n.node == c.node) {
            Some(entry) => entry.conjuncts.push((c, access)),
            None => nodes.push(NodePushdown {
                node: c.node,
                conjuncts: vec![(c, access)],
            }),
        }
    }
    nodes
}

/// Extract the top-level `node.attr op const` conjuncts of `qual` and
/// evaluate each into a slot bitset — through a secondary index when one
/// serves the comparison, by scanning the occurrence otherwise. This is
/// restriction pushdown (benchmark B4) generalized from the root to
/// *every* structure node; `derive_bitset_pruned` consumes the result.
pub fn plan_pushdown(db: &Database, md: &MoleculeStructure, qual: &QualExpr) -> PushdownPlan {
    let nodes = classify_pushdown(db, md, qual);
    let mut prune: Vec<Option<BitSet>> = vec![None; md.node_count()];
    for entry in &nodes {
        let ty = md.nodes()[entry.node].ty;
        for (c, access) in &entry.conjuncts {
            let bits = conjunct_bitset(db, ty, c, *access);
            match &mut prune[entry.node] {
                slot @ None => *slot = Some(bits),
                Some(prev) => prev.intersect_with(&bits),
            }
        }
    }
    PushdownPlan { prune, nodes }
}

/// Can a secondary index serve `(attr, op, value)` on atom type `ty` with
/// the *same semantics* as the `sql_cmp` scan path? Returns the probe key
/// when it can.
///
/// Index keys compare with `Value`'s total order, which ranks variants
/// before values (`Int(5) < Float(0.0)`), while scans and the final
/// qualification filter compare numerically via `sql_cmp`. A probe is
/// therefore only sound once the constant is coerced into the attribute's
/// declared domain and actually lands there (an `Int` constant widens into
/// a `Float` attribute; a fractional `Float` against an `Int` attribute
/// does not, and must fall back to the scan). Range probes additionally
/// need an ordered backend.
pub(crate) fn index_probe_key(
    db: &Database,
    ty: mad_model::AtomTypeId,
    attr: usize,
    op: CmpOp,
    value: &Value,
) -> Option<Value> {
    let attr_ty = db.schema().atom_type(ty).attrs.get(attr)?.ty;
    let key = value.clone().coerce(attr_ty);
    if key.attr_type() != Some(attr_ty) {
        return None;
    }
    let kind = db.index_kind(ty, attr)?;
    let served = match op {
        CmpOp::Eq => true,
        CmpOp::Ne => false,
        _ => kind == IndexKind::Ordered,
    };
    served.then_some(key)
}

/// Index lookup for `(attr, op, key)` — the one place that maps a
/// comparison operator onto index probes, shared by root preselection and
/// per-node pushdown. `key` must come from [`index_probe_key`].
fn index_lookup(
    db: &Database,
    ty: mad_model::AtomTypeId,
    attr: usize,
    op: CmpOp,
    key: &Value,
) -> Option<Vec<AtomId>> {
    match op {
        CmpOp::Eq => db.lookup_eq(ty, attr, key).map(|s| s.to_vec()),
        CmpOp::Lt => db.lookup_range(ty, attr, Bound::Unbounded, Bound::Excluded(key)),
        CmpOp::Le => db.lookup_range(ty, attr, Bound::Unbounded, Bound::Included(key)),
        CmpOp::Gt => db.lookup_range(ty, attr, Bound::Excluded(key), Bound::Unbounded),
        CmpOp::Ge => db.lookup_range(ty, attr, Bound::Included(key), Bound::Unbounded),
        CmpOp::Ne => None,
    }
}

/// Evaluate one classified conjunct into the bitset of satisfying slots.
fn conjunct_bitset(
    db: &Database,
    ty: mad_model::AtomTypeId,
    c: &NodeConjunct,
    access: AccessPath,
) -> BitSet {
    if access == AccessPath::Index {
        if let Some(ids) = index_probe_key(db, ty, c.attr, c.op, &c.value)
            .and_then(|key| index_lookup(db, ty, c.attr, c.op, &key))
        {
            return ids.iter().map(|id| id.slot as usize).collect();
        }
    }
    db.atoms_of(ty)
        .filter(|(_, tuple)| {
            tuple
                .get(c.attr)
                .and_then(|v| v.sql_cmp(&c.value))
                .is_some_and(|ord| c.op.test(ord))
        })
        .map(|(id, _)| id.slot as usize)
        .collect()
}

/// A result set `rst = <mname, rsd, rsv>` (Def. 9): the output of an
/// operation-specific action, expressed over canonical (base) types and
/// atoms, before propagation.
#[derive(Clone, Debug)]
struct ResultSet {
    name: String,
    structure: MoleculeStructure,
    molecules: Vec<Molecule>,
}

/// The molecule-algebra engine: database + provenance + optional tracing.
#[derive(Debug, Default)]
pub struct Engine {
    db: Database,
    prov: Provenance,
    tracing: bool,
    trace_log: TraceLog,
    strategy_override: Option<Strategy>,
}

impl Engine {
    /// Wrap a database.
    pub fn new(db: Database) -> Self {
        Engine {
            db,
            prov: Provenance::new(),
            tracing: false,
            trace_log: TraceLog::new(),
            strategy_override: None,
        }
    }

    /// The derivation strategy the query layer should use. Defaults to
    /// [`Strategy::Bitset`] — a [`mad_storage::CsrSnapshot`] is always
    /// available (built lazily, cached per database version) — unless an
    /// explicit override was set via [`Engine::set_preferred_strategy`].
    pub fn preferred_strategy(&self) -> Strategy {
        self.strategy_override.unwrap_or(Strategy::Bitset)
    }

    /// Override the strategy the query layer picks (`None` restores the
    /// automatic choice).
    pub fn set_preferred_strategy(&mut self, strategy: Option<Strategy>) {
        self.strategy_override = strategy;
    }

    /// The underlying database (grows with every operator application).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access, for loading data and DDL.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Swap the engine's database for a fresh image (the session layer uses
    /// this to re-sync with a shared handle's committed state), returning
    /// the old one. Provenance entries referring to derived types of the
    /// old image become inert: they are only consulted for atoms of
    /// molecule types built over that image.
    pub fn replace_db(&mut self, db: Database) -> Database {
        std::mem::replace(&mut self.db, db)
    }

    /// The provenance registry.
    pub fn provenance(&self) -> &Provenance {
        &self.prov
    }

    /// Enable Fig.-5-style stage tracing.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Recorded operator traces.
    pub fn trace_log(&self) -> &TraceLog {
        &self.trace_log
    }

    fn record(&mut self, trace: OpTrace) {
        if self.tracing {
            self.trace_log.ops.push(trace);
        }
    }

    /// A [`Stage::Derivation`] describing how the last derivation over
    /// the engine's database evaluated: strategy, snapshot reuse vs CSR
    /// re-freeze, and how many root slots it visited.
    fn derivation_stage(&self, opts: &DeriveOptions, derived: usize) -> Stage {
        let (csr_rebuilt, csr_pairs) = self.db.csr_rebuild_stats().unwrap_or((0, 0));
        Stage::Derivation {
            strategy: format!("{:?}", opts.strategy),
            csr_rebuilt,
            csr_pairs,
            roots: opts.roots.as_ref().map_or(derived, Vec::len),
        }
    }

    // ------------------------------------------------------------------
    // α — molecule-type definition (Def. 8)
    // ------------------------------------------------------------------

    /// `α[mname, G](C)`: derive the molecule type of `md` over the current
    /// database.
    pub fn define(&mut self, name: &str, md: MoleculeStructure) -> Result<MoleculeType> {
        self.define_with(name, md, &DeriveOptions::default())
    }

    /// [`Engine::define`] with explicit derivation options (strategy,
    /// pre-selected roots).
    pub fn define_with(
        &mut self,
        name: &str,
        md: MoleculeStructure,
        opts: &DeriveOptions,
    ) -> Result<MoleculeType> {
        let molecules = derive_molecules(&self.db, &md, opts)?;
        let mut trace = OpTrace::new("α");
        trace.push(self.derivation_stage(opts, molecules.len()));
        trace.push(Stage::Alpha {
            name: name.to_owned(),
            molecules: molecules.len(),
        });
        self.record(trace);
        Ok(MoleculeType {
            name: name.to_owned(),
            structure: md,
            molecules,
        })
    }

    // ------------------------------------------------------------------
    // Σ — molecule-type restriction (Def. 10)
    // ------------------------------------------------------------------

    /// `Σ[restr(md)](mt)`: keep the molecules qualifying under `qual`,
    /// propagate, and re-define over DB′.
    pub fn restrict(&mut self, mt: &MoleculeType, qual: &QualExpr) -> Result<MoleculeType> {
        qual.validate(&mt.structure, self.db.schema())?;
        let kept: Vec<Molecule> = mt
            .molecules
            .iter()
            .filter(|m| qual.qualifies(&self.db, m))
            .cloned()
            .collect();
        let mut trace = OpTrace::new("Σ");
        trace.push(Stage::OpSpecific(format!(
            "qual filter: {} → {} molecules ({})",
            mt.molecules.len(),
            kept.len(),
            qual.render(&mt.structure, self.db.schema())
        )));
        let rst = ResultSet {
            name: format!("{}_restr", mt.name),
            structure: self.canonical_structure(&mt.structure)?,
            molecules: kept
                .iter()
                .map(|m| m.map_atoms(|a| self.prov.canonical_atom(a)))
                .collect(),
        };
        self.prop_and_close(rst, trace)
    }

    /// Restriction *pushed into* the definition (the PRIMA evaluation
    /// style, benchmark B4): root-level conjuncts of `qual` pre-select root
    /// atoms (via secondary indexes when available, a root-type scan
    /// otherwise) before any molecule is built; the full formula is then
    /// applied to the derived candidates. Produces the same molecule type
    /// as `Σ[qual](α[name](md))`, minus the intermediate propagation.
    pub fn define_restricted(
        &mut self,
        name: &str,
        md: MoleculeStructure,
        qual: &QualExpr,
        strategy: Strategy,
    ) -> Result<MoleculeType> {
        qual.validate(&md, self.db.schema())?;
        let candidates = self.pushdown_candidates(&md, qual, strategy)?;
        let total = candidates.len();
        let kept: Vec<Molecule> = candidates
            .into_iter()
            .filter(|m| qual.qualifies(&self.db, m))
            .collect();
        let mut trace = OpTrace::new("Σ∘α (pushdown)");
        let (csr_rebuilt, csr_pairs) = self.db.csr_rebuild_stats().unwrap_or((0, 0));
        trace.push(Stage::Derivation {
            strategy: format!("{strategy:?}"),
            csr_rebuilt,
            csr_pairs,
            roots: total,
        });
        trace.push(Stage::OpSpecific(format!(
            "root preselection + qual: {} candidates → {} molecules",
            total,
            kept.len()
        )));
        let rst = ResultSet {
            name: name.to_owned(),
            structure: self.canonical_structure(&md)?,
            molecules: kept
                .iter()
                .map(|m| m.map_atoms(|a| self.prov.canonical_atom(a)))
                .collect(),
        };
        self.prop_and_close(rst, trace)
    }

    // ------------------------------------------------------------------
    // Pure evaluation (no propagation) — used by benchmarks and by callers
    // that only need the molecule sets, not a registered molecule type.
    // ------------------------------------------------------------------

    /// Derive the molecule set of `md` without building a molecule type
    /// (pure; the database is not enlarged).
    pub fn evaluate(&self, md: &MoleculeStructure, opts: &DeriveOptions) -> Result<Vec<Molecule>> {
        derive_molecules(&self.db, md, opts)
    }

    /// Pushdown evaluation: root conjuncts of `qual` pre-select roots, the
    /// molecule candidates are derived, the full formula filters them.
    /// Pure — same molecules as [`Engine::define_restricted`] before its
    /// propagation step.
    pub fn evaluate_restricted(
        &self,
        md: &MoleculeStructure,
        qual: &QualExpr,
        strategy: Strategy,
    ) -> Result<Vec<Molecule>> {
        qual.validate(md, self.db.schema())?;
        Ok(self
            .pushdown_candidates(md, qual, strategy)?
            .into_iter()
            .filter(|m| qual.qualifies(&self.db, m))
            .collect())
    }

    /// Candidate molecules under restriction pushdown.
    ///
    /// * [`Strategy::Bitset`] and [`Strategy::Parallel`]: the generalized
    ///   plan — per-node conjunct bitsets prune molecules *during*
    ///   traversal (and the root bitset pre-selects the root set), see
    ///   [`plan_pushdown`]. The plan is computed **once**; parallel workers
    ///   share it read-only alongside the `Arc`'d CSR snapshot.
    /// * every other strategy: the classic root-only preselection
    ///   ([`Engine::preselect_roots`]) followed by a full derivation.
    ///
    /// Either way the caller still applies the complete formula, so all
    /// paths return the same final molecule set.
    fn pushdown_candidates(
        &self,
        md: &MoleculeStructure,
        qual: &QualExpr,
        strategy: Strategy,
    ) -> Result<Vec<Molecule>> {
        match strategy {
            Strategy::Bitset | Strategy::Parallel(_) => {
                let plan = plan_pushdown(&self.db, md, qual);
                let root_ty = md.root_node().ty;
                let roots: Vec<AtomId> = match &plan.prune[md.root()] {
                    Some(q) => q.iter().map(|slot| AtomId::new(root_ty, slot as u32)).collect(),
                    None => self.db.atom_ids_of(root_ty),
                };
                match strategy {
                    Strategy::Parallel(_) => crate::derive::derive_bitset_parallel(
                        &self.db,
                        md,
                        &roots,
                        &plan.prune,
                        strategy.effective_parallelism(),
                    ),
                    _ => derive_bitset_pruned(&self.db, md, &roots, &plan.prune),
                }
            }
            _ => {
                let roots = self.preselect_roots(md, qual);
                let opts = DeriveOptions { strategy, roots };
                derive_molecules(&self.db, md, &opts)
            }
        }
    }

    /// Naive evaluation: derive the *whole* molecule set, then filter
    /// (the un-pushed Σ∘α baseline of benchmark B4). Pure.
    pub fn evaluate_filtered(
        &self,
        md: &MoleculeStructure,
        qual: &QualExpr,
        strategy: Strategy,
    ) -> Result<Vec<Molecule>> {
        qual.validate(md, self.db.schema())?;
        let opts = DeriveOptions::with_strategy(strategy);
        Ok(derive_molecules(&self.db, md, &opts)?
            .into_iter()
            .filter(|m| qual.qualifies(&self.db, m))
            .collect())
    }

    /// Pure set union of two compatible molecule types (canonical
    /// molecules, deduplicated, sorted by root).
    pub fn union_set(&self, mt1: &MoleculeType, mt2: &MoleculeType) -> Result<Vec<Molecule>> {
        self.check_compatible("Ω", mt1, mt2)?;
        let mut molecules = self.canonical_molecules(mt1);
        for m in self.canonical_molecules(mt2) {
            if !molecules.contains(&m) {
                molecules.push(m);
            }
        }
        molecules.sort_by_key(|m| m.root);
        Ok(molecules)
    }

    /// Pure set difference (canonical molecules of `mt1` absent in `mt2`).
    pub fn difference_set(
        &self,
        mt1: &MoleculeType,
        mt2: &MoleculeType,
    ) -> Result<Vec<Molecule>> {
        self.check_compatible("Δ", mt1, mt2)?;
        let right = self.canonical_molecules(mt2);
        Ok(self
            .canonical_molecules(mt1)
            .into_iter()
            .filter(|m| !right.contains(m))
            .collect())
    }

    /// Pure intersection via double difference (Ψ of §3.2).
    pub fn intersection_set(
        &self,
        mt1: &MoleculeType,
        mt2: &MoleculeType,
    ) -> Result<Vec<Molecule>> {
        let right = self.difference_set(mt1, mt2)?;
        Ok(self
            .canonical_molecules(mt1)
            .into_iter()
            .filter(|m| !right.contains(m))
            .collect())
    }

    /// Root pre-selection for pushdown: evaluate the root-level `attr op
    /// const` conjuncts of `qual` against indexes or a root scan. Returns
    /// `None` when no conjunct exists (full derivation required).
    fn preselect_roots(&self, md: &MoleculeStructure, qual: &QualExpr) -> Option<Vec<AtomId>> {
        let conjuncts = qual.root_conjuncts(md.root());
        if conjuncts.is_empty() {
            return None;
        }
        let root_ty = md.root_node().ty;
        let mut selected: Option<Vec<AtomId>> = None;
        let mut residual: Vec<(usize, CmpOp, Value)> = Vec::new();
        for (attr, op, value) in conjuncts {
            let via_index: Option<Vec<AtomId>> =
                index_probe_key(&self.db, root_ty, attr, op, &value)
                    .and_then(|key| index_lookup(&self.db, root_ty, attr, op, &key));
            match via_index {
                Some(ids) => {
                    selected = Some(match selected {
                        None => ids,
                        Some(prev) => prev.into_iter().filter(|i| ids.contains(i)).collect(),
                    });
                }
                None => residual.push((attr, op, value)),
            }
        }
        // apply residual conjuncts by scanning (either the index-selected
        // candidates or the whole root occurrence)
        let base: Vec<AtomId> = match selected {
            Some(ids) => ids,
            None => self.db.atom_ids_of(root_ty),
        };
        if residual.is_empty() {
            return Some(base);
        }
        let out: Vec<AtomId> = base
            .into_iter()
            .filter(|&id| {
                let tuple = match self.db.atom(id) {
                    Ok(t) => t,
                    Err(_) => return false,
                };
                residual.iter().all(|(attr, op, value)| {
                    tuple[*attr]
                        .sql_cmp(value)
                        .is_some_and(|ord| op.test(ord))
                })
            })
            .collect();
        Some(out)
    }

    // ------------------------------------------------------------------
    // Π — molecule-type projection
    // ------------------------------------------------------------------

    /// `Π[keep](mt)`: prune the structure to the aliases in `keep` (must be
    /// predecessor-closed and contain the root — see the module docs), and
    /// optionally project node attributes (`attr_projection` maps an alias
    /// to the attribute names to keep).
    pub fn project(
        &mut self,
        mt: &MoleculeType,
        keep: &[&str],
        attr_projection: &[(&str, Vec<&str>)],
    ) -> Result<MoleculeType> {
        let md = &mt.structure;
        let mut keep_idx: Vec<usize> = Vec::with_capacity(keep.len());
        for alias in keep {
            let idx = md
                .node_by_alias(alias)
                .ok_or_else(|| MadError::unknown("structure node", *alias))?;
            if keep_idx.contains(&idx) {
                return Err(MadError::duplicate("projection node", *alias));
            }
            keep_idx.push(idx);
        }
        if !keep_idx.contains(&md.root()) {
            return Err(MadError::IncompatibleOperands {
                op: "Π",
                detail: "the root node cannot be projected away".into(),
            });
        }
        // predecessor closure check
        for &k in &keep_idx {
            for &ei in md.incoming(k) {
                let from = md.edges()[ei].from;
                if !keep_idx.contains(&from) {
                    return Err(MadError::IncompatibleOperands {
                        op: "Π",
                        detail: format!(
                            "node `{}` is kept but its predecessor `{}` is not; \
                             only whole branches can be pruned",
                            md.nodes()[k].alias,
                            md.nodes()[from].alias
                        ),
                    });
                }
            }
        }
        keep_idx.sort_unstable();
        // old node index → new node index
        let remap: FxHashMap<usize, usize> = keep_idx
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let canon = self.canonical_structure(md)?;
        let new_nodes: Vec<MsNode> = keep_idx.iter().map(|&i| canon.nodes()[i].clone()).collect();
        let mut kept_edges: Vec<usize> = Vec::new();
        let mut new_edges: Vec<MsEdge> = Vec::new();
        for (ei, e) in canon.edges().iter().enumerate() {
            if let (Some(&f), Some(&t)) = (remap.get(&e.from), remap.get(&e.to)) {
                kept_edges.push(ei);
                new_edges.push(MsEdge {
                    link: e.link,
                    from: f,
                    to: t,
                    dir: e.dir,
                });
            }
        }
        let new_structure = finalize(new_nodes, new_edges)?;
        // attribute projection per new node
        let mut attr_keep: Vec<Option<Vec<String>>> = vec![None; keep_idx.len()];
        for (alias, attrs) in attr_projection {
            let old = md
                .node_by_alias(alias)
                .ok_or_else(|| MadError::unknown("structure node", *alias))?;
            let new = *remap.get(&old).ok_or_else(|| MadError::IncompatibleOperands {
                op: "Π",
                detail: format!("attribute projection on pruned node `{alias}`"),
            })?;
            attr_keep[new] = Some(attrs.iter().map(|s| (*s).to_string()).collect());
        }
        let molecules: Vec<Molecule> = mt
            .molecules
            .iter()
            .map(|m| {
                let m = m.map_atoms(|a| self.prov.canonical_atom(a));
                Molecule {
                    root: m.root,
                    atoms: keep_idx.iter().map(|&i| m.atoms[i].clone()).collect(),
                    links: kept_edges.iter().map(|&e| m.links[e].clone()).collect(),
                }
            })
            .collect();
        let mut trace = OpTrace::new("Π");
        trace.push(Stage::OpSpecific(format!(
            "prune {} → {} nodes, {} → {} edges",
            md.node_count(),
            keep_idx.len(),
            md.edge_count(),
            kept_edges.len()
        )));
        let rst = ResultSet {
            name: format!("{}_proj", mt.name),
            structure: new_structure,
            molecules,
        };
        self.prop_and_close_with_attrs(rst, trace, &attr_keep)
    }

    // ------------------------------------------------------------------
    // X — molecule-type cartesian product
    // ------------------------------------------------------------------

    /// `X(mt1, mt2)`: pair every molecule of `mt1` with every molecule of
    /// `mt2` under a synthetic pair root (attributes `left`/`right` store
    /// the two original roots), then propagate. The sub-structures keep
    /// their shapes; colliding aliases on the right are renamed.
    pub fn product(
        &mut self,
        mt1: &MoleculeType,
        mt2: &MoleculeType,
        name: &str,
    ) -> Result<MoleculeType> {
        let c1 = self.canonical_structure(&mt1.structure)?;
        let c2 = self.canonical_structure(&mt2.structure)?;
        // op-specific action: create the pair atom type and its two link
        // types in the database (they become part of DB′)
        let pair_name = self
            .db
            .schema()
            .fresh_atom_type_name(&format!("{name}_pair"));
        let pair_ty = self.db.add_atom_type(AtomTypeDef::derived(
            pair_name.clone(),
            vec![
                AttrDef::new("left", AttrType::Id),
                AttrDef::new("right", AttrType::Id),
            ],
            format!("X({}, {})", mt1.name, mt2.name),
        ))?;
        let lp1_name = self
            .db
            .schema()
            .fresh_link_type_name(&format!("{pair_name}-left"));
        let lp1 = self.db.add_link_type(LinkTypeDef::new(
            lp1_name,
            pair_ty,
            c1.root_node().ty,
        ))?;
        let lp2_name = self
            .db
            .schema()
            .fresh_link_type_name(&format!("{pair_name}-right"));
        let lp2 = self.db.add_link_type(LinkTypeDef::new(
            lp2_name,
            pair_ty,
            c2.root_node().ty,
        ))?;
        // combined structure: [pair] ++ c1 ++ c2
        let mut nodes: Vec<MsNode> = Vec::with_capacity(1 + c1.node_count() + c2.node_count());
        nodes.push(MsNode {
            alias: "pair".into(),
            ty: pair_ty,
        });
        let left_names: Vec<String> = c1.nodes().iter().map(|n| n.alias.clone()).collect();
        for n in c1.nodes() {
            nodes.push(n.clone());
        }
        for n in c2.nodes() {
            let mut alias = n.alias.clone();
            while alias == "pair" || left_names.contains(&alias) || nodes.iter().any(|x| x.alias == alias) {
                alias.push('\'');
            }
            nodes.push(MsNode { alias, ty: n.ty });
        }
        let off1 = 1usize;
        let off2 = 1 + c1.node_count();
        let mut edges: Vec<MsEdge> = Vec::new();
        edges.push(MsEdge {
            link: lp1,
            from: 0,
            to: off1 + c1.root(),
            dir: Direction::Fwd,
        });
        edges.push(MsEdge {
            link: lp2,
            from: 0,
            to: off2 + c2.root(),
            dir: Direction::Fwd,
        });
        for e in c1.edges() {
            edges.push(MsEdge {
                link: e.link,
                from: off1 + e.from,
                to: off1 + e.to,
                dir: e.dir,
            });
        }
        for e in c2.edges() {
            edges.push(MsEdge {
                link: e.link,
                from: off2 + e.from,
                to: off2 + e.to,
                dir: e.dir,
            });
        }
        let structure = finalize(nodes, edges)?;
        // pair atoms + combined molecules
        let mut molecules = Vec::with_capacity(mt1.molecules.len() * mt2.molecules.len());
        for m1 in &mt1.molecules {
            let m1 = m1.map_atoms(|a| self.prov.canonical_atom(a));
            for m2 in &mt2.molecules {
                let m2 = m2.map_atoms(|a| self.prov.canonical_atom(a));
                let pair_atom = self.db.insert_atom(
                    pair_ty,
                    vec![Value::Id(m1.root), Value::Id(m2.root)],
                )?;
                self.db.connect(lp1, pair_atom, m1.root)?;
                self.db.connect(lp2, pair_atom, m2.root)?;
                let mut atoms: Vec<Vec<AtomId>> = Vec::with_capacity(structure.node_count());
                atoms.push(vec![pair_atom]);
                atoms.extend(m1.atoms.iter().cloned());
                atoms.extend(m2.atoms.iter().cloned());
                let mut links: Vec<Vec<(AtomId, AtomId)>> =
                    Vec::with_capacity(structure.edge_count());
                links.push(vec![(pair_atom, m1.root)]);
                links.push(vec![(pair_atom, m2.root)]);
                links.extend(m1.links.iter().cloned());
                links.extend(m2.links.iter().cloned());
                molecules.push(Molecule {
                    root: pair_atom,
                    atoms,
                    links,
                });
            }
        }
        let mut trace = OpTrace::new("X");
        trace.push(Stage::OpSpecific(format!(
            "pair construction: {} × {} → {} molecules (pair type `{pair_name}`)",
            mt1.molecules.len(),
            mt2.molecules.len(),
            molecules.len()
        )));
        let rst = ResultSet {
            name: name.to_owned(),
            structure,
            molecules,
        };
        self.prop_and_close(rst, trace)
    }

    // ------------------------------------------------------------------
    // Ω / Δ / Ψ
    // ------------------------------------------------------------------

    fn check_compatible(&self, op: &'static str, mt1: &MoleculeType, mt2: &MoleculeType) -> Result<()> {
        let ok = mt1.structure.same_shape_by(
            &mt2.structure,
            |t| self.prov.canonical_type(t),
            |l| self.prov.canonical_link(l, Direction::Fwd).0,
        );
        if ok {
            Ok(())
        } else {
            Err(MadError::IncompatibleOperands {
                op,
                detail: format!(
                    "molecule types `{}` and `{}` have different descriptions",
                    mt1.name, mt2.name
                ),
            })
        }
    }

    fn canonical_molecules(&self, mt: &MoleculeType) -> Vec<Molecule> {
        mt.molecules
            .iter()
            .map(|m| m.map_atoms(|a| self.prov.canonical_atom(a)))
            .collect()
    }

    /// `Ω(mt1, mt2)`: union of the two occurrences (molecules compared by
    /// canonical atom identity). Descriptions must agree.
    pub fn union(&mut self, mt1: &MoleculeType, mt2: &MoleculeType, name: &str) -> Result<MoleculeType> {
        let molecules = self.union_set(mt1, mt2)?;
        let n1 = mt1.molecules.len();
        let n2 = mt2.molecules.len();
        let mut trace = OpTrace::new("Ω");
        trace.push(Stage::OpSpecific(format!(
            "set union: {} ∪ {} → {} molecules",
            n1,
            n2,
            molecules.len()
        )));
        let rst = ResultSet {
            name: name.to_owned(),
            structure: self.canonical_structure(&mt1.structure)?,
            molecules,
        };
        self.prop_and_close(rst, trace)
    }

    /// `Δ(mt1, mt2)`: the molecules of `mt1` not present in `mt2`
    /// (canonical identity). Descriptions must agree.
    pub fn difference(
        &mut self,
        mt1: &MoleculeType,
        mt2: &MoleculeType,
        name: &str,
    ) -> Result<MoleculeType> {
        let molecules = self.difference_set(mt1, mt2)?;
        let mut trace = OpTrace::new("Δ");
        trace.push(Stage::OpSpecific(format!(
            "set difference: {} \\ {} → {} molecules",
            mt1.molecules.len(),
            mt2.molecules.len(),
            molecules.len()
        )));
        let rst = ResultSet {
            name: name.to_owned(),
            structure: self.canonical_structure(&mt1.structure)?,
            molecules,
        };
        self.prop_and_close(rst, trace)
    }

    /// `Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2))` — the derived intersection of
    /// §3.2, implemented literally to demonstrate the algebra's
    /// compositionality.
    pub fn intersection(
        &mut self,
        mt1: &MoleculeType,
        mt2: &MoleculeType,
        name: &str,
    ) -> Result<MoleculeType> {
        let inner = self.difference(mt1, mt2, &format!("{name}_tmp"))?;
        self.difference(mt1, &inner, name)
    }

    // ------------------------------------------------------------------
    // prop — Def. 9
    // ------------------------------------------------------------------

    fn prop_and_close(&mut self, rst: ResultSet, trace: OpTrace) -> Result<MoleculeType> {
        let none: Vec<Option<Vec<String>>> = vec![None; rst.structure.node_count()];
        self.prop_and_close_with_attrs(rst, trace, &none)
    }

    /// Propagate a result set into the database (Def. 9) and close with the
    /// molecule-type definition (Fig. 5's final stage). `attr_keep[n]`
    /// optionally projects the copied tuples of node `n` to a subset of
    /// attributes (used by Π).
    fn prop_and_close_with_attrs(
        &mut self,
        rst: ResultSet,
        mut trace: OpTrace,
        attr_keep: &[Option<Vec<String>>],
    ) -> Result<MoleculeType> {
        let md = &rst.structure;
        let n = md.node_count();
        // 1. renamed atom types with restricted occurrences
        let mut new_types = Vec::with_capacity(n);
        let mut atom_maps: Vec<FxHashMap<AtomId, AtomId>> = vec![FxHashMap::default(); n];
        let mut new_type_names = Vec::with_capacity(n);
        let mut atoms_copied = 0usize;
        for (ni, node) in md.nodes().iter().enumerate() {
            let src_def = self.db.schema().atom_type(node.ty).clone();
            let (attrs, positions): (Vec<AttrDef>, Vec<usize>) = match &attr_keep[ni] {
                None => (
                    src_def.attrs.clone(),
                    (0..src_def.attrs.len()).collect(),
                ),
                Some(keep) => {
                    let mut attrs = Vec::with_capacity(keep.len());
                    let mut pos = Vec::with_capacity(keep.len());
                    for k in keep {
                        let p = src_def.attr_index(k).ok_or_else(|| {
                            MadError::unknown(
                                "attribute",
                                format!("{k} of `{}`", src_def.name),
                            )
                        })?;
                        attrs.push(src_def.attrs[p].clone());
                        pos.push(p);
                    }
                    (attrs, pos)
                }
            };
            let type_name = self
                .db
                .schema()
                .fresh_atom_type_name(&format!("{}@{}", node.alias, rst.name));
            let new_ty = self.db.add_atom_type(AtomTypeDef::derived(
                type_name.clone(),
                attrs,
                format!("prop({}) of `{}`", rst.name, src_def.name),
            ))?;
            self.prov.record_type_copy(new_ty, node.ty);
            // distinct atoms at this node across all molecules, in order
            let mut distinct: Vec<AtomId> = rst
                .molecules
                .iter()
                .flat_map(|m| m.atoms[ni].iter().copied())
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            for src in distinct {
                let tuple = self.db.atom(src)?;
                let projected: Vec<Value> = positions.iter().map(|&p| tuple[p].clone()).collect();
                let copy = self.db.insert_atom(new_ty, projected)?;
                self.prov.record_atom_copy(copy, src);
                atom_maps[ni].insert(src, copy);
                atoms_copied += 1;
            }
            new_types.push(new_ty);
            new_type_names.push(type_name);
        }
        // 2. inherited link types + copied links
        let mut new_links = Vec::with_capacity(md.edge_count());
        let mut new_link_names = Vec::with_capacity(md.edge_count());
        let mut links_copied = 0usize;
        for e in md.edges() {
            let base_name = self.db.schema().link_type(e.link).name.clone();
            let link_name = self
                .db
                .schema()
                .fresh_link_type_name(&format!("{base_name}@{}", rst.name));
            let new_lt = self.db.add_link_type(LinkTypeDef {
                name: link_name.clone(),
                ends: [new_types[e.from], new_types[e.to]],
                cards: [mad_model::Cardinality::MANY, mad_model::Cardinality::MANY],
                derived_from: Some(format!(
                    "prop({}) of `{base_name}`",
                    rst.name
                )),
            })?;
            self.prov.record_link_copy(new_lt, e.link, e.dir);
            new_links.push(new_lt);
            new_link_names.push(link_name);
        }
        for m in &rst.molecules {
            for (ei, e) in md.edges().iter().enumerate() {
                for &(p, c) in &m.links[ei] {
                    let np = atom_maps[e.from][&p];
                    let nc = atom_maps[e.to][&c];
                    if self.db.connect(new_links[ei], np, nc)? {
                        links_copied += 1;
                    }
                }
            }
        }
        // 3. the result structure over the new types
        let nodes: Vec<MsNode> = md
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| MsNode {
                alias: node.alias.clone(),
                ty: new_types[i],
            })
            .collect();
        let edges: Vec<MsEdge> = md
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| MsEdge {
                link: new_links[i],
                from: e.from,
                to: e.to,
                dir: Direction::Fwd,
            })
            .collect();
        let structure = finalize(nodes, edges)?;
        // 4. remap the molecules
        let molecules: Vec<Molecule> = rst
            .molecules
            .iter()
            .map(|m| Molecule {
                root: atom_maps[md.root()][&m.root],
                atoms: m
                    .atoms
                    .iter()
                    .enumerate()
                    .map(|(ni, v)| {
                        let mut out: Vec<AtomId> =
                            v.iter().map(|a| atom_maps[ni][a]).collect();
                        out.sort_unstable();
                        out
                    })
                    .collect(),
                links: m
                    .links
                    .iter()
                    .enumerate()
                    .map(|(ei, v)| {
                        let e = &md.edges()[ei];
                        let mut out: Vec<(AtomId, AtomId)> = v
                            .iter()
                            .map(|(p, c)| (atom_maps[e.from][p], atom_maps[e.to][c]))
                            .collect();
                        out.sort_unstable();
                        out
                    })
                    .collect(),
            })
            .collect();
        trace.push(Stage::Propagation {
            atom_types: new_type_names,
            link_types: new_link_names,
            atoms_copied,
            links_copied,
        });
        trace.push(Stage::Alpha {
            name: rst.name.clone(),
            molecules: molecules.len(),
        });
        self.record(trace);
        Ok(MoleculeType {
            name: rst.name,
            structure,
            molecules,
        })
    }

    /// Map a structure through the provenance registry onto canonical
    /// (base) atom and link types.
    fn canonical_structure(&self, md: &MoleculeStructure) -> Result<MoleculeStructure> {
        let nodes: Vec<MsNode> = md
            .nodes()
            .iter()
            .map(|n| MsNode {
                alias: n.alias.clone(),
                ty: self.prov.canonical_type(n.ty),
            })
            .collect();
        let edges: Vec<MsEdge> = md
            .edges()
            .iter()
            .map(|e| {
                let (link, dir) = self.prov.canonical_link(e.link, e.dir);
                MsEdge {
                    link,
                    from: e.from,
                    to: e.to,
                    dir,
                }
            })
            .collect();
        finalize(nodes, edges)
    }

    // ------------------------------------------------------------------
    // Closure verification (Theorems 2–3, experimentally)
    // ------------------------------------------------------------------

    /// Re-derive `m_dom(md)` of `mt.structure` over the (enlarged) database
    /// and check that it reproduces `mt.molecules` exactly — the validity
    /// claim of Theorems 2 and 3.
    pub fn verify_closure(&self, mt: &MoleculeType) -> Result<()> {
        let fresh = derive_molecules(&self.db, &mt.structure, &DeriveOptions::default())?;
        let mut expected = mt.molecules.clone();
        expected.sort_by_key(|m| m.root);
        let mut got = fresh;
        got.sort_by_key(|m| m.root);
        if expected != got {
            return Err(MadError::structure(format!(
                "closure violated for `{}`: re-derivation over DB' yields {} molecules, expected {}",
                mt.name,
                got.len(),
                expected.len()
            )));
        }
        for m in &got {
            crate::derive::check_molecule(&self.db, &mt.structure, m)?;
        }
        Ok(())
    }

    /// Convenience used throughout tests and examples: derive one molecule
    /// of a structure rooted at `root`.
    pub fn derive_single(&self, md: &MoleculeStructure, root: AtomId) -> Result<Molecule> {
        derive_one(&self.db, md, root)
    }

    /// Create an index on the underlying database (pushdown support).
    pub fn create_index(
        &mut self,
        atom_type: &str,
        attr: &str,
        kind: IndexKind,
    ) -> Result<()> {
        let ty = self.db.schema().atom_type_id(atom_type)?;
        self.db.create_index(ty, attr, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qual::Operand;
    use crate::structure::{path, StructureBuilder};
    use mad_model::{AttrType, SchemaBuilder};

    /// Shared fixture: the mini geography with shared edges (see
    /// `derive::tests::mini_geo` — duplicated here to keep the crates'
    /// test modules independent).
    fn mini_geo() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("hectare", AttrType::Float)])
            .atom_type("river", &[("rname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("net", &[("nid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .atom_type("point", &[("pname", AttrType::Text)])
            .link_type("state-area", "state", "area")
            .link_type("river-net", "river", "net")
            .link_type("area-edge", "area", "edge")
            .link_type("net-edge", "net", "edge")
            .link_type("edge-point", "edge", "point")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let ty = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let lt = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let state = ty(&db, "state");
        let river = ty(&db, "river");
        let area = ty(&db, "area");
        let net = ty(&db, "net");
        let edge = ty(&db, "edge");
        let point = ty(&db, "point");
        let sp = db
            .insert_atom(state, vec![Value::from("SP"), Value::from(1000.0)])
            .unwrap();
        let mg = db
            .insert_atom(state, vec![Value::from("MG"), Value::from(900.0)])
            .unwrap();
        let parana = db.insert_atom(river, vec![Value::from("Parana")]).unwrap();
        let a1 = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let a2 = db.insert_atom(area, vec![Value::from(2)]).unwrap();
        let n1 = db.insert_atom(net, vec![Value::from(1)]).unwrap();
        let e1 = db.insert_atom(edge, vec![Value::from(1)]).unwrap();
        let e2 = db.insert_atom(edge, vec![Value::from(2)]).unwrap();
        let e3 = db.insert_atom(edge, vec![Value::from(3)]).unwrap();
        let p1 = db.insert_atom(point, vec![Value::from("p1")]).unwrap();
        let p2 = db.insert_atom(point, vec![Value::from("p2")]).unwrap();
        db.connect(lt(&db, "state-area"), sp, a1).unwrap();
        db.connect(lt(&db, "state-area"), mg, a2).unwrap();
        db.connect(lt(&db, "river-net"), parana, n1).unwrap();
        db.connect(lt(&db, "area-edge"), a1, e1).unwrap();
        db.connect(lt(&db, "area-edge"), a1, e2).unwrap();
        db.connect(lt(&db, "area-edge"), a2, e2).unwrap();
        db.connect(lt(&db, "area-edge"), a2, e3).unwrap();
        db.connect(lt(&db, "net-edge"), n1, e2).unwrap();
        db.connect(lt(&db, "edge-point"), e1, p1).unwrap();
        db.connect(lt(&db, "edge-point"), e2, p1).unwrap();
        db.connect(lt(&db, "edge-point"), e2, p2).unwrap();
        db.connect(lt(&db, "edge-point"), e3, p2).unwrap();
        db
    }

    fn engine() -> Engine {
        Engine::new(mini_geo())
    }

    fn mt_state(e: &mut Engine) -> MoleculeType {
        let md = path(e.db().schema(), &["state", "area", "edge", "point"]).unwrap();
        e.define("mt_state", md).unwrap()
    }

    #[test]
    fn alpha_defines_molecule_type() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        assert_eq!(mt.len(), 2);
        e.verify_closure(&mt).unwrap();
    }

    #[test]
    fn sigma_restricts_and_propagates() {
        let mut e = engine();
        e.enable_tracing();
        let mt = mt_state(&mut e);
        // Σ[state.sname = 'SP'](mt_state)
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP");
        let big = e.restrict(&mt, &q).unwrap();
        assert_eq!(big.len(), 1);
        // the result lives in propagated types (DB′)
        let root_ty = big.structure.root_node().ty;
        assert!(e.db().schema().atom_type(root_ty).derived_from.is_some());
        // Theorem 2: valid molecule type over DB′
        e.verify_closure(&big).unwrap();
        // trace has the three Fig.-5 stages
        let t = e.trace_log().last().unwrap();
        assert_eq!(t.op, "Σ");
        assert_eq!(t.stages.len(), 3);
    }

    #[test]
    fn sigma_on_child_attribute() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        // molecules containing point 'p1' — both states touch p1 through
        // shared edge e2
        let q = QualExpr::cmp_const(3, 0, CmpOp::Eq, "p1");
        let r = e.restrict(&mt, &q).unwrap();
        assert_eq!(r.len(), 2);
        // molecules containing point 'p9' — none
        let q = QualExpr::cmp_const(3, 0, CmpOp::Eq, "p9");
        let r = e.restrict(&mt, &q).unwrap();
        assert_eq!(r.len(), 0);
        e.verify_closure(&r).unwrap();
    }

    #[test]
    fn shared_subobjects_survive_propagation() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let all = e.restrict(&mt, &QualExpr::True).unwrap();
        // e2 is shared between SP and MG; its propagated copy must be
        // shared as well
        let shared = all.shared_atoms();
        assert!(
            !shared.is_empty(),
            "propagated molecule type lost its shared subobjects"
        );
        e.verify_closure(&all).unwrap();
    }

    #[test]
    fn pushdown_equals_restrict_after_define() {
        let mut e = engine();
        e.create_index("state", "sname", IndexKind::Ordered).unwrap();
        let md = path(e.db().schema(), &["state", "area", "edge", "point"]).unwrap();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .and(QualExpr::cmp_const(3, 0, CmpOp::Eq, "p1"));
        let pushed = e
            .define_restricted("fast", md.clone(), &q, Strategy::PerRoot)
            .unwrap();
        let mt = e.define("mt_state", md).unwrap();
        let slow = e.restrict(&mt, &q).unwrap();
        // same number of molecules with the same canonical atom sets
        assert_eq!(pushed.len(), slow.len());
        let canon = |e: &Engine, mt: &MoleculeType| -> Vec<Vec<AtomId>> {
            mt.molecules
                .iter()
                .map(|m| {
                    m.map_atoms(|a| e.provenance().canonical_atom(a))
                        .atom_set()
                })
                .collect()
        };
        assert_eq!(canon(&e, &pushed), canon(&e, &slow));
        e.verify_closure(&pushed).unwrap();
    }

    #[test]
    fn bitset_pushdown_matches_classic_paths() {
        let mut e = engine();
        e.create_index("state", "sname", IndexKind::Ordered).unwrap();
        let md = path(e.db().schema(), &["state", "area", "edge", "point"]).unwrap();
        // root conjunct (index), child conjunct (scan) and a residual OR
        // that cannot be pushed
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .and(QualExpr::cmp_const(3, 0, CmpOp::Eq, "p1"))
            .and(
                QualExpr::cmp_const(2, 0, CmpOp::Le, 2)
                    .or(QualExpr::cmp_const(2, 0, CmpOp::Ge, 1)),
            );
        let bitset = e.evaluate_restricted(&md, &q, Strategy::Bitset).unwrap();
        let classic = e.evaluate_restricted(&md, &q, Strategy::PerRoot).unwrap();
        let naive = e.evaluate_filtered(&md, &q, Strategy::PerRoot).unwrap();
        assert_eq!(bitset, classic);
        assert_eq!(bitset, naive);
        assert_eq!(bitset.len(), 1);
        // a child conjunct with no witness anywhere prunes everything
        let q = QualExpr::cmp_const(3, 0, CmpOp::Eq, "p9");
        let bitset = e.evaluate_restricted(&md, &q, Strategy::Bitset).unwrap();
        let naive = e.evaluate_filtered(&md, &q, Strategy::PerRoot).unwrap();
        assert_eq!(bitset, naive);
        assert!(bitset.is_empty());
    }

    #[test]
    fn index_probe_coerces_cross_type_constants() {
        // Value's total order ranks variants (every Int below every Float),
        // so probing a Float-keyed BTree with an Int constant finds nothing
        // unless the planner coerces into the attribute's domain first.
        let mut e = engine();
        e.create_index("state", "hectare", IndexKind::Ordered).unwrap();
        let md = path(e.db().schema(), &["state", "area"]).unwrap();
        // hectare: SP = 1000.0, MG = 900.0; Int constant 950
        let q = QualExpr::cmp_const(0, 1, CmpOp::Gt, 950);
        let naive = e.evaluate_filtered(&md, &q, Strategy::PerRoot).unwrap();
        assert_eq!(naive.len(), 1, "only SP exceeds 950");
        assert_eq!(e.evaluate_restricted(&md, &q, Strategy::Bitset).unwrap(), naive);
        assert_eq!(e.evaluate_restricted(&md, &q, Strategy::PerRoot).unwrap(), naive);
        // a fractional Float constant cannot land in an Int domain: the
        // planner must fall back to the numeric scan, not probe the index
        e.create_index("area", "aid", IndexKind::Ordered).unwrap();
        let q = QualExpr::cmp_const(1, 0, CmpOp::Lt, 1.5); // aid ∈ {1, 2}
        let naive = e.evaluate_filtered(&md, &q, Strategy::PerRoot).unwrap();
        assert_eq!(naive.len(), 1, "only a1 has aid < 1.5");
        assert_eq!(e.evaluate_restricted(&md, &q, Strategy::Bitset).unwrap(), naive);
        assert_eq!(e.evaluate_restricted(&md, &q, Strategy::PerRoot).unwrap(), naive);
    }

    #[test]
    fn hash_index_does_not_serve_ranges() {
        let mut e = engine();
        e.create_index("state", "hectare", IndexKind::Hash).unwrap();
        let md = path(e.db().schema(), &["state", "area"]).unwrap();
        let range = QualExpr::cmp_const(0, 1, CmpOp::Gt, 950.0);
        let plan = plan_pushdown(e.db(), &md, &range);
        assert_eq!(plan.nodes[0].conjuncts[0].1, AccessPath::Scan);
        let eq = QualExpr::cmp_const(0, 1, CmpOp::Eq, 900.0);
        let plan = plan_pushdown(e.db(), &md, &eq);
        assert_eq!(plan.nodes[0].conjuncts[0].1, AccessPath::Index);
        // results agree either way
        let naive = e.evaluate_filtered(&md, &range, Strategy::PerRoot).unwrap();
        assert_eq!(e.evaluate_restricted(&md, &range, Strategy::Bitset).unwrap(), naive);
    }

    #[test]
    fn pushdown_plan_reports_access_paths() {
        let mut e = engine();
        e.create_index("state", "sname", IndexKind::Ordered).unwrap();
        let md = path(e.db().schema(), &["state", "area", "edge", "point"]).unwrap();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP")
            .and(QualExpr::cmp_const(2, 0, CmpOp::Ge, 3));
        let plan = plan_pushdown(e.db(), &md, &q);
        assert_eq!(plan.nodes.len(), 2);
        let root_entry = plan.nodes.iter().find(|n| n.node == 0).unwrap();
        assert_eq!(root_entry.conjuncts[0].1, AccessPath::Index);
        let edge_entry = plan.nodes.iter().find(|n| n.node == 2).unwrap();
        assert_eq!(edge_entry.conjuncts[0].1, AccessPath::Scan);
        // prune bitsets hold exactly the satisfying slots
        assert_eq!(plan.prune[0].as_ref().unwrap().len(), 1, "one SP state");
        assert_eq!(plan.prune[2].as_ref().unwrap().len(), 1, "one edge ≥ 3");
        assert!(plan.prune[1].is_none() && plan.prune[3].is_none());
    }

    #[test]
    fn projection_prunes_branches() {
        let mut e = engine();
        let md = StructureBuilder::new(e.db().schema())
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        let pn = e.define("point_neighborhood", md).unwrap();
        // keep only the area/state branch
        let proj = e
            .project(&pn, &["point", "edge", "area", "state"], &[])
            .unwrap();
        assert_eq!(proj.structure.node_count(), 4);
        assert_eq!(proj.len(), pn.len());
        e.verify_closure(&proj).unwrap();
    }

    #[test]
    fn projection_rules_enforced() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        // dropping the root is illegal
        assert!(e.project(&mt, &["area", "edge"], &[]).is_err());
        // dropping an intermediate node (edge) while keeping point is
        // illegal: point would lose its only incoming edge
        assert!(e.project(&mt, &["state", "area", "point"], &[]).is_err());
        // unknown alias
        assert!(e.project(&mt, &["state", "ghost"], &[]).is_err());
    }

    #[test]
    fn projection_of_attributes() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let proj = e
            .project(
                &mt,
                &["state", "area"],
                &[("state", vec!["sname"])],
            )
            .unwrap();
        let root_ty = proj.structure.root_node().ty;
        let def = e.db().schema().atom_type(root_ty);
        assert_eq!(def.attrs.len(), 1);
        assert_eq!(def.attrs[0].name, "sname");
        e.verify_closure(&proj).unwrap();
    }

    #[test]
    fn product_pairs_molecules() {
        let mut e = engine();
        let md1 = path(e.db().schema(), &["state", "area"]).unwrap();
        let md2 = path(e.db().schema(), &["river", "net"]).unwrap();
        let mt1 = e.define("states", md1).unwrap();
        let mt2 = e.define("rivers", md2).unwrap();
        let x = e.product(&mt1, &mt2, "states_x_rivers").unwrap();
        assert_eq!(x.len(), 2, "2 states × 1 river");
        assert_eq!(x.structure.node_count(), 1 + 2 + 2);
        assert_eq!(x.structure.root_node().alias, "pair");
        e.verify_closure(&x).unwrap();
    }

    #[test]
    fn product_resolves_alias_collisions() {
        let mut e = engine();
        let md1 = path(e.db().schema(), &["state", "area"]).unwrap();
        let mt1 = e.define("a", md1.clone()).unwrap();
        let mt2 = e.define("b", md1).unwrap();
        let x = e.product(&mt1, &mt2, "squared").unwrap();
        let aliases: Vec<&str> = x
            .structure
            .nodes()
            .iter()
            .map(|n| n.alias.as_str())
            .collect();
        assert_eq!(aliases.len(), 5);
        let mut unique = aliases.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5, "aliases must stay unique: {aliases:?}");
        assert_eq!(x.len(), 4);
        e.verify_closure(&x).unwrap();
    }

    #[test]
    fn union_difference_intersection_set_laws() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let sp = e
            .restrict(&mt, &QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP"))
            .unwrap();
        let mg = e
            .restrict(&mt, &QualExpr::cmp_const(0, 0, CmpOp::Eq, "MG"))
            .unwrap();
        // Ω(sp, mg) = both molecules
        let u = e.union(&sp, &mg, "u").unwrap();
        assert_eq!(u.len(), 2);
        e.verify_closure(&u).unwrap();
        // Δ(mt, sp) = mg
        let d = e.difference(&mt, &sp, "d").unwrap();
        assert_eq!(d.len(), 1);
        // Ψ(mt, sp) = sp
        let i = e.intersection(&mt, &sp, "i").unwrap();
        assert_eq!(i.len(), 1);
        e.verify_closure(&i).unwrap();
        // Ψ(sp, mg) = ∅
        let empty = e.intersection(&sp, &mg, "e").unwrap();
        assert_eq!(empty.len(), 0);
        // Ω is idempotent
        let uu = e.union(&u, &u, "uu").unwrap();
        assert_eq!(uu.len(), 2);
    }

    #[test]
    fn union_requires_compatible_descriptions() {
        let mut e = engine();
        let mt1 = mt_state(&mut e);
        let md = path(e.db().schema(), &["river", "net"]).unwrap();
        let mt2 = e.define("rivers", md).unwrap();
        assert!(matches!(
            e.union(&mt1, &mt2, "bad"),
            Err(MadError::IncompatibleOperands { op: "Ω", .. })
        ));
        assert!(e.difference(&mt1, &mt2, "bad2").is_err());
    }

    #[test]
    fn compatibility_is_canonical_across_propagations() {
        // Σ results of the same mt are propagated into *different* derived
        // types; Ω must still accept them as compatible.
        let mut e = engine();
        let mt = mt_state(&mut e);
        let a = e.restrict(&mt, &QualExpr::True).unwrap();
        let b = e.restrict(&mt, &QualExpr::True).unwrap();
        assert_ne!(
            a.structure.root_node().ty,
            b.structure.root_node().ty,
            "propagation must rename"
        );
        let u = e.union(&a, &b, "u").unwrap();
        assert_eq!(u.len(), 2, "same canonical molecules dedup");
    }

    #[test]
    fn exists_forall_in_restriction() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        // states where SOME edge has eid >= 3 (only MG via e3)
        let q = QualExpr::Exists {
            node: 2,
            pred: Box::new(QualExpr::cmp_const(2, 0, CmpOp::Ge, 3)),
        };
        let r = e.restrict(&mt, &q).unwrap();
        assert_eq!(r.len(), 1);
        // states where ALL edges have eid <= 2 (only SP: e1, e2)
        let q = QualExpr::ForAll {
            node: 2,
            pred: Box::new(QualExpr::cmp_const(2, 0, CmpOp::Le, 2)),
        };
        let r = e.restrict(&mt, &q).unwrap();
        assert_eq!(r.len(), 1);
        // two-operand comparison: molecules where state.hectare > some
        // edge.eid (numerically true everywhere)
        let q = QualExpr::Cmp {
            left: Operand::Attr { node: 0, attr: 1 },
            op: CmpOp::Gt,
            right: Operand::Attr { node: 2, attr: 0 },
        };
        let r = e.restrict(&mt, &q).unwrap();
        assert_eq!(r.len(), 2);
    }


    #[test]
    fn sigma_chain_composes_through_propagation() {
        // Σ over a Σ result: the second restriction operates on propagated
        // types; canonical provenance keeps everything coherent.
        let mut e = engine();
        let mt = mt_state(&mut e);
        let step1 = e
            .restrict(&mt, &QualExpr::cmp_const(0, 1, CmpOp::Gt, 800.0))
            .unwrap();
        assert_eq!(step1.len(), 2);
        let step2 = e
            .restrict(&step1, &QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP"))
            .unwrap();
        assert_eq!(step2.len(), 1);
        e.verify_closure(&step2).unwrap();
        // the canonical root of the survivor is the base SP atom
        let root = step2.molecules[0].root;
        let canon = e.provenance().canonical_atom(root);
        assert_eq!(
            e.db().atom(canon).unwrap()[0],
            Value::from("SP")
        );
        assert_ne!(root, canon, "two propagations away from base");
    }

    #[test]
    fn product_of_propagated_operands() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let sp = e
            .restrict(&mt, &QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP"))
            .unwrap();
        let mg = e
            .restrict(&mt, &QualExpr::cmp_const(0, 0, CmpOp::Eq, "MG"))
            .unwrap();
        let x = e.product(&sp, &mg, "pairs").unwrap();
        assert_eq!(x.len(), 1);
        e.verify_closure(&x).unwrap();
        // pair atoms record the canonical roots in their Id attributes
        let pair_atom = x.molecules[0].root;
        let canon_pair = e.provenance().canonical_atom(pair_atom);
        let tuple = e.db().atom(canon_pair).unwrap().to_vec();
        let left = tuple[0].as_id().unwrap();
        assert_eq!(e.db().atom(left).unwrap()[0], Value::from("SP"));
    }

    #[test]
    fn define_restricted_trace_has_all_stages() {
        let mut e = engine();
        e.enable_tracing();
        let md = path(e.db().schema(), &["state", "area"]).unwrap();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP");
        let _ = e.define_restricted("t", md, &q, Strategy::PerRoot).unwrap();
        let t = e.trace_log().last().unwrap();
        assert_eq!(t.stages.len(), 4, "derivation, op-specific, prop, alpha");
        assert!(matches!(
            t.stages[0],
            crate::trace::Stage::Derivation { ref strategy, .. } if strategy == "PerRoot"
        ));
        assert!(matches!(t.stages[1], crate::trace::Stage::OpSpecific(_)));
        assert!(matches!(t.stages[2], crate::trace::Stage::Propagation { .. }));
        assert!(matches!(t.stages[3], crate::trace::Stage::Alpha { .. }));
    }

    #[test]
    fn projection_attr_on_child_node() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let p = e
            .project(
                &mt,
                &["state", "area", "edge"],
                &[("edge", vec!["eid"]), ("state", vec!["sname", "hectare"])],
            )
            .unwrap();
        let edge_node = p.structure.node_by_alias("edge").unwrap();
        let edge_ty = p.structure.nodes()[edge_node].ty;
        assert_eq!(e.db().schema().atom_type(edge_ty).attrs.len(), 1);
        let root_ty = p.structure.root_node().ty;
        assert_eq!(e.db().schema().atom_type(root_ty).attrs.len(), 2);
        e.verify_closure(&p).unwrap();
        // unknown attribute in the projection errors out
        assert!(e
            .project(&mt, &["state"], &[("state", vec!["ghost"])])
            .is_err());
    }

    #[test]
    fn evaluate_apis_are_pure() {
        let mut e = engine();
        let md = path(e.db().schema(), &["state", "area"]).unwrap();
        let types_before = e.db().schema().atom_type_count();
        let atoms_before = e.db().total_atoms();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP");
        let _ = e.evaluate(&md, &DeriveOptions::default()).unwrap();
        let _ = e.evaluate_restricted(&md, &q, Strategy::PerRoot).unwrap();
        let _ = e.evaluate_filtered(&md, &q, Strategy::PerRoot).unwrap();
        let mt = e.define("m", md).unwrap();
        let _ = e.union_set(&mt, &mt).unwrap();
        let _ = e.difference_set(&mt, &mt).unwrap();
        let _ = e.intersection_set(&mt, &mt).unwrap();
        assert_eq!(e.db().schema().atom_type_count(), types_before);
        assert_eq!(e.db().total_atoms(), atoms_before);
    }

    #[test]
    fn union_set_semantics_match_operators() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let sp = e
            .restrict(&mt, &QualExpr::cmp_const(0, 0, CmpOp::Eq, "SP"))
            .unwrap();
        let pure = e.union_set(&mt, &sp).unwrap();
        let full = e.union(&mt, &sp, "u").unwrap();
        assert_eq!(pure.len(), full.len());
        let pure_i = e.intersection_set(&mt, &sp).unwrap();
        let full_i = e.intersection(&mt, &sp, "i").unwrap();
        assert_eq!(pure_i.len(), full_i.len());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut e = engine();
        let mt = mt_state(&mut e);
        let _ = e.restrict(&mt, &QualExpr::True).unwrap();
        assert!(e.trace_log().ops.is_empty());
    }
}
