//! Recursive molecule types — the §5 outlook feature (\[Schö89\]).
//!
//! "The MAD model allows for reflexive link types and for other cycles in
//! the database schema; e.g. for modeling a bill-of-material application.
//! These cycles are normally queried in a recursive manner, for example
//! asking for the parts explosion (i.e. sub-component view) of a given
//! part."
//!
//! A [`RecursiveSpec`] names a start atom type, a component structure (a
//! link type with a traversal direction) and an optional depth bound. Its
//! derivation unfolds the atom network breadth-first from each root,
//! **cycle-safe**: an atom already contained is not expanded again, so the
//! derivation terminates even on cyclic atom networks (the unfolded
//! molecule is the reachable subgraph, levelled by first-visit depth).
//!
//! Since PR 2 the unfolding rides the same storage engine as
//! `Strategy::Bitset`: the contained set and each BFS level are dense
//! slot-indexed [`BitSet`]s, and frontiers expand through the database's
//! frozen [`CsrSnapshot`] with sequential
//! partner scans — no per-atom hash probes remain on the recursive hot
//! path, and a whole [`derive_recursive`] sweep shares one snapshot
//! across all roots.

use mad_model::{AtomId, AtomTypeId, BitSet, FxHashMap, FxHashSet, LinkTypeId, MadError, Result};
use mad_storage::database::Direction;
use mad_storage::{CsrSnapshot, Database};

/// Description of a recursive molecule type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecursiveSpec {
    /// The atom type being traversed (root and components alike).
    pub atom_type: AtomTypeId,
    /// The reflexive link type to follow.
    pub link: LinkTypeId,
    /// Traversal direction (`Fwd` = sub-component view / parts explosion,
    /// `Bwd` = super-component view / where-used, `Sym` = both).
    pub dir: Direction,
    /// Maximum recursion depth (`None` = until fixpoint).
    pub max_depth: Option<usize>,
}

impl RecursiveSpec {
    /// Validate against a database: the link type must be reflexive on
    /// `atom_type`.
    pub fn validate(&self, db: &Database) -> Result<()> {
        let def = db.schema().link_type(self.link);
        if !def.is_reflexive() || def.ends[0] != self.atom_type {
            return Err(MadError::Recursion {
                detail: format!(
                    "link type `{}` is not reflexive on `{}`",
                    def.name,
                    db.schema().atom_type(self.atom_type).name
                ),
            });
        }
        Ok(())
    }
}

/// A derived recursive molecule: the unfolding of the component graph from
/// one root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecursiveMolecule {
    /// The root atom.
    pub root: AtomId,
    /// Atoms by first-visit depth; `levels[0] == [root]`.
    pub levels: Vec<Vec<AtomId>>,
    /// All traversed component links `(parent, child)` between contained
    /// atoms (including "cross" and "back" links discovered late).
    pub links: Vec<(AtomId, AtomId)>,
    /// True if the traversal reached an already-contained atom again —
    /// either a shared subcomponent (DAG reconvergence) or a genuine cycle.
    pub reconverging: bool,
}

impl RecursiveMolecule {
    /// Flat atom set, sorted.
    pub fn atom_set(&self) -> Vec<AtomId> {
        let mut all: Vec<AtomId> = self.levels.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    /// Depth of the unfolding (number of levels below the root).
    pub fn depth(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Total number of contained atoms.
    pub fn size(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Render as an indented tree; atoms revisited (shared or cyclic) are
    /// shown as `^ref`, guaranteeing finite output on cyclic data.
    pub fn render_tree(&self, db: &Database) -> String {
        let children = self.child_map();
        let mut out = String::new();
        let mut seen = FxHashSet::default();
        self.render_node(db, &children, self.root, 0, &mut seen, &mut out);
        out
    }

    fn child_map(&self) -> FxHashMap<AtomId, Vec<AtomId>> {
        let mut children: FxHashMap<AtomId, Vec<AtomId>> = FxHashMap::default();
        for &(p, c) in &self.links {
            children.entry(p).or_default().push(c);
        }
        for v in children.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        children
    }

    fn render_node(
        &self,
        db: &Database,
        children: &FxHashMap<AtomId, Vec<AtomId>>,
        atom: AtomId,
        depth: usize,
        seen: &mut FxHashSet<AtomId>,
        out: &mut String,
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if !seen.insert(atom) {
            out.push_str(&format!("^{atom}\n"));
            return;
        }
        match db.atom(atom) {
            Ok(t) => {
                let vals: Vec<String> = t.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("{atom} <{}>\n", vals.join(", ")));
            }
            Err(_) => out.push_str(&format!("{atom} <dead>\n")),
        }
        if let Some(cs) = children.get(&atom) {
            for &c in cs {
                self.render_node(db, children, c, depth + 1, seen, out);
            }
        }
    }
}

fn validate_recursive_root(db: &Database, spec: &RecursiveSpec, root: AtomId) -> Result<()> {
    if root.ty != spec.atom_type {
        return Err(MadError::Recursion {
            detail: format!("root atom {root} is not of the recursive atom type"),
        });
    }
    if !db.atom_exists(root) {
        return Err(MadError::integrity(format!("atom {root} does not exist")));
    }
    Ok(())
}

/// Derive one recursive molecule from `root`.
pub fn derive_recursive_one(
    db: &Database,
    spec: &RecursiveSpec,
    root: AtomId,
) -> Result<RecursiveMolecule> {
    spec.validate(db)?;
    validate_recursive_root(db, spec, root)?;
    let csr = db.csr_snapshot();
    let mut scratch = RecursiveScratch::new(&csr, spec.atom_type);
    Ok(unfold_csr(&csr, spec, root, &mut scratch))
}

/// Reusable per-sweep bitsets: one slot-indexed contained set and two
/// frontier sets, cleared (dirty-window cheap) between roots.
struct RecursiveScratch {
    contained: BitSet,
    frontier: BitSet,
    next: BitSet,
}

impl RecursiveScratch {
    fn new(csr: &CsrSnapshot, ty: AtomTypeId) -> Self {
        let cap = csr.slot_count(ty);
        RecursiveScratch {
            contained: BitSet::with_capacity(cap),
            frontier: BitSet::with_capacity(cap),
            next: BitSet::with_capacity(cap),
        }
    }
}

/// The breadth-first unfolding over the frozen snapshot. Frontier and
/// contained sets are slot bitsets of the (single, reflexive) atom type;
/// each level expands with sequential CSR partner scans. Bitset iteration
/// is ascending-slot, which for one atom type *is* sorted `AtomId` order,
/// so levels come out sorted exactly like the classic implementation's.
fn unfold_csr(
    csr: &CsrSnapshot,
    spec: &RecursiveSpec,
    root: AtomId,
    scratch: &mut RecursiveScratch,
) -> RecursiveMolecule {
    let ty = spec.atom_type;
    let RecursiveScratch {
        contained,
        frontier,
        next,
    } = scratch;
    contained.clear();
    frontier.clear();
    contained.insert(root.slot as usize);
    frontier.insert(root.slot as usize);
    let mut levels = vec![vec![root]];
    let mut links: Vec<(AtomId, AtomId)> = Vec::new();
    let mut reconverging = false;
    let mut depth = 0usize;
    loop {
        if let Some(max) = spec.max_depth {
            if depth >= max {
                break;
            }
        }
        next.clear();
        let mut level: Vec<AtomId> = Vec::new();
        for p in frontier.iter() {
            let parent = AtomId::new(ty, p as u32);
            csr.for_each_partner(spec.link, p as u32, spec.dir, |c| {
                links.push((parent, AtomId::new(ty, c)));
                if contained.contains(c as usize) {
                    reconverging = true; // shared subobject or cycle
                } else {
                    contained.insert(c as usize);
                    next.insert(c as usize);
                    level.push(AtomId::new(ty, c));
                }
            });
        }
        if next.is_empty() {
            break;
        }
        level.sort_unstable();
        levels.push(level);
        std::mem::swap(frontier, next);
        depth += 1;
    }
    links.sort_unstable();
    links.dedup();
    RecursiveMolecule {
        root,
        levels,
        links,
        reconverging,
    }
}

/// Derive recursive molecules for all atoms of the spec's atom type (or a
/// chosen subset). All roots unfold against **one** shared CSR snapshot and
/// reuse one set of scratch bitsets.
pub fn derive_recursive(
    db: &Database,
    spec: &RecursiveSpec,
    roots: Option<&[AtomId]>,
) -> Result<Vec<RecursiveMolecule>> {
    spec.validate(db)?;
    let roots: Vec<AtomId> = match roots {
        Some(r) => r.to_vec(),
        None => db.atom_ids_of(spec.atom_type),
    };
    for &r in &roots {
        validate_recursive_root(db, spec, r)?;
    }
    let csr = db.csr_snapshot();
    let mut scratch = RecursiveScratch::new(&csr, spec.atom_type);
    Ok(roots
        .into_iter()
        .map(|r| unfold_csr(&csr, spec, r, &mut scratch))
        .collect())
}

/// Transitive-closure reachability (the set semantics a relational
/// semi-naive evaluation computes); used by benchmark B5 to check both
/// sides agree.
pub fn reachable_set(db: &Database, spec: &RecursiveSpec, root: AtomId) -> Result<Vec<AtomId>> {
    derive_recursive_one(db, spec, root).map(|m| m.atom_set())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder, Value};

    fn bom_db() -> (Database, AtomTypeId, LinkTypeId, Vec<AtomId>) {
        let schema = SchemaBuilder::new()
            .atom_type("parts", &[("pname", AttrType::Text)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let parts = db.schema().atom_type_id("parts").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        // engine ⊃ {piston, crankshaft}; piston ⊃ {ring, bolt};
        // crankshaft ⊃ {bolt}  — bolt is a shared sub-part (DAG)
        let names = ["engine", "piston", "crankshaft", "ring", "bolt"];
        let ids: Vec<AtomId> = names
            .iter()
            .map(|n| db.insert_atom(parts, vec![Value::from(*n)]).unwrap())
            .collect();
        db.connect(comp, ids[0], ids[1]).unwrap();
        db.connect(comp, ids[0], ids[2]).unwrap();
        db.connect(comp, ids[1], ids[3]).unwrap();
        db.connect(comp, ids[1], ids[4]).unwrap();
        db.connect(comp, ids[2], ids[4]).unwrap();
        (db, parts, comp, ids)
    }

    fn spec(parts: AtomTypeId, comp: LinkTypeId) -> RecursiveSpec {
        RecursiveSpec {
            atom_type: parts,
            link: comp,
            dir: Direction::Fwd,
            max_depth: None,
        }
    }

    #[test]
    fn parts_explosion() {
        let (db, parts, comp, ids) = bom_db();
        let m = derive_recursive_one(&db, &spec(parts, comp), ids[0]).unwrap();
        assert_eq!(m.size(), 5);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.levels[0], vec![ids[0]]);
        assert_eq!(m.levels[1], vec![ids[1], ids[2]]);
        assert_eq!(m.levels[2], vec![ids[3], ids[4]]);
        // bolt reached from two parents: 5 distinct links… engine→piston,
        // engine→crank, piston→ring, piston→bolt, crank→bolt
        assert_eq!(m.links.len(), 5);
        assert!(m.reconverging, "bolt is revisited via the second parent");
    }

    #[test]
    fn where_used_view() {
        let (db, parts, comp, ids) = bom_db();
        let mut s = spec(parts, comp);
        s.dir = Direction::Bwd;
        let m = derive_recursive_one(&db, &s, ids[4]).unwrap();
        // bolt ← {piston, crankshaft} ← engine
        assert_eq!(m.size(), 4);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.levels[1], vec![ids[1], ids[2]]);
        assert_eq!(m.levels[2], vec![ids[0]]);
    }

    #[test]
    fn depth_bound_cuts_expansion() {
        let (db, parts, comp, ids) = bom_db();
        let mut s = spec(parts, comp);
        s.max_depth = Some(1);
        let m = derive_recursive_one(&db, &s, ids[0]).unwrap();
        assert_eq!(m.depth(), 1);
        assert_eq!(m.size(), 3);
        // links below the cut are pruned
        assert!(m.links.iter().all(|(p, _)| *p == ids[0]));
    }

    #[test]
    fn terminates_on_cycles() {
        let (mut db, parts, comp, ids) = bom_db();
        // make it cyclic: bolt ⊃ engine (nonsense, but legal data)
        db.connect(comp, ids[4], ids[0]).unwrap();
        let m = derive_recursive_one(&db, &spec(parts, comp), ids[0]).unwrap();
        assert!(m.reconverging);
        assert_eq!(m.size(), 5, "every part still contained exactly once");
        // the cycle link is retained (both endpoints contained)
        assert!(m.links.contains(&(ids[4], ids[0])));
    }

    #[test]
    fn derive_all_roots() {
        let (db, parts, comp, _) = bom_db();
        let ms = derive_recursive(&db, &spec(parts, comp), None).unwrap();
        assert_eq!(ms.len(), 5);
        // leaves unfold to just themselves
        assert_eq!(ms[3].size(), 1);
        assert_eq!(ms[4].size(), 1);
    }

    #[test]
    fn validation_errors() {
        let (db, parts, comp, ids) = bom_db();
        // non-reflexive link type rejected
        let schema2 = SchemaBuilder::new()
            .atom_type("a", &[("x", AttrType::Int)])
            .atom_type("b", &[("x2", AttrType::Int)])
            .link_type("ab", "a", "b")
            .build()
            .unwrap();
        let db2 = Database::new(schema2);
        let bad = RecursiveSpec {
            atom_type: db2.schema().atom_type_id("a").unwrap(),
            link: db2.schema().link_type_id("ab").unwrap(),
            dir: Direction::Fwd,
            max_depth: None,
        };
        assert!(bad.validate(&db2).is_err());
        // wrong root type
        let s = spec(parts, comp);
        let wrong_root = AtomId::new(AtomTypeId(99), 0);
        assert!(derive_recursive_one(&db, &s, wrong_root).is_err());
        // dead root
        assert!(
            derive_recursive_one(&db, &s, AtomId::new(parts, 99)).is_err()
        );
        let _ = ids;
    }

    #[test]
    fn render_tree_finite_on_cycles() {
        let (mut db, parts, comp, ids) = bom_db();
        db.connect(comp, ids[4], ids[0]).unwrap();
        let m = derive_recursive_one(&db, &spec(parts, comp), ids[0]).unwrap();
        let t = m.render_tree(&db);
        assert!(t.contains("'engine'"));
        assert!(t.contains('^'), "cycle rendered as back reference");
    }

    #[test]
    fn symmetric_direction_explores_everything() {
        let (db, parts, comp, ids) = bom_db();
        let mut s = spec(parts, comp);
        s.dir = Direction::Sym;
        let m = derive_recursive_one(&db, &s, ids[3]).unwrap();
        // from `ring` the symmetric closure reaches the whole component
        assert_eq!(m.size(), 5);
    }
}
