//! Query explanation — the §5 outlook made concrete: "we are confident
//! that we can conveniently exploit the algebra to considerably simplify
//! and enhance query transformation and query optimization".
//!
//! [`explain`] inspects a molecule-type definition (structure +
//! qualification) against the database and produces the plan the engine
//! will execute, with statistics-based cardinality estimates:
//!
//! * **root selection** — which Σ conjuncts can be pushed below the
//!   derivation, and whether an index serves them;
//! * **per-node fan-out estimates** — from the live link-type degree
//!   statistics, the expected number of atoms per structure node and the
//!   expected total work (adjacency lookups);
//! * **strategy advice** — per-root vs. parallel derivation, picked from
//!   the estimated total work (the crossover benchmark B3 measures).

use crate::ops::{classify_pushdown, index_probe_key, AccessPath};
use crate::qual::{CmpOp, QualExpr};
use crate::structure::MoleculeStructure;
use mad_model::Value;
use mad_storage::database::Direction;
use mad_storage::Database;
use std::fmt;

/// How the root set will be selected.
#[derive(Clone, Debug, PartialEq)]
pub enum RootSelection {
    /// All atoms of the root type (no usable conjunct).
    FullOccurrence {
        /// Number of root atoms.
        atoms: usize,
    },
    /// Root conjuncts evaluated through secondary indexes.
    IndexAssisted {
        /// The pushed conjuncts, rendered.
        conjuncts: Vec<String>,
        /// Estimated surviving roots.
        estimated_roots: f64,
    },
    /// Root conjuncts evaluated by scanning the root occurrence.
    ScanFiltered {
        /// The pushed conjuncts, rendered.
        conjuncts: Vec<String>,
        /// Estimated surviving roots.
        estimated_roots: f64,
    },
}

/// Estimated work at one structure node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeEstimate {
    /// Node alias.
    pub alias: String,
    /// Expected atoms at this node *per molecule*.
    pub per_molecule: f64,
    /// Expected atoms at this node across the whole molecule set.
    pub total: f64,
}

/// One pushed conjunct in the EXPLAIN report.
#[derive(Clone, Debug, PartialEq)]
pub struct PushedConjunct {
    /// The conjunct, rendered (`alias.attr op value`).
    pub rendered: String,
    /// How this conjunct's candidate set is produced (index vs. scan) —
    /// decided per conjunct, exactly like the execution-time planner.
    pub access: AccessPath,
}

/// Conjuncts pushed to one structure node.
#[derive(Clone, Debug, PartialEq)]
pub struct PushedNode {
    /// The node's alias.
    pub alias: String,
    /// The pushed conjuncts with their access paths.
    pub conjuncts: Vec<PushedConjunct>,
}

/// The explanation of a molecule-type definition.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Root selection method.
    pub root_selection: RootSelection,
    /// Estimated root count after selection.
    pub estimated_roots: f64,
    /// Per-node estimates, in topological order.
    pub nodes: Vec<NodeEstimate>,
    /// Qualification pushdown per structure node (only nodes with pushable
    /// conjuncts appear; empty without a qualification).
    pub pushdown: Vec<PushedNode>,
    /// Estimated adjacency lookups for the whole derivation.
    pub estimated_lookups: f64,
    /// Suggested derivation strategy.
    pub suggested_strategy: crate::derive::Strategy,
    /// How many worker threads execution will actually fan derivation over
    /// for the suggested strategy — the requested parallelism capped at the
    /// hardware's available parallelism
    /// ([`Strategy::effective_parallelism`](crate::derive::Strategy::effective_parallelism));
    /// 1 for every serial strategy.
    pub parallelism: usize,
    /// Whether traversal runs over the frozen CSR snapshot (true for the
    /// bitset engine, serial *and* parallel) — and whether that snapshot is
    /// already warm.
    pub csr_expansion: bool,
    /// Is the database's CSR snapshot current (no rebuild needed)?
    pub csr_warm: bool,
    /// `(rebuilt, total)` link-type CSR pairs of the most recent snapshot
    /// (re)build — the incremental-invalidation statistic (`None` before
    /// the first build).
    pub csr_rebuilt_pairs: Option<(usize, usize)>,
    /// Residual qualification evaluated per molecule (rendered), if any.
    pub residual_filter: Option<String>,
}

/// Mean side-aware fan-out of a link type (how many partners an atom of
/// `from`'s side has on average, counting atoms *with* partners only at 0
/// when the occurrence is empty).
fn mean_fanout(db: &Database, lt: mad_model::LinkTypeId, dir: Direction, from_count: usize) -> f64 {
    if from_count == 0 {
        return 0.0;
    }
    let links = db.link_count(lt) as f64;
    match dir {
        Direction::Fwd | Direction::Bwd => links / from_count as f64,
        Direction::Sym => 2.0 * links / from_count as f64,
    }
}

/// Rough selectivity of a comparison against a uniform domain: equality
/// picks `1/distinct`, ranges pick 1/3 (the classical System-R default).
fn selectivity(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => 0.1,
        CmpOp::Ne => 0.9,
        _ => 1.0 / 3.0,
    }
}

/// Produce the execution plan for `α[md]` optionally restricted by `qual`.
pub fn explain(db: &Database, md: &MoleculeStructure, qual: Option<&QualExpr>) -> Plan {
    let root_ty = md.root_node().ty;
    let root_atoms = db.atom_count(root_ty);
    // --- root selection -------------------------------------------------
    let conjuncts: Vec<(usize, CmpOp, Value)> = qual
        .map(|q| q.root_conjuncts(md.root()))
        .unwrap_or_default();
    let mut est_roots = root_atoms as f64;
    let mut indexed = true;
    let mut rendered = Vec::new();
    let root_def = db.schema().atom_type(root_ty);
    for (attr, op, value) in &conjuncts {
        est_roots *= selectivity(*op);
        indexed &= index_probe_key(db, root_ty, *attr, *op, value).is_some();
        rendered.push(format!(
            "{}.{} {} {}",
            md.root_node().alias,
            root_def
                .attrs
                .get(*attr)
                .map(|a| a.name.as_str())
                .unwrap_or("?"),
            op.symbol(),
            value
        ));
    }
    let root_selection = if conjuncts.is_empty() {
        est_roots = root_atoms as f64;
        RootSelection::FullOccurrence { atoms: root_atoms }
    } else if indexed {
        RootSelection::IndexAssisted {
            conjuncts: rendered,
            estimated_roots: est_roots,
        }
    } else {
        RootSelection::ScanFiltered {
            conjuncts: rendered,
            estimated_roots: est_roots,
        }
    };
    // --- per-node estimates (topological propagation of fan-outs) -------
    let mut per_molecule = vec![0.0f64; md.node_count()];
    per_molecule[md.root()] = 1.0;
    for &node in &md.topo_order()[1..] {
        // ∀-semantics over incoming edges: estimate with the MINIMUM of the
        // per-edge reach (the intersection cannot exceed either side)
        let mut est: Option<f64> = None;
        for &ei in md.incoming(node) {
            let e = &md.edges()[ei];
            let from_count = db.atom_count(md.nodes()[e.from].ty).max(1);
            let fan = mean_fanout(db, e.link, e.dir, from_count);
            let reach = per_molecule[e.from] * fan;
            est = Some(match est {
                None => reach,
                Some(prev) => prev.min(reach),
            });
        }
        per_molecule[node] = est.unwrap_or(0.0);
    }
    let nodes: Vec<NodeEstimate> = md
        .topo_order()
        .iter()
        .map(|&n| NodeEstimate {
            alias: md.nodes()[n].alias.clone(),
            per_molecule: per_molecule[n],
            total: per_molecule[n] * est_roots,
        })
        .collect();
    // work ≈ links traversed: parents × mean fan-out, per edge, per molecule
    let estimated_lookups: f64 = md
        .edges()
        .iter()
        .map(|e| {
            let from_count = db.atom_count(md.nodes()[e.from].ty).max(1);
            let fan = mean_fanout(db, e.link, e.dir, from_count);
            per_molecule[e.from] * fan.max(1.0) * est_roots
        })
        .sum();
    // --- qualification pushdown report -----------------------------------
    let attr_name = |node: usize, attr: usize| {
        let def = db.schema().atom_type(md.nodes()[node].ty);
        def.attrs
            .get(attr)
            .map(|a| a.name.as_str())
            .unwrap_or("?")
            .to_owned()
    };
    // report exactly what the execution-time planner will do — same
    // classification code, minus the bitset materialization
    let pushdown: Vec<PushedNode> = qual
        .map(|q| {
            classify_pushdown(db, md, q)
                .iter()
                .map(|entry| PushedNode {
                    alias: md.nodes()[entry.node].alias.clone(),
                    conjuncts: entry
                        .conjuncts
                        .iter()
                        .map(|(c, access)| PushedConjunct {
                            rendered: format!(
                                "{}.{} {} {}",
                                md.nodes()[c.node].alias,
                                attr_name(c.node, c.attr),
                                c.op.symbol(),
                                c.value
                            ),
                            access: *access,
                        })
                        .collect(),
                })
                .collect()
        })
        .unwrap_or_default();
    // --- strategy advice --------------------------------------------------
    // parallel pays off past ~10 ms of single-threaded work; a lookup costs
    // on the order of 100 ns here, so the crossover sits around 10⁵ lookups
    // (benchmark B3 places it between the "large" geo sweep and the
    // point-neighborhood workload). Both sides of the crossover are the
    // frontier-bitset engine over the CSR snapshot — parallel just
    // partitions the root slot ranges over workers.
    let suggested_strategy = if estimated_lookups > 1e5 {
        crate::derive::Strategy::Parallel(4)
    } else {
        crate::derive::Strategy::Bitset
    };
    Plan {
        root_selection,
        estimated_roots: est_roots,
        nodes,
        pushdown,
        estimated_lookups,
        suggested_strategy,
        parallelism: suggested_strategy.effective_parallelism(),
        csr_expansion: true,
        csr_warm: db.csr_is_warm(),
        csr_rebuilt_pairs: db.csr_rebuild_stats(),
        residual_filter: qual.map(|q| q.render(md, db.schema())),
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan:")?;
        match &self.root_selection {
            RootSelection::FullOccurrence { atoms } => {
                writeln!(f, "  roots: full occurrence scan ({atoms} atoms)")?
            }
            RootSelection::IndexAssisted {
                conjuncts,
                estimated_roots,
            } => writeln!(
                f,
                "  roots: index lookup on [{}] (≈{estimated_roots:.1} roots)",
                conjuncts.join(" AND ")
            )?,
            RootSelection::ScanFiltered {
                conjuncts,
                estimated_roots,
            } => writeln!(
                f,
                "  roots: occurrence scan filtered by [{}] (≈{estimated_roots:.1} roots)",
                conjuncts.join(" AND ")
            )?,
        }
        for n in &self.nodes {
            writeln!(
                f,
                "  node {:<12} ≈{:>8.1} atoms/molecule, ≈{:>10.1} total",
                n.alias, n.per_molecule, n.total
            )?;
        }
        for p in &self.pushdown {
            let rendered: Vec<String> = p
                .conjuncts
                .iter()
                .map(|c| {
                    format!(
                        "{} (via {})",
                        c.rendered,
                        match c.access {
                            AccessPath::Index => "index",
                            AccessPath::Scan => "scan",
                        }
                    )
                })
                .collect();
            writeln!(f, "  pushdown @{:<10} [{}]", p.alias, rendered.join(" AND "))?;
        }
        writeln!(f, "  estimated adjacency lookups: ≈{:.0}", self.estimated_lookups)?;
        writeln!(
            f,
            "  suggested strategy: {:?} (parallelism {})",
            self.suggested_strategy, self.parallelism
        )?;
        if self.csr_expansion {
            write!(
                f,
                "  traversal: CSR snapshot expansion ({}",
                if self.csr_warm { "warm" } else { "built on first use" }
            )?;
            if let Some((rebuilt, total)) = self.csr_rebuilt_pairs {
                write!(f, "; last rebuild re-froze {rebuilt}/{total} link-type pairs")?;
            }
            writeln!(f, ")")?;
        }
        if let Some(r) = &self.residual_filter {
            writeln!(f, "  residual molecule filter: {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::Strategy;
    use crate::qual::QualExpr;
    use crate::structure::path;
    use mad_model::{AttrType, SchemaBuilder};
    use mad_storage::IndexKind;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("hectare", AttrType::Float)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .link_type("area-edge", "area", "edge")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        for i in 0..10i64 {
            let s = db
                .insert_atom(state, vec![Value::Text(format!("S{i}")), Value::Float(i as f64)])
                .unwrap();
            let a = db.insert_atom(area, vec![Value::Int(i)]).unwrap();
            db.connect(sa, s, a).unwrap();
            for j in 0..4i64 {
                let e = db.insert_atom(edge, vec![Value::Int(i * 4 + j)]).unwrap();
                db.connect(ae, a, e).unwrap();
            }
        }
        db
    }

    #[test]
    fn full_scan_without_qual() {
        let db = db();
        let md = path(db.schema(), &["state", "area", "edge"]).unwrap();
        let plan = explain(&db, &md, None);
        assert_eq!(
            plan.root_selection,
            RootSelection::FullOccurrence { atoms: 10 }
        );
        assert_eq!(plan.estimated_roots, 10.0);
        // fan-out estimates: 1 area per state, 4 edges per area
        assert!((plan.nodes[1].per_molecule - 1.0).abs() < 1e-9);
        assert!((plan.nodes[2].per_molecule - 4.0).abs() < 1e-9);
        assert_eq!(plan.suggested_strategy, Strategy::Bitset);
        assert!(plan.csr_expansion);
        assert!(plan.pushdown.is_empty());
        assert!(plan.residual_filter.is_none());
    }

    #[test]
    fn report_matches_what_execution_would_do() {
        // a hash index cannot serve a range probe: the report must say
        // "scan", exactly like the execution-time planner decides
        let mut db = db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "hectare", IndexKind::Hash).unwrap();
        let md = path(db.schema(), &["state", "area"]).unwrap();
        let range = QualExpr::cmp_const(0, 1, CmpOp::Gt, 5.0);
        let plan = explain(&db, &md, Some(&range));
        assert!(matches!(plan.root_selection, RootSelection::ScanFiltered { .. }));
        assert_eq!(plan.pushdown[0].conjuncts[0].access, AccessPath::Scan);
        let eq = QualExpr::cmp_const(0, 1, CmpOp::Eq, 5.0);
        let plan = explain(&db, &md, Some(&eq));
        assert!(matches!(plan.root_selection, RootSelection::IndexAssisted { .. }));
        assert_eq!(plan.pushdown[0].conjuncts[0].access, AccessPath::Index);
    }

    #[test]
    fn pushdown_report_covers_non_root_nodes() {
        let mut db = db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "hectare", IndexKind::Ordered).unwrap();
        let md = path(db.schema(), &["state", "area", "edge"]).unwrap();
        let q = QualExpr::cmp_const(0, 1, CmpOp::Gt, 5.0)
            .and(QualExpr::cmp_const(2, 0, CmpOp::Lt, 8));
        let plan = explain(&db, &md, Some(&q));
        assert_eq!(plan.pushdown.len(), 2);
        let root = plan.pushdown.iter().find(|p| p.alias == "state").unwrap();
        assert_eq!(root.conjuncts[0].access, AccessPath::Index);
        assert!(root.conjuncts[0].rendered.contains("state.hectare > 5"));
        let edge = plan.pushdown.iter().find(|p| p.alias == "edge").unwrap();
        assert_eq!(edge.conjuncts[0].access, AccessPath::Scan);
        let text = plan.to_string();
        assert!(text.contains("pushdown @state"), "got: {text}");
        assert!(text.contains("via index"), "got: {text}");
        assert!(text.contains("via scan"), "got: {text}");
        assert!(text.contains("CSR snapshot"), "got: {text}");
    }

    #[test]
    fn index_assisted_when_index_exists() {
        let mut db = db();
        let state = db.schema().atom_type_id("state").unwrap();
        db.create_index(state, "hectare", IndexKind::Ordered).unwrap();
        let md = path(db.schema(), &["state", "area"]).unwrap();
        let q = QualExpr::cmp_const(0, 1, CmpOp::Gt, 5.0);
        let plan = explain(&db, &md, Some(&q));
        assert!(matches!(
            plan.root_selection,
            RootSelection::IndexAssisted { .. }
        ));
        assert!(plan.estimated_roots < 10.0);
        assert!(plan.residual_filter.is_some());
    }

    #[test]
    fn scan_filtered_without_index() {
        let db = db();
        let md = path(db.schema(), &["state", "area"]).unwrap();
        let q = QualExpr::cmp_const(0, 0, CmpOp::Eq, "S3");
        let plan = explain(&db, &md, Some(&q));
        assert!(matches!(
            plan.root_selection,
            RootSelection::ScanFiltered { .. }
        ));
    }

    #[test]
    fn non_root_predicates_do_not_push() {
        let db = db();
        let md = path(db.schema(), &["state", "area", "edge"]).unwrap();
        let q = QualExpr::cmp_const(2, 0, CmpOp::Eq, 3);
        let plan = explain(&db, &md, Some(&q));
        assert!(matches!(
            plan.root_selection,
            RootSelection::FullOccurrence { .. }
        ));
        assert!(plan.residual_filter.unwrap().contains("edge.eid"));
    }

    #[test]
    fn parallel_suggested_for_heavy_plans() {
        // inflate the estimate by a long chain over a dense link type
        let schema = SchemaBuilder::new()
            .atom_type("a", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .link_type("ab", "a", "b")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let a = db.schema().atom_type_id("a").unwrap();
        let b = db.schema().atom_type_id("b").unwrap();
        let ab = db.schema().link_type_id("ab").unwrap();
        let bs: Vec<_> = (0..600)
            .map(|i| db.insert_atom(b, vec![Value::Int(i)]).unwrap())
            .collect();
        for i in 0..600i64 {
            let ai = db.insert_atom(a, vec![Value::Int(i)]).unwrap();
            for bj in bs.iter().take(300) {
                db.connect(ab, ai, *bj).unwrap();
            }
        }
        let md = path(db.schema(), &["a", "b"]).unwrap();
        let plan = explain(&db, &md, None);
        assert!(plan.estimated_lookups > 1e5);
        assert_eq!(plan.suggested_strategy, Strategy::Parallel(4));
        // the plan reports the worker count execution will actually use:
        // requested 4, capped at the hardware's available parallelism
        assert_eq!(plan.parallelism, Strategy::Parallel(4).effective_parallelism());
        assert!(plan.parallelism >= 1);
        // the parallel engine rides the CSR snapshot too
        assert!(plan.csr_expansion);
        let text = plan.to_string();
        assert!(
            text.contains(&format!("parallelism {}", plan.parallelism)),
            "got: {text}"
        );
    }

    #[test]
    fn reports_incremental_rebuild_stats() {
        let mut db = db();
        let md = path(db.schema(), &["state", "area", "edge"]).unwrap();
        // cold: no snapshot yet
        let plan = explain(&db, &md, None);
        assert_eq!(plan.csr_rebuilt_pairs, None);
        assert!(!plan.csr_warm);
        // warm it, then touch one link type: only that pair re-freezes
        let _ = db.csr_snapshot();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db.insert_atom(state, vec![Value::Text("X".into()), Value::Float(0.0)]).unwrap();
        let a = db.insert_atom(area, vec![Value::Int(99)]).unwrap();
        db.connect(sa, s, a).unwrap();
        let _ = db.csr_snapshot();
        let plan = explain(&db, &md, None);
        assert_eq!(plan.csr_rebuilt_pairs, Some((1, 2)));
        assert!(plan.csr_warm);
        assert_eq!(plan.parallelism, 1);
        let text = plan.to_string();
        assert!(text.contains("re-froze 1/2 link-type pairs"), "got: {text}");
    }

    #[test]
    fn display_mentions_everything() {
        let db = db();
        let md = path(db.schema(), &["state", "area", "edge"]).unwrap();
        let q = QualExpr::cmp_const(0, 1, CmpOp::Gt, 5.0);
        let text = explain(&db, &md, Some(&q)).to_string();
        assert!(text.contains("roots:"));
        assert!(text.contains("node state"));
        assert!(text.contains("suggested strategy"));
        assert!(text.contains("residual molecule filter"));
    }

    #[test]
    fn diamond_estimate_takes_minimum() {
        let schema = SchemaBuilder::new()
            .atom_type("r", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .atom_type("c", &[("z", AttrType::Int)])
            .atom_type("d", &[("w", AttrType::Int)])
            .link_type("rb", "r", "b")
            .link_type("rc", "r", "c")
            .link_type("bd", "b", "d")
            .link_type("cd", "c", "d")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let r1 = db.insert_atom(t(&db, "r"), vec![Value::Int(0)]).unwrap();
        let b1 = db.insert_atom(t(&db, "b"), vec![Value::Int(0)]).unwrap();
        let c1 = db.insert_atom(t(&db, "c"), vec![Value::Int(0)]).unwrap();
        // b has 3 d-children, c has 1 — the ∀-intersection estimate is min
        for i in 0..3 {
            let d = db.insert_atom(t(&db, "d"), vec![Value::Int(i)]).unwrap();
            db.connect(l(&db, "bd"), b1, d).unwrap();
            if i == 0 {
                db.connect(l(&db, "cd"), c1, d).unwrap();
            }
        }
        db.connect(l(&db, "rb"), r1, b1).unwrap();
        db.connect(l(&db, "rc"), r1, c1).unwrap();
        let md = crate::structure::StructureBuilder::new(db.schema())
            .node("r")
            .node("b")
            .node("c")
            .node("d")
            .edge("r", "b")
            .edge("r", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build()
            .unwrap();
        let plan = explain(&db, &md, None);
        let d_est = plan
            .nodes
            .iter()
            .find(|n| n.alias == "d")
            .unwrap()
            .per_molecule;
        assert!((d_est - 1.0).abs() < 1e-9, "min(3, 1) = 1, got {d_est}");
    }
}
