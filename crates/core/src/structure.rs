//! Molecule-type descriptions (Def. 5): the pair `md = <C, G>`.
//!
//! A [`MoleculeStructure`] is the "formula" of §2 — a coherent, directed,
//! acyclic type graph with a unique root, whose nodes are atom types and
//! whose edges are *directed* link types. The `md_graph` predicate of Def. 5
//! is enforced by [`StructureBuilder::build`]; an invalid graph never
//! becomes a `MoleculeStructure`.
//!
//! Two pragmatic extensions over the letter of the paper (both reduce to the
//! paper's definition when unused):
//!
//! * nodes carry an *alias*, so the same atom type may appear in two roles
//!   (the propagation function of Def. 9 renames types for the same reason);
//! * edges over **reflexive** link types carry an explicit traversal
//!   [`Direction`], which the unsorted pairs of Def. 2 leave ambiguous
//!   (§3.1's super-component vs. sub-component views).

use mad_model::{AtomTypeId, LinkTypeId, MadError, Result, Schema};
use mad_storage::database::Direction;
use std::fmt;

/// A node of the type graph: one atom type under an alias.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsNode {
    /// Role name, unique within the structure; defaults to the type name.
    pub alias: String,
    /// The atom type of this node.
    pub ty: AtomTypeId,
}

/// A directed edge of the type graph: `dl = <lname, from, to>` of Def. 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsEdge {
    /// The (nondirectional) link type being traversed.
    pub link: LinkTypeId,
    /// Index of the start node.
    pub from: usize,
    /// Index of the end node.
    pub to: usize,
    /// How the traversal maps onto the stored orientation of `link`
    /// (`Fwd` when `from` is on side 0; explicit for reflexive link types).
    pub dir: Direction,
}

/// A validated molecule-type description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MoleculeStructure {
    nodes: Vec<MsNode>,
    edges: Vec<MsEdge>,
    root: usize,
    /// Node indexes in a topological order starting at the root.
    topo: Vec<usize>,
    /// Incoming edge indexes per node.
    incoming: Vec<Vec<usize>>,
    /// Outgoing edge indexes per node.
    outgoing: Vec<Vec<usize>>,
}

impl MoleculeStructure {
    /// The nodes, in insertion order.
    pub fn nodes(&self) -> &[MsNode] {
        &self.nodes
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[MsEdge] {
        &self.edges
    }

    /// Index of the root node (the unique node without incoming edges).
    pub fn root(&self) -> usize {
        self.root
    }

    /// The root node itself.
    pub fn root_node(&self) -> &MsNode {
        &self.nodes[self.root]
    }

    /// Node indexes in topological order (root first).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Incoming edge indexes of node `n`.
    pub fn incoming(&self, n: usize) -> &[usize] {
        &self.incoming[n]
    }

    /// Outgoing edge indexes of node `n`.
    pub fn outgoing(&self, n: usize) -> &[usize] {
        &self.outgoing[n]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Find a node index by alias.
    pub fn node_by_alias(&self, alias: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.alias == alias)
    }

    /// Are `self` and `other` isomorphic descriptions in node order — same
    /// atom types, same link types, same edge wiring? This is the
    /// compatibility notion used by Ω and Δ (the paper's `ad1 = ad2`
    /// lifted to descriptions). Aliases are ignored.
    pub fn same_shape(&self, other: &MoleculeStructure) -> bool {
        self.root == other.root
            && self.nodes.len() == other.nodes.len()
            && self.edges.len() == other.edges.len()
            && self
                .nodes
                .iter()
                .zip(&other.nodes)
                .all(|(a, b)| a.ty == b.ty)
            && self
                .edges
                .iter()
                .zip(&other.edges)
                .all(|(a, b)| a.link == b.link && a.from == b.from && a.to == b.to && a.dir == b.dir)
    }

    /// Like [`MoleculeStructure::same_shape`] but comparing atom/link types
    /// through a canonicalization function (used after propagation, where
    /// types have been renamed).
    pub fn same_shape_by<FA, FL>(&self, other: &MoleculeStructure, mut canon_at: FA, mut canon_lt: FL) -> bool
    where
        FA: FnMut(AtomTypeId) -> AtomTypeId,
        FL: FnMut(LinkTypeId) -> LinkTypeId,
    {
        self.root == other.root
            && self.nodes.len() == other.nodes.len()
            && self.edges.len() == other.edges.len()
            && self
                .nodes
                .iter()
                .zip(&other.nodes)
                .all(|(a, b)| canon_at(a.ty) == canon_at(b.ty))
            && self.edges.iter().zip(&other.edges).all(|(a, b)| {
                canon_lt(a.link) == canon_lt(b.link)
                    && a.from == b.from
                    && a.to == b.to
                    && a.dir == b.dir
            })
    }

    /// Render in the FROM-clause syntax of §4 (e.g.
    /// `state-area-edge-point`, `point-edge-(area-state,net-river)`).
    pub fn render_compact(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.render_from(schema, self.root, &mut out);
        out
    }

    fn render_from(&self, schema: &Schema, node: usize, out: &mut String) {
        out.push_str(&self.nodes[node].alias);
        let succ: Vec<&MsEdge> = self.outgoing[node].iter().map(|&e| &self.edges[e]).collect();
        match succ.len() {
            0 => {}
            1 => {
                out.push('-');
                self.render_edge_label(schema, succ[0], out);
                self.render_from(schema, succ[0].to, out);
            }
            _ => {
                out.push_str("-(");
                for (i, e) in succ.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.render_edge_label(schema, e, out);
                    self.render_from(schema, e.to, out);
                }
                out.push(')');
            }
        }
    }

    fn render_edge_label(&self, schema: &Schema, e: &MsEdge, out: &mut String) {
        // §4: '-' suffices when only one link type connects the two atom
        // types; otherwise the link-type name disambiguates.
        let from_ty = self.nodes[e.from].ty;
        let to_ty = self.nodes[e.to].ty;
        let between = schema.link_types_between(from_ty, to_ty);
        let def = schema.link_type(e.link);
        if between.len() > 1 || def.is_reflexive() {
            out.push('[');
            out.push_str(&def.name);
            if def.is_reflexive() {
                out.push_str(match e.dir {
                    Direction::Fwd => ">",
                    Direction::Bwd => "<",
                    Direction::Sym => "~",
                });
            }
            out.push_str("]-");
        }
    }

    /// Render as an indented tree (used in examples and figure output).
    pub fn render_tree(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.render_tree_node(schema, self.root, 0, &mut out);
        out
    }

    fn render_tree_node(&self, schema: &Schema, node: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[node];
        let tyname = &schema.atom_type(n.ty).name;
        for _ in 0..depth {
            out.push_str("  ");
        }
        if n.alias == *tyname {
            out.push_str(tyname);
        } else {
            out.push_str(&format!("{} ({})", n.alias, tyname));
        }
        out.push('\n');
        for &e in &self.outgoing[node] {
            self.render_tree_node(schema, self.edges[e].to, depth + 1, out);
        }
    }
}

/// Builder enforcing the `md_graph` predicate.
pub struct StructureBuilder<'a> {
    schema: &'a Schema,
    nodes: Vec<MsNode>,
    edges: Vec<MsEdge>,
    error: Option<MadError>,
}

impl<'a> StructureBuilder<'a> {
    /// Start building against `schema`.
    pub fn new(schema: &'a Schema) -> Self {
        StructureBuilder {
            schema,
            nodes: Vec::new(),
            edges: Vec::new(),
            error: None,
        }
    }

    fn fail(&mut self, e: MadError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Add a node whose alias equals the atom-type name.
    pub fn node(self, atom_type: &str) -> Self {
        let alias = atom_type.to_owned();
        self.node_as(&alias, atom_type)
    }

    /// Add a node under an explicit alias.
    pub fn node_as(mut self, alias: &str, atom_type: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        if self.nodes.iter().any(|n| n.alias == alias) {
            self.fail(MadError::duplicate("structure node alias", alias));
            return self;
        }
        match self.schema.atom_type_id(atom_type) {
            Ok(ty) => self.nodes.push(MsNode {
                alias: alias.to_owned(),
                ty,
            }),
            Err(e) => self.fail(e),
        }
        self
    }

    /// Add a directed edge between two aliases; the link type is inferred
    /// when exactly one connects the two atom types (the `-` shorthand of
    /// §4), otherwise [`StructureBuilder::edge_named`] must be used.
    pub fn edge(mut self, from: &str, to: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        let (Some(fi), Some(ti)) = (self.find(from), self.find(to)) else {
            let missing = if self.find(from).is_none() { from } else { to };
            self.fail(MadError::unknown("structure node", missing));
            return self;
        };
        let between = self
            .schema
            .link_types_between(self.nodes[fi].ty, self.nodes[ti].ty);
        match between.len() {
            0 => {
                self.fail(MadError::structure(format!(
                    "no link type connects `{from}` and `{to}`"
                )));
                self
            }
            1 => {
                let link = between[0];
                self.push_edge(link, fi, ti, None);
                self
            }
            _ => {
                self.fail(MadError::structure(format!(
                    "{} link types connect `{from}` and `{to}`; name one explicitly",
                    between.len()
                )));
                self
            }
        }
    }

    /// Add a directed edge through a named link type.
    pub fn edge_named(mut self, link: &str, from: &str, to: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        let (Some(fi), Some(ti)) = (self.find(from), self.find(to)) else {
            let missing = if self.find(from).is_none() { from } else { to };
            self.fail(MadError::unknown("structure node", missing));
            return self;
        };
        match self.schema.link_type_id(link) {
            Ok(lt) => {
                self.push_edge(lt, fi, ti, None);
                self
            }
            Err(e) => {
                self.fail(e);
                self
            }
        }
    }

    /// Add an edge through a reflexive link type with explicit traversal
    /// direction (`Fwd` = side0→side1 view, `Bwd` = the converse, `Sym` =
    /// both).
    pub fn edge_directed(mut self, link: &str, from: &str, to: &str, dir: Direction) -> Self {
        if self.error.is_some() {
            return self;
        }
        let (Some(fi), Some(ti)) = (self.find(from), self.find(to)) else {
            let missing = if self.find(from).is_none() { from } else { to };
            self.fail(MadError::unknown("structure node", missing));
            return self;
        };
        match self.schema.link_type_id(link) {
            Ok(lt) => {
                self.push_edge(lt, fi, ti, Some(dir));
                self
            }
            Err(e) => {
                self.fail(e);
                self
            }
        }
    }

    fn find(&self, alias: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.alias == alias)
    }

    fn push_edge(&mut self, link: LinkTypeId, from: usize, to: usize, dir: Option<Direction>) {
        let def = self.schema.link_type(link);
        let from_ty = self.nodes[from].ty;
        let to_ty = self.nodes[to].ty;
        let dir = if def.is_reflexive() {
            if from_ty != def.ends[0] || to_ty != def.ends[0] {
                self.fail(MadError::structure(format!(
                    "link type `{}` does not connect the node types of `{}`→`{}`",
                    def.name, self.nodes[from].alias, self.nodes[to].alias
                )));
                return;
            }
            match dir {
                Some(d) => d,
                None => {
                    self.fail(MadError::structure(format!(
                        "link type `{}` is reflexive; an explicit direction is required",
                        def.name
                    )));
                    return;
                }
            }
        } else {
            // orientation is determined by the endpoint types
            if def.ends[0] == from_ty && def.ends[1] == to_ty {
                Direction::Fwd
            } else if def.ends[1] == from_ty && def.ends[0] == to_ty {
                Direction::Bwd
            } else {
                self.fail(MadError::structure(format!(
                    "link type `{}` does not connect the node types of `{}`→`{}`",
                    def.name, self.nodes[from].alias, self.nodes[to].alias
                )));
                return;
            }
        };
        if self
            .edges
            .iter()
            .any(|e| e.link == link && e.from == from && e.to == to)
        {
            self.fail(MadError::structure(format!(
                "duplicate edge `{}` from `{}` to `{}`",
                def.name, self.nodes[from].alias, self.nodes[to].alias
            )));
            return;
        }
        self.edges.push(MsEdge {
            link,
            from,
            to,
            dir,
        });
    }

    /// Validate `md_graph` and produce the structure.
    pub fn build(self) -> Result<MoleculeStructure> {
        if let Some(e) = self.error {
            return Err(e);
        }
        finalize(self.nodes, self.edges)
    }
}

/// Validate the `md_graph` properties (directed, acyclic, coherent, single
/// root) over raw node/edge lists and assemble a [`MoleculeStructure`].
pub fn finalize(nodes: Vec<MsNode>, edges: Vec<MsEdge>) -> Result<MoleculeStructure> {
    if nodes.is_empty() {
        return Err(MadError::structure("a molecule structure needs ≥ 1 node"));
    }
    for e in &edges {
        if e.from >= nodes.len() || e.to >= nodes.len() {
            return Err(MadError::structure("edge references missing node"));
        }
        if e.from == e.to {
            return Err(MadError::structure(
                "self-loop edges are not allowed (use a recursive molecule type)",
            ));
        }
    }
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, e) in edges.iter().enumerate() {
        incoming[e.to].push(i);
        outgoing[e.from].push(i);
    }
    // unique root
    let roots: Vec<usize> = (0..nodes.len()).filter(|&n| incoming[n].is_empty()).collect();
    let root = match roots.as_slice() {
        [r] => *r,
        [] => return Err(MadError::structure("no root: the type graph is cyclic")),
        many => {
            let names: Vec<&str> = many.iter().map(|&n| nodes[n].alias.as_str()).collect();
            return Err(MadError::structure(format!(
                "multiple roots: {} (the graph must be coherent with one root)",
                names.join(", ")
            )));
        }
    };
    // topological sort (Kahn) — also detects cycles
    let mut indeg: Vec<usize> = incoming.iter().map(Vec::len).collect();
    let mut queue = vec![root];
    let mut topo = Vec::with_capacity(nodes.len());
    while let Some(n) = queue.pop() {
        topo.push(n);
        for &e in &outgoing[n] {
            let t = edges[e].to;
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if topo.len() != nodes.len() {
        // nodes not reached either sit on a cycle or are disconnected
        let unreached: Vec<&str> = (0..nodes.len())
            .filter(|n| !topo.contains(n))
            .map(|n| nodes[n].alias.as_str())
            .collect();
        return Err(MadError::structure(format!(
            "type graph is not a coherent DAG; unreachable or cyclic nodes: {}",
            unreached.join(", ")
        )));
    }
    Ok(MoleculeStructure {
        nodes,
        edges,
        root,
        topo,
        incoming,
        outgoing,
    })
}

/// Convenience: a linear path structure `a - b - c - …` (the
/// `state-area-edge-point` shorthand of §4).
pub fn path(schema: &Schema, names: &[&str]) -> Result<MoleculeStructure> {
    let mut b = StructureBuilder::new(schema);
    for n in names {
        b = b.node(n);
    }
    for w in names.windows(2) {
        b = b.edge(w[0], w[1]);
    }
    b.build()
}

impl fmt::Display for MoleculeStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "structure({} nodes, {} edges, root={})",
            self.nodes.len(),
            self.edges.len(),
            self.nodes[self.root].alias
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder};

    fn geo_schema() -> Schema {
        SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("river", &[("rname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("net", &[("nid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .atom_type("point", &[("name", AttrType::Text)])
            .link_type("state-area", "state", "area")
            .link_type("river-net", "river", "net")
            .link_type("area-edge", "area", "edge")
            .link_type("net-edge", "net", "edge")
            .link_type("edge-point", "edge", "point")
            .build()
            .unwrap()
    }

    #[test]
    fn path_builds_mt_state() {
        let s = geo_schema();
        let md = path(&s, &["state", "area", "edge", "point"]).unwrap();
        assert_eq!(md.node_count(), 4);
        assert_eq!(md.edge_count(), 3);
        assert_eq!(md.root_node().alias, "state");
        assert_eq!(md.topo_order()[0], md.root());
        assert_eq!(md.render_compact(&s), "state-area-edge-point");
    }

    #[test]
    fn point_neighborhood_structure() {
        // Fig. 2 upper half: point-edge-(area-state, net-river)
        let s = geo_schema();
        let md = StructureBuilder::new(&s)
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        assert_eq!(md.root_node().alias, "point");
        assert_eq!(md.render_compact(&s), "point-edge-(area-state,net-river)");
        // edges from edge→area traverse area-edge in Bwd orientation
        let e = &md.edges()[1];
        assert_eq!(e.dir, Direction::Bwd);
    }

    #[test]
    fn symmetric_reuse_of_link_types() {
        // The same link types serve both directions (the flexibility claim
        // of §2): state→area uses Fwd, area→state uses Bwd.
        let s = geo_schema();
        let down = path(&s, &["state", "area"]).unwrap();
        assert_eq!(down.edges()[0].dir, Direction::Fwd);
        let up = path(&s, &["area", "state"]).unwrap();
        assert_eq!(up.edges()[0].dir, Direction::Bwd);
        assert_eq!(down.edges()[0].link, up.edges()[0].link);
    }

    #[test]
    fn rejects_multiple_roots() {
        let s = geo_schema();
        let err = StructureBuilder::new(&s)
            .node("state")
            .node("river")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("multiple roots"));
    }

    #[test]
    fn rejects_cycle() {
        // state→area→state is a cycle once both edges point "down"
        let s = geo_schema();
        let err = StructureBuilder::new(&s)
            .node("state")
            .node("area")
            .edge("state", "area")
            .edge("area", "state")
            .build()
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("cyclic") || msg.contains("no root"),
            "got: {msg}"
        );
    }

    #[test]
    fn rejects_unknown_node_or_type() {
        let s = geo_schema();
        assert!(StructureBuilder::new(&s).node("city").build().is_err());
        assert!(StructureBuilder::new(&s)
            .node("state")
            .edge("state", "ghost")
            .build()
            .is_err());
    }

    #[test]
    fn rejects_unlinked_edge() {
        let s = geo_schema();
        let err = StructureBuilder::new(&s)
            .node("state")
            .node("point")
            .edge("state", "point")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no link type"));
    }

    #[test]
    fn rejects_duplicate_alias_and_edge() {
        let s = geo_schema();
        assert!(StructureBuilder::new(&s)
            .node("state")
            .node("state")
            .build()
            .is_err());
        assert!(StructureBuilder::new(&s)
            .node("state")
            .node("area")
            .edge("state", "area")
            .edge("state", "area")
            .build()
            .is_err());
    }

    #[test]
    fn alias_allows_type_reuse() {
        let s = geo_schema();
        let md = StructureBuilder::new(&s)
            .node("edge")
            .node_as("a1", "area")
            .node_as("a2", "area")
            .edge("edge", "a1")
            .edge("edge", "a2")
            .build()
            .unwrap();
        assert_eq!(md.node_count(), 3);
        assert_eq!(md.nodes()[1].ty, md.nodes()[2].ty);
    }

    #[test]
    fn reflexive_needs_direction() {
        let s = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let err = StructureBuilder::new(&s)
            .node_as("super", "parts")
            .node_as("sub", "parts")
            .edge_named("composition", "super", "sub")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("reflexive"));
        let md = StructureBuilder::new(&s)
            .node_as("super", "parts")
            .node_as("sub", "parts")
            .edge_directed("composition", "super", "sub", Direction::Fwd)
            .build()
            .unwrap();
        assert_eq!(md.edges()[0].dir, Direction::Fwd);
    }

    #[test]
    fn self_loop_rejected() {
        let s = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let err = StructureBuilder::new(&s)
            .node("parts")
            .edge_directed("composition", "parts", "parts", Direction::Fwd)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("self-loop"));
    }

    #[test]
    fn same_shape_ignores_alias() {
        let s = geo_schema();
        let a = path(&s, &["state", "area"]).unwrap();
        let b = StructureBuilder::new(&s)
            .node_as("st", "state")
            .node_as("ar", "area")
            .edge("st", "ar")
            .build()
            .unwrap();
        assert!(a.same_shape(&b));
        let c = path(&s, &["area", "state"]).unwrap();
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn topo_order_respects_edges() {
        let s = geo_schema();
        let md = StructureBuilder::new(&s)
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .build()
            .unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; md.node_count()];
            for (i, &n) in md.topo_order().iter().enumerate() {
                p[n] = i;
            }
            p
        };
        for e in md.edges() {
            assert!(pos[e.from] < pos[e.to]);
        }
    }

    #[test]
    fn render_tree_nested() {
        let s = geo_schema();
        let md = path(&s, &["state", "area", "edge"]).unwrap();
        let t = md.render_tree(&s);
        assert_eq!(t, "state\n  area\n    edge\n");
    }

    #[test]
    fn node_by_alias_lookup() {
        let s = geo_schema();
        let md = path(&s, &["state", "area"]).unwrap();
        assert_eq!(md.node_by_alias("area"), Some(1));
        assert_eq!(md.node_by_alias("ghost"), None);
    }
}
