//! The atom-type operations of Def. 4: projection π, restriction σ,
//! cartesian product ×, union ω, difference δ — each producing a **new atom
//! type** inside the (enlarged) database, with the operand's link types
//! *inherited* to the result so that subsequent molecule operations can
//! navigate from derived types (Theorem 1's closure over DB*).
//!
//! Link-type inheritance, reconstructed from the paper's description
//! (\[Mi88a\] holds the full definition): for every link type touching an
//! operand type, the result type receives a derived link type to the same
//! partner type; a result atom is linked to exactly the partners of the
//! source atom(s) it was built from. Cardinality restrictions are *not*
//! inherited (projection may merge two sources into one result atom,
//! restriction may remove partners — either can break the original bounds).
//!
//! All five operations use **set semantics** on attribute tuples, exactly
//! like the relational algebra they generalize (Fig. 3); this is what the
//! "relational degeneration" property tests check against `mad-relational`.

use crate::qual::CmpOp;
use mad_model::{
    AtomId, AtomTypeDef, AtomTypeId, FxHashMap, LinkTypeDef, MadError, Result, Value,
};
use mad_storage::Database;

/// A restriction predicate over a single atom (the `restr(ad)` of Def. 4;
/// the molecule-level formulas of Def. 10 live in [`crate::qual`]).
#[derive(Clone, Debug, PartialEq)]
pub enum AtomPred {
    /// Always true.
    True,
    /// `attr op const`.
    Cmp {
        /// Attribute position.
        attr: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Compared constant.
        value: Value,
    },
    /// Conjunction.
    And(Box<AtomPred>, Box<AtomPred>),
    /// Disjunction.
    Or(Box<AtomPred>, Box<AtomPred>),
    /// Negation.
    Not(Box<AtomPred>),
}

impl AtomPred {
    /// `attr op value` helper.
    pub fn cmp(attr: usize, op: CmpOp, value: impl Into<Value>) -> Self {
        AtomPred::Cmp {
            attr,
            op,
            value: value.into(),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: AtomPred) -> Self {
        AtomPred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: AtomPred) -> Self {
        AtomPred::Or(Box::new(self), Box::new(other))
    }

    /// The predicate `qual(restr(ad), a)` (unknown → false).
    pub fn eval(&self, tuple: &[Value]) -> bool {
        self.eval3(tuple) == Some(true)
    }

    fn eval3(&self, tuple: &[Value]) -> Option<bool> {
        match self {
            AtomPred::True => Some(true),
            AtomPred::Cmp { attr, op, value } => {
                tuple[*attr].sql_cmp(value).map(|ord| op.test(ord))
            }
            AtomPred::And(a, b) => match (a.eval3(tuple), b.eval3(tuple)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            AtomPred::Or(a, b) => match (a.eval3(tuple), b.eval3(tuple)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            AtomPred::Not(a) => a.eval3(tuple).map(|b| !b),
        }
    }
}

/// `source atom → result atoms` mapping used for link inheritance.
type SourceMap = FxHashMap<AtomId, Vec<AtomId>>;

/// Inherit every link type in `link_types` (a snapshot of the link types
/// touching `operand`, taken *before* the operation started creating new
/// ones) onto `result`: for each a derived link type `result ↔ partner` is
/// created and filled with `(result atom, partner)` links.
fn inherit_links(
    db: &mut Database,
    operand: AtomTypeId,
    result: AtomTypeId,
    map: &SourceMap,
    op_desc: &str,
    link_types: &[mad_model::LinkTypeId],
) -> Result<()> {
    for &lt in link_types {
        let def = db.schema().link_type(lt).clone();
        for side in 0..2 {
            // reflexive types match both sides and are inherited twice,
            // once per orientation
            if def.ends[side] != operand {
                continue;
            }
            let partner_ty = def.ends[1 - side];
            let name = db
                .schema()
                .fresh_link_type_name(&format!("{}~{}", def.name, db.schema().atom_type(result).name));
            let mut new_def = if side == 0 {
                LinkTypeDef::new(name, result, partner_ty)
            } else {
                LinkTypeDef::new(name, partner_ty, result)
            };
            new_def.derived_from = Some(format!("inherited from `{}` by {op_desc}", def.name));
            let new_lt = db.add_link_type(new_def)?;
            // copy links: (source, partner) → (result, partner)
            let pairs: Vec<(AtomId, AtomId)> = db.links_of(lt).collect();
            for (a, b) in pairs {
                let (src, partner) = if side == 0 { (a, b) } else { (b, a) };
                if src.ty != operand {
                    continue;
                }
                if let Some(results) = map.get(&src) {
                    for &r in results {
                        if side == 0 {
                            db.connect(new_lt, r, partner)?;
                        } else {
                            db.connect(new_lt, partner, r)?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn fresh_type_name(db: &Database, name: Option<&str>, default: String) -> String {
    match name {
        Some(n) => db.schema().fresh_atom_type_name(n),
        None => db.schema().fresh_atom_type_name(&default),
    }
}

/// π — atom-type projection (Def. 4). Keeps the attributes named in
/// `attrs` (in the given order), eliminates duplicate tuples (set
/// semantics), and inherits link types (a merged result atom receives the
/// links of *all* its sources).
pub fn project(
    db: &mut Database,
    at: AtomTypeId,
    attrs: &[&str],
    name: Option<&str>,
) -> Result<AtomTypeId> {
    let def = db.schema().atom_type(at).clone();
    let mut positions = Vec::with_capacity(attrs.len());
    let mut new_attrs = Vec::with_capacity(attrs.len());
    for a in attrs {
        let pos = def
            .attr_index(a)
            .ok_or_else(|| MadError::unknown("attribute", format!("{a} of `{}`", def.name)))?;
        positions.push(pos);
        new_attrs.push(def.attrs[pos].clone());
    }
    let inherited = db.schema().link_types_of(at).to_vec();
    let result_name = fresh_type_name(db, name, format!("pi_{}", def.name));
    let new_def = AtomTypeDef::derived(
        result_name,
        new_attrs,
        format!("π[{}]({})", attrs.join(","), def.name),
    );
    let result = db.add_atom_type(new_def)?;
    // set semantics: group sources by projected tuple
    let mut by_tuple: FxHashMap<Vec<Value>, Vec<AtomId>> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for (id, tuple) in db.atoms_of(at) {
        let projected: Vec<Value> = positions.iter().map(|&p| tuple[p].clone()).collect();
        by_tuple
            .entry(projected.clone())
            .or_insert_with(|| {
                order.push(projected);
                Vec::new()
            })
            .push(id);
    }
    let mut map: SourceMap = FxHashMap::default();
    for tuple in order {
        let sources = by_tuple.remove(&tuple).unwrap();
        let rid = db.insert_atom(result, tuple)?;
        for s in sources {
            map.entry(s).or_default().push(rid);
        }
    }
    inherit_links(db, at, result, &map, "π", &inherited)?;
    Ok(result)
}

/// σ — atom-type restriction (Def. 4).
pub fn restrict(
    db: &mut Database,
    at: AtomTypeId,
    pred: &AtomPred,
    name: Option<&str>,
) -> Result<AtomTypeId> {
    let def = db.schema().atom_type(at).clone();
    let inherited = db.schema().link_types_of(at).to_vec();
    let result_name = fresh_type_name(db, name, format!("sigma_{}", def.name));
    let new_def = AtomTypeDef::derived(
        result_name,
        def.attrs.clone(),
        format!("σ[…]({})", def.name),
    );
    let result = db.add_atom_type(new_def)?;
    let selected: Vec<(AtomId, Vec<Value>)> = db
        .atoms_of(at)
        .filter(|(_, t)| pred.eval(t))
        .map(|(id, t)| (id, t.to_vec()))
        .collect();
    let mut map: SourceMap = FxHashMap::default();
    for (src, tuple) in selected {
        let rid = db.insert_atom(result, tuple)?;
        map.insert(src, vec![rid]);
    }
    inherit_links(db, at, result, &map, "σ", &inherited)?;
    Ok(result)
}

/// × — cartesian product (Def. 4). Attribute descriptions must be
/// disjoint; the result atom `a1 & a2` concatenates the tuples and inherits
/// the links of **both** constituents.
pub fn product(
    db: &mut Database,
    at1: AtomTypeId,
    at2: AtomTypeId,
    name: Option<&str>,
) -> Result<AtomTypeId> {
    let def1 = db.schema().atom_type(at1).clone();
    let def2 = db.schema().atom_type(at2).clone();
    if !def1.disjoint_with(&def2) {
        return Err(MadError::IncompatibleOperands {
            op: "×",
            detail: format!(
                "descriptions of `{}` and `{}` share attribute names",
                def1.name, def2.name
            ),
        });
    }
    let inherited1 = db.schema().link_types_of(at1).to_vec();
    let inherited2 = db.schema().link_types_of(at2).to_vec();
    let mut attrs = def1.attrs.clone();
    attrs.extend(def2.attrs.iter().cloned());
    let result_name = fresh_type_name(db, name, format!("{}_x_{}", def1.name, def2.name));
    let new_def = AtomTypeDef::derived(
        result_name,
        attrs,
        format!("×({}, {})", def1.name, def2.name),
    );
    let result = db.add_atom_type(new_def)?;
    let left: Vec<(AtomId, Vec<Value>)> = db
        .atoms_of(at1)
        .map(|(id, t)| (id, t.to_vec()))
        .collect();
    let right: Vec<(AtomId, Vec<Value>)> = db
        .atoms_of(at2)
        .map(|(id, t)| (id, t.to_vec()))
        .collect();
    let mut map1: SourceMap = FxHashMap::default();
    let mut map2: SourceMap = FxHashMap::default();
    for (id1, t1) in &left {
        for (id2, t2) in &right {
            let mut tuple = t1.clone();
            tuple.extend(t2.iter().cloned());
            let rid = db.insert_atom(result, tuple)?;
            map1.entry(*id1).or_default().push(rid);
            map2.entry(*id2).or_default().push(rid);
        }
    }
    inherit_links(db, at1, result, &map1, "×", &inherited1)?;
    inherit_links(db, at2, result, &map2, "×", &inherited2)?;
    Ok(result)
}

/// ω — atom-type union (Def. 4). Requires `ad1 = ad2`; result atoms are
/// value-deduplicated across both operands and inherit links from every
/// source atom with that value.
pub fn union(
    db: &mut Database,
    at1: AtomTypeId,
    at2: AtomTypeId,
    name: Option<&str>,
) -> Result<AtomTypeId> {
    let def1 = db.schema().atom_type(at1).clone();
    let def2 = db.schema().atom_type(at2).clone();
    if !def1.same_description(&def2) {
        return Err(MadError::IncompatibleOperands {
            op: "ω",
            detail: format!(
                "`{}` and `{}` have different descriptions",
                def1.name, def2.name
            ),
        });
    }
    let inherited1 = db.schema().link_types_of(at1).to_vec();
    let inherited2 = db.schema().link_types_of(at2).to_vec();
    let result_name = fresh_type_name(db, name, format!("{}_u_{}", def1.name, def2.name));
    let new_def = AtomTypeDef::derived(
        result_name,
        def1.attrs.clone(),
        format!("ω({}, {})", def1.name, def2.name),
    );
    let result = db.add_atom_type(new_def)?;
    let mut by_tuple: FxHashMap<Vec<Value>, Vec<AtomId>> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for ty in [at1, at2] {
        for (id, tuple) in db.atoms_of(ty) {
            let t = tuple.to_vec();
            by_tuple
                .entry(t.clone())
                .or_insert_with(|| {
                    order.push(t);
                    Vec::new()
                })
                .push(id);
        }
    }
    let mut map1: SourceMap = FxHashMap::default();
    let mut map2: SourceMap = FxHashMap::default();
    for tuple in order {
        let sources = by_tuple.remove(&tuple).unwrap();
        let rid = db.insert_atom(result, tuple)?;
        for s in sources {
            if s.ty == at1 {
                map1.entry(s).or_default().push(rid);
            } else {
                map2.entry(s).or_default().push(rid);
            }
        }
    }
    inherit_links(db, at1, result, &map1, "ω", &inherited1)?;
    if at2 != at1 {
        inherit_links(db, at2, result, &map2, "ω", &inherited2)?;
    }
    Ok(result)
}

/// δ — atom-type difference (Def. 4). Requires `ad1 = ad2`; keeps the
/// tuples of `at1` whose values do not occur in `at2`.
pub fn difference(
    db: &mut Database,
    at1: AtomTypeId,
    at2: AtomTypeId,
    name: Option<&str>,
) -> Result<AtomTypeId> {
    let def1 = db.schema().atom_type(at1).clone();
    let def2 = db.schema().atom_type(at2).clone();
    if !def1.same_description(&def2) {
        return Err(MadError::IncompatibleOperands {
            op: "δ",
            detail: format!(
                "`{}` and `{}` have different descriptions",
                def1.name, def2.name
            ),
        });
    }
    let inherited = db.schema().link_types_of(at1).to_vec();
    let result_name = fresh_type_name(db, name, format!("{}_minus_{}", def1.name, def2.name));
    let new_def = AtomTypeDef::derived(
        result_name,
        def1.attrs.clone(),
        format!("δ({}, {})", def1.name, def2.name),
    );
    let result = db.add_atom_type(new_def)?;
    let minus: std::collections::HashSet<Vec<Value>> =
        db.atoms_of(at2).map(|(_, t)| t.to_vec()).collect();
    let mut by_tuple: FxHashMap<Vec<Value>, Vec<AtomId>> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for (id, tuple) in db.atoms_of(at1) {
        if minus.contains(tuple) {
            continue;
        }
        let t = tuple.to_vec();
        by_tuple
            .entry(t.clone())
            .or_insert_with(|| {
                order.push(t);
                Vec::new()
            })
            .push(id);
    }
    let mut map: SourceMap = FxHashMap::default();
    for tuple in order {
        let sources = by_tuple.remove(&tuple).unwrap();
        let rid = db.insert_atom(result, tuple)?;
        for s in sources {
            map.entry(s).or_default().push(rid);
        }
    }
    inherit_links(db, at1, result, &map, "δ", &inherited)?;
    Ok(result)
}

/// Derived operation: intersection of two atom types via double difference
/// (the same construction §3.2 uses for molecule types:
/// Ψ(t1,t2) = δ(t1, δ(t1,t2))).
pub fn intersection(
    db: &mut Database,
    at1: AtomTypeId,
    at2: AtomTypeId,
    name: Option<&str>,
) -> Result<AtomTypeId> {
    let d = difference(db, at1, at2, None)?;
    difference(db, at1, d, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder};

    /// area(aid, hectare) —(area-edge)— edge(eid); states link to areas.
    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int), ("hectare", AttrType::Float)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .link_type("area-edge", "area", "edge")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let a1 = db
            .insert_atom(area, vec![Value::from(1), Value::from(500.0)])
            .unwrap();
        let a2 = db
            .insert_atom(area, vec![Value::from(2), Value::from(1500.0)])
            .unwrap();
        let e1 = db.insert_atom(edge, vec![Value::from(10)]).unwrap();
        let e2 = db.insert_atom(edge, vec![Value::from(20)]).unwrap();
        db.connect(sa, s1, a1).unwrap();
        db.connect(sa, s1, a2).unwrap();
        db.connect(ae, a1, e1).unwrap();
        db.connect(ae, a2, e1).unwrap();
        db.connect(ae, a2, e2).unwrap();
        db
    }

    #[test]
    fn restriction_filters_and_inherits_links() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        // σ[hectare > 1000](area) — the paper's §3.1 example (on `border`
        // there; the mechanics are identical)
        let big = restrict(
            &mut db,
            area,
            &AtomPred::cmp(1, CmpOp::Gt, 1000.0),
            Some("big_area"),
        )
        .unwrap();
        assert_eq!(db.atom_count(big), 1);
        let (big_atom, tuple) = db.atoms_of(big).next().unwrap();
        assert_eq!(tuple[0], Value::Int(2));
        // inherited link types exist and carry a2's links
        let inherited: Vec<_> = db.schema().link_types_of(big).to_vec();
        assert_eq!(inherited.len(), 2, "state-area and area-edge inherited");
        // through the inherited area-edge the restricted atom still reaches
        // e1 and e2
        let ae_inh = inherited
            .iter()
            .copied()
            .find(|&lt| db.schema().link_type(lt).name.starts_with("area-edge"))
            .unwrap();
        let dir = db.direction_from(ae_inh, big).unwrap();
        assert_eq!(db.partners(ae_inh, big_atom, dir).len(), 2);
    }

    #[test]
    fn restriction_result_is_reusable_in_structures() {
        // the point of link inheritance: derived types work as molecule
        // structure nodes
        use crate::derive::derive_one;
        use crate::structure::StructureBuilder;
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        let big = restrict(
            &mut db,
            area,
            &AtomPred::cmp(1, CmpOp::Gt, 1000.0),
            Some("big_area"),
        )
        .unwrap();
        let ae_inh_name = db
            .schema()
            .link_types_of(big)
            .iter()
            .map(|&lt| db.schema().link_type(lt).name.clone())
            .find(|n| n.starts_with("area-edge"))
            .unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("big_area")
            .node("edge")
            .edge_named(&ae_inh_name, "big_area", "edge")
            .build()
            .unwrap();
        let root = db.atom_ids_of(big)[0];
        let m = derive_one(&db, &md, root).unwrap();
        assert_eq!(m.atoms_at(1).len(), 2, "a2's edges e1, e2");
    }

    #[test]
    fn projection_dedups_and_merges_links() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        // add a duplicate-hectare area to force a merge
        let a3 = db
            .insert_atom(area, vec![Value::from(3), Value::from(500.0)])
            .unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let ae = db.schema().link_type_id("area-edge").unwrap();
        let e2 = db.atom_ids_of(edge)[1];
        db.connect(ae, a3, e2).unwrap();
        let p = project(&mut db, area, &["hectare"], Some("hectares")).unwrap();
        // 500.0 occurs twice → deduplicated
        assert_eq!(db.atom_count(p), 2);
        let def = db.schema().atom_type(p);
        assert_eq!(def.attrs.len(), 1);
        assert_eq!(def.attrs[0].name, "hectare");
        // the merged 500.0 atom holds the links of BOTH a1 (e1) and a3 (e2)
        let ae_inh = db
            .schema()
            .link_types_of(p)
            .iter()
            .copied()
            .find(|&lt| db.schema().link_type(lt).name.starts_with("area-edge"))
            .unwrap();
        let v500 = db
            .atoms_of(p)
            .find(|(_, t)| t[0] == Value::Float(500.0))
            .unwrap()
            .0;
        let dir = db.direction_from(ae_inh, p).unwrap();
        assert_eq!(db.partners(ae_inh, v500, dir).len(), 2);
    }

    #[test]
    fn projection_unknown_attr_errors() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        assert!(project(&mut db, area, &["ghost"], None).is_err());
    }

    #[test]
    fn product_concatenates_and_inherits_both_sides() {
        // §3.1: ×(area, edge) = border
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let border = product(&mut db, area, edge, Some("border")).unwrap();
        assert_eq!(db.atom_count(border), 2 * 2);
        let def = db.schema().atom_type(border);
        assert_eq!(def.arity(), 3, "aid, hectare, eid");
        // inherited link types: from area side (state-area, area-edge) and
        // from edge side (area-edge again, as border-area)
        let names: Vec<String> = db
            .schema()
            .link_types_of(border)
            .iter()
            .map(|&lt| db.schema().link_type(lt).name.clone())
            .collect();
        assert_eq!(names.len(), 3, "{names:?}");
        // σ[hectare>1000](border) — the full §3.1 pipeline
        let big = restrict(
            &mut db,
            border,
            &AtomPred::cmp(1, CmpOp::Gt, 1000.0),
            None,
        )
        .unwrap();
        assert_eq!(db.atom_count(big), 2, "a2 × both edges");
    }

    #[test]
    fn product_requires_disjoint_descriptions() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        assert!(matches!(
            product(&mut db, area, area, None),
            Err(MadError::IncompatibleOperands { op: "×", .. })
        ));
    }

    #[test]
    fn union_dedups_across_operands() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        let small = restrict(&mut db, area, &AtomPred::cmp(1, CmpOp::Le, 1000.0), None).unwrap();
        let big = restrict(&mut db, area, &AtomPred::cmp(1, CmpOp::Gt, 1000.0), None).unwrap();
        let all = union(&mut db, small, big, Some("all_areas")).unwrap();
        assert_eq!(db.atom_count(all), 2);
        // union with itself is idempotent (set semantics)
        let twice = union(&mut db, all, all, None).unwrap();
        assert_eq!(db.atom_count(twice), 2);
    }

    #[test]
    fn union_requires_same_description() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        let edge = db.schema().atom_type_id("edge").unwrap();
        assert!(union(&mut db, area, edge, None).is_err());
    }

    #[test]
    fn difference_and_intersection() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        let small = restrict(&mut db, area, &AtomPred::cmp(1, CmpOp::Le, 1000.0), None).unwrap();
        // area \ small = the big one
        // first make descriptions equal: σ keeps the description, so area
        // and small share it already
        let diff = difference(&mut db, area, small, None).unwrap();
        assert_eq!(db.atom_count(diff), 1);
        let t = db.atoms_of(diff).next().unwrap().1;
        assert_eq!(t[0], Value::Int(2));
        // intersection via double difference
        let inter = intersection(&mut db, area, small, None).unwrap();
        assert_eq!(db.atom_count(inter), 1);
        let t = db.atoms_of(inter).next().unwrap().1;
        assert_eq!(t[0], Value::Int(1));
        // x \ x = ∅
        let empty = difference(&mut db, area, area, None).unwrap();
        assert_eq!(db.atom_count(empty), 0);
    }

    #[test]
    fn atom_pred_three_valued() {
        let p = AtomPred::cmp(0, CmpOp::Eq, 1);
        assert!(p.eval(&[Value::Int(1)]));
        assert!(!p.eval(&[Value::Int(2)]));
        assert!(!p.eval(&[Value::Null]), "unknown → false");
        let np = AtomPred::Not(Box::new(p));
        assert!(!np.eval(&[Value::Null]), "NOT unknown → false");
        assert!(np.eval(&[Value::Int(2)]));
        // and/or shortcuts through unknown
        let q = AtomPred::cmp(0, CmpOp::Eq, 1).or(AtomPred::cmp(1, CmpOp::Eq, 9));
        assert!(q.eval(&[Value::Int(1), Value::Null]));
        let q = AtomPred::cmp(0, CmpOp::Eq, 2).and(AtomPred::cmp(1, CmpOp::Eq, 9));
        assert!(!q.eval(&[Value::Int(1), Value::Null]));
    }

    #[test]
    fn derived_names_are_fresh_and_documented() {
        let mut db = db();
        let area = db.schema().atom_type_id("area").unwrap();
        let r1 = restrict(&mut db, area, &AtomPred::True, Some("copy")).unwrap();
        let r2 = restrict(&mut db, area, &AtomPred::True, Some("copy")).unwrap();
        assert_ne!(
            db.schema().atom_type(r1).name,
            db.schema().atom_type(r2).name
        );
        assert!(db.schema().atom_type(r1).derived_from.is_some());
    }

    #[test]
    fn reflexive_link_inheritance_covers_both_sides() {
        let schema = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let parts = db.schema().atom_type_id("parts").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        let p1 = db.insert_atom(parts, vec![Value::from(1)]).unwrap();
        let p2 = db.insert_atom(parts, vec![Value::from(2)]).unwrap();
        db.connect(comp, p1, p2).unwrap();
        let copy = restrict(&mut db, parts, &AtomPred::True, Some("parts2")).unwrap();
        // two inherited link types: copy-as-super and copy-as-sub
        let inherited = db.schema().link_types_of(copy).len();
        assert_eq!(inherited, 2);
        assert_eq!(db.atom_count(copy), 2);
    }
}
