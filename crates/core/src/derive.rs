//! Molecule derivation: the function `m_dom` of Def. 6.
//!
//! "For each atom of the root atom type one molecule is derived following
//! all links determined by the link types of the molecule structure to the
//! children, grandchildren atoms etc. till the leaves are reached" (§2).
//! Because a molecule structure is a DAG, the recursive `contained`
//! predicate can be evaluated exactly by processing nodes in topological
//! order: an atom is contained at node `n` iff **for every** incoming
//! structure edge there **exists** a contained parent linked to it (the
//! ∀/∃ nesting of Def. 6). The `total` predicate — maximality — holds by
//! construction, since every qualifying atom is taken.
//!
//! Four strategies implement the same function (they are checked equal by
//! property tests; benchmark B3 compares them):
//!
//! | strategy | evaluation | storage path |
//! |---|---|---|
//! | [`Strategy::PerRoot`] | one depth-first hierarchical join per root atom; simplest, cache-friendly for small molecules | hash-map [`mad_storage::LinkStore`] probes |
//! | [`Strategy::LevelAtATime`] | set-oriented hierarchical join over `(atom, root-set)` relations; adjacency of a **shared** subobject is scanned once in total | hash-map probes, one per distinct atom |
//! | [`Strategy::Bitset`] | second-generation engine: per-node atom sets are dense slot-indexed [`BitSet`]s, frontiers expand in batch, the ∀-intersection over incoming edges is a word-wise `AND` | frozen [`CsrSnapshot`] sequential scans |
//! | [`Strategy::Parallel`] | the bitset engine partitioned by **slot ranges**: the qualified root set is split into contiguous chunks and fanned over `std::thread::scope` workers (the "query parallelism" outlook of §5) | one shared `Arc<CsrSnapshot>` across all workers |
//!
//! `Parallel` is exactly `Bitset` per worker — same per-node pruning
//! bitsets (computed once, shared read-only), same assembly — so its
//! results are bit-identical and root-ordered. The legacy per-root
//! hash-map fan-out it replaced was *slower* than serial `Bitset`;
//! partitioned set-at-a-time evaluation over a frozen snapshot is the
//! classic fix (cf. the parallel transitive-closure line of work in
//! PAPERS.md). [`derive_bitset_pruned`] / [`derive_bitset_parallel`]
//! additionally accept per-node qualification bitsets for restriction
//! pushdown at every structure node (benchmark B4).

use crate::molecule::Molecule;
use crate::structure::MoleculeStructure;
use mad_model::{AtomId, BitSet, FxHashMap, MadError, Result};
use mad_storage::database::Direction;
use mad_storage::{CsrSnapshot, Database};

/// Derivation strategy (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// One traversal per root atom.
    #[default]
    PerRoot,
    /// Set-oriented hierarchical join, level by level.
    LevelAtATime,
    /// Frontier-bitset derivation partitioned into root slot ranges and
    /// fanned over `n` scoped threads sharing one `Arc<CsrSnapshot>`.
    Parallel(usize),
    /// Frontier-bitset evaluation over the CSR adjacency snapshot.
    Bitset,
}

impl Strategy {
    /// How many worker threads the strategy fans derivation over (1 for
    /// every serial strategy; `Parallel(0)` is normalized to 1).
    pub fn parallelism(&self) -> usize {
        match self {
            Strategy::Parallel(n) => (*n).max(1),
            _ => 1,
        }
    }

    /// The worker count [`derive_molecules`] will actually use for this
    /// strategy: the requested parallelism capped at the hardware's
    /// available parallelism. Oversubscribing physical cores buys only
    /// spawn overhead — on a single-core host `Parallel(n)` degrades to
    /// the serial bitset loop, which *is* as fast as that hardware allows.
    pub fn effective_parallelism(&self) -> usize {
        static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let hw =
            *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from));
        self.parallelism().min(hw)
    }
}

/// Options for [`derive_molecules`].
#[derive(Clone, Debug, Default)]
pub struct DeriveOptions {
    /// How to evaluate.
    pub strategy: Strategy,
    /// Restrict derivation to these roots (restriction pushdown, benchmark
    /// B4); `None` derives one molecule per atom of the root type.
    pub roots: Option<Vec<AtomId>>,
}

impl DeriveOptions {
    /// Default options with a given strategy.
    pub fn with_strategy(strategy: Strategy) -> Self {
        DeriveOptions {
            strategy,
            ..Default::default()
        }
    }
}

fn intersect_sorted(a: &[AtomId], b: &[AtomId]) -> Vec<AtomId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Derive the single molecule rooted at `root` (must be an atom of the
/// structure's root atom type).
pub fn derive_one(db: &Database, md: &MoleculeStructure, root: AtomId) -> Result<Molecule> {
    if root.ty != md.root_node().ty {
        return Err(MadError::structure(format!(
            "root atom {root} is not of the root atom type of the structure"
        )));
    }
    let n = md.node_count();
    let mut atoms: Vec<Vec<AtomId>> = vec![Vec::new(); n];
    atoms[md.root()] = vec![root];
    for &node in &md.topo_order()[1..] {
        let mut candidate: Option<Vec<AtomId>> = None;
        for &ei in md.incoming(node) {
            let e = &md.edges()[ei];
            let mut reached: Vec<AtomId> = Vec::new();
            for &p in &atoms[e.from] {
                db.for_each_partner(e.link, p, e.dir, |c| reached.push(c));
            }
            reached.sort_unstable();
            reached.dedup();
            candidate = Some(match candidate {
                None => reached,
                Some(prev) => intersect_sorted(&prev, &reached),
            });
            if candidate.as_ref().is_some_and(Vec::is_empty) {
                break; // no atom can satisfy the remaining edges either
            }
        }
        atoms[node] = candidate.unwrap_or_default();
    }
    let links = collect_links(db, md, &atoms);
    Ok(Molecule { root, atoms, links })
}

fn collect_links(
    db: &Database,
    md: &MoleculeStructure,
    atoms: &[Vec<AtomId>],
) -> Vec<Vec<(AtomId, AtomId)>> {
    let mut links: Vec<Vec<(AtomId, AtomId)>> = vec![Vec::new(); md.edge_count()];
    for (ei, e) in md.edges().iter().enumerate() {
        let targets = &atoms[e.to];
        for &p in &atoms[e.from] {
            db.for_each_partner(e.link, p, e.dir, |c| {
                if targets.binary_search(&c).is_ok() {
                    links[ei].push((p, c));
                }
            });
        }
        links[ei].sort_unstable();
        links[ei].dedup();
    }
    links
}

fn root_atoms(db: &Database, md: &MoleculeStructure, opts: &DeriveOptions) -> Result<Vec<AtomId>> {
    match &opts.roots {
        Some(roots) => {
            for &r in roots {
                if r.ty != md.root_node().ty {
                    return Err(MadError::structure(format!(
                        "selected root {r} is not of the root atom type"
                    )));
                }
                if !db.atom_exists(r) {
                    return Err(MadError::integrity(format!("root atom {r} does not exist")));
                }
            }
            Ok(roots.clone())
        }
        None => Ok(db.atom_ids_of(md.root_node().ty)),
    }
}

/// Derive the molecule set of `md` (one molecule per root atom), using the
/// requested strategy. Molecules are returned in root order.
pub fn derive_molecules(
    db: &Database,
    md: &MoleculeStructure,
    opts: &DeriveOptions,
) -> Result<Vec<Molecule>> {
    let roots = root_atoms(db, md, opts)?;
    match opts.strategy {
        Strategy::PerRoot => roots.iter().map(|&r| derive_one(db, md, r)).collect(),
        Strategy::LevelAtATime => Ok(derive_level_at_a_time(db, md, &roots)),
        Strategy::Parallel(_) => derive_bitset_parallel(
            db,
            md,
            &roots,
            &[],
            opts.strategy.effective_parallelism(),
        ),
        Strategy::Bitset => derive_bitset_pruned(db, md, &roots, &[]),
    }
}

fn validate_roots(db: &Database, md: &MoleculeStructure, roots: &[AtomId]) -> Result<()> {
    for &r in roots {
        if r.ty != md.root_node().ty {
            return Err(MadError::structure(format!(
                "selected root {r} is not of the root atom type"
            )));
        }
        if !db.atom_exists(r) {
            return Err(MadError::integrity(format!("root atom {r} does not exist")));
        }
    }
    Ok(())
}

/// The per-root frontier-bitset loop shared by the serial and the parallel
/// engine: derive the molecules of `roots` (already validated) against one
/// frozen snapshot, appending survivors of the per-node `prune` test to
/// `out`. Scratch bitsets live across roots, so the reset cost is bounded
/// by each molecule's dirty window, not the slot horizon.
fn derive_bitset_roots(
    csr: &CsrSnapshot,
    md: &MoleculeStructure,
    roots: &[AtomId],
    prune: &[Option<BitSet>],
    out: &mut Vec<Molecule>,
) {
    let root_node = md.root();
    // one reusable bitset per structure node, sized to the node type's slot
    // horizon, plus one scratch set for per-edge expansion
    let mut node_sets: Vec<BitSet> = md
        .nodes()
        .iter()
        .map(|nd| BitSet::with_capacity(csr.slot_count(nd.ty)))
        .collect();
    let mut reached = BitSet::default();
    'roots: for &root in roots {
        for s in &mut node_sets {
            s.clear();
        }
        if let Some(Some(q)) = prune.get(root_node) {
            if !q.contains(root.slot as usize) {
                continue;
            }
        }
        node_sets[root_node].insert(root.slot as usize);
        for &node in &md.topo_order()[1..] {
            let mut first = true;
            for &ei in md.incoming(node) {
                let e = &md.edges()[ei];
                reached.clear();
                csr.expand_frontier(e.link, e.dir, &node_sets[e.from], &mut reached);
                if first {
                    // node_sets[node] is empty: take the expansion wholesale
                    std::mem::swap(&mut node_sets[node], &mut reached);
                    first = false;
                } else {
                    // ∀ incoming edges (Def. 6): word-wise intersection
                    node_sets[node].intersect_with(&reached);
                }
                if node_sets[node].is_empty() {
                    break; // no atom can satisfy the remaining edges either
                }
            }
            if let Some(Some(q)) = prune.get(node) {
                if !node_sets[node].intersects(q) {
                    continue 'roots; // no witness: the molecule cannot qualify
                }
            }
        }
        out.push(assemble_bitset_molecule(csr, md, root, &node_sets));
    }
}

/// Frontier-bitset derivation over the CSR snapshot, with optional
/// per-node qualification pushdown.
///
/// `prune[node]`, when present, is the bitset of slots satisfying the
/// simple predicates the planner extracted for that structure node. A
/// molecule whose derived atom set at such a node contains **no** matching
/// atom is omitted from the result — it could never satisfy the
/// qualification's top-level conjunct, so deriving or filtering it further
/// is wasted work. Atom sets of *surviving* molecules are **not** filtered
/// (Def. 6 molecules are maximal w.r.t. the structure alone); callers
/// evaluating a qualification still apply the full formula afterwards.
///
/// With an empty `prune` slice this computes exactly `m_dom` of Def. 6 and
/// agrees with every other strategy (checked by the equivalence property
/// test). Roots are validated like every other derivation entry point:
/// wrong-typed or nonexistent roots are an error, not a fabricated
/// molecule.
pub fn derive_bitset_pruned(
    db: &Database,
    md: &MoleculeStructure,
    roots: &[AtomId],
    prune: &[Option<BitSet>],
) -> Result<Vec<Molecule>> {
    validate_roots(db, md, roots)?;
    let csr = db.csr_snapshot();
    let mut out = Vec::with_capacity(roots.len());
    derive_bitset_roots(&csr, md, roots, prune, &mut out);
    Ok(out)
}

/// [`derive_bitset_pruned`] partitioned over `threads` scoped workers.
///
/// The qualified root set is split into contiguous **slot ranges** (roots
/// arrive in ascending slot order, so chunking the list partitions the
/// slot space); each range derives independently against one shared
/// `Arc<CsrSnapshot>` — the snapshot is frozen, the per-node `prune`
/// bitsets are computed once by the caller and read concurrently, and
/// every worker owns its scratch bitsets. Results keep root order, so the
/// output is bit-identical to the serial engine (the Def. 6 molecule set
/// is per-root — disjoint root ranges share no state beyond the frozen
/// adjacency).
///
/// `threads` is honored **exactly** (capped only by the root count) — the
/// strategy-level entry points cap it at
/// [`Strategy::effective_parallelism`] first, so query execution never
/// oversubscribes the hardware while tests can still drive a genuine
/// multi-worker fan-out on any machine. Degenerate inputs fall back to
/// the serial loop: 0 or 1 threads, and empty root sets.
pub fn derive_bitset_parallel(
    db: &Database,
    md: &MoleculeStructure,
    roots: &[AtomId],
    prune: &[Option<BitSet>],
    threads: usize,
) -> Result<Vec<Molecule>> {
    validate_roots(db, md, roots)?;
    let csr = db.csr_snapshot();
    let threads = threads.max(1).min(roots.len());
    if threads <= 1 {
        let mut out = Vec::with_capacity(roots.len());
        derive_bitset_roots(&csr, md, roots, prune, &mut out);
        return Ok(out);
    }
    let chunk = roots.len().div_ceil(threads);
    let csr = &*csr; // one frozen image shared by every worker
    let results: Vec<Vec<Molecule>> = std::thread::scope(|scope| {
        let handles: Vec<_> = roots
            .chunks(chunk)
            .map(|range| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(range.len());
                    derive_bitset_roots(csr, md, range, prune, &mut out);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel derivation worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(roots.len());
    for r in results {
        out.extend(r);
    }
    Ok(out)
}

fn assemble_bitset_molecule(
    csr: &mad_storage::CsrSnapshot,
    md: &MoleculeStructure,
    root: AtomId,
    node_sets: &[BitSet],
) -> Molecule {
    let atoms: Vec<Vec<AtomId>> = md
        .nodes()
        .iter()
        .enumerate()
        .map(|(ni, nd)| {
            // ascending slot order == sorted AtomId order within one type
            node_sets[ni]
                .iter()
                .map(|slot| AtomId::new(nd.ty, slot as u32))
                .collect()
        })
        .collect();
    let links: Vec<Vec<(AtomId, AtomId)>> = md
        .edges()
        .iter()
        .map(|e| {
            let from_ty = md.nodes()[e.from].ty;
            let to_ty = md.nodes()[e.to].ty;
            let targets = &node_sets[e.to];
            let mut pairs = Vec::new();
            for p in &node_sets[e.from] {
                csr.for_each_partner(e.link, p as u32, e.dir, |c| {
                    if targets.contains(c as usize) {
                        pairs.push((AtomId::new(from_ty, p as u32), AtomId::new(to_ty, c)));
                    }
                });
            }
            // ascending (p, c) generation keeps pairs sorted and unique
            pairs
        })
        .collect();
    Molecule { root, atoms, links }
}

/// Set-oriented hierarchical join. For every structure node we compute the
/// relation `R[node] : atom → sorted set of root indexes`, level by level;
/// the adjacency of each distinct atom is scanned once per edge regardless
/// of how many molecules share it.
fn derive_level_at_a_time(
    db: &Database,
    md: &MoleculeStructure,
    roots: &[AtomId],
) -> Vec<Molecule> {
    let n = md.node_count();
    // R[node]: atom -> sorted vec of root indexes containing it at `node`
    let mut rel: Vec<FxHashMap<AtomId, Vec<u32>>> = vec![FxHashMap::default(); n];
    rel[md.root()] = roots
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, vec![i as u32]))
        .collect();
    for &node in &md.topo_order()[1..] {
        let mut acc: Option<FxHashMap<AtomId, Vec<u32>>> = None;
        for &ei in md.incoming(node) {
            let e = &md.edges()[ei];
            // one adjacency scan per distinct parent atom
            let mut reached: FxHashMap<AtomId, Vec<u32>> = FxHashMap::default();
            for (&p, proots) in &rel[e.from] {
                db.for_each_partner(e.link, p, e.dir, |c| {
                    let entry = reached.entry(c).or_default();
                    entry.extend_from_slice(proots);
                });
            }
            for v in reached.values_mut() {
                v.sort_unstable();
                v.dedup();
            }
            acc = Some(match acc {
                None => reached,
                Some(prev) => {
                    // ∀ incoming edges: intersect root sets per atom
                    let mut merged = FxHashMap::default();
                    for (c, rts) in reached {
                        if let Some(prts) = prev.get(&c) {
                            let inter: Vec<u32> = {
                                let mut out = Vec::new();
                                let (mut i, mut j) = (0, 0);
                                while i < prts.len() && j < rts.len() {
                                    match prts[i].cmp(&rts[j]) {
                                        std::cmp::Ordering::Less => i += 1,
                                        std::cmp::Ordering::Greater => j += 1,
                                        std::cmp::Ordering::Equal => {
                                            out.push(prts[i]);
                                            i += 1;
                                            j += 1;
                                        }
                                    }
                                }
                                out
                            };
                            if !inter.is_empty() {
                                merged.insert(c, inter);
                            }
                        }
                    }
                    merged
                }
            });
        }
        rel[node] = acc.unwrap_or_default();
    }
    // assemble molecules
    let mut molecules: Vec<Molecule> = roots
        .iter()
        .map(|&r| Molecule::single(r, n, md.edge_count(), md.root()))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for node in 0..n {
        if node == md.root() {
            continue;
        }
        for (&atom, rts) in &rel[node] {
            for &ri in rts {
                molecules[ri as usize].atoms[node].push(atom);
            }
        }
    }
    for m in &mut molecules {
        for v in &mut m.atoms {
            v.sort_unstable();
        }
    }
    // links: scan each edge's parent relation once per distinct parent
    for (ei, e) in md.edges().iter().enumerate() {
        for (&p, proots) in &rel[e.from] {
            db.for_each_partner(e.link, p, e.dir, |c| {
                if let Some(crts) = rel[e.to].get(&c) {
                    // link belongs to molecules containing BOTH endpoints
                    let (mut i, mut j) = (0, 0);
                    while i < proots.len() && j < crts.len() {
                        match proots[i].cmp(&crts[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                molecules[proots[i] as usize].links[ei].push((p, c));
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                }
            });
        }
    }
    for m in &mut molecules {
        for v in &mut m.links {
            v.sort_unstable();
            v.dedup();
        }
    }
    molecules
}

/// The `mv_graph(m, md)` predicate of Def. 6 plus the `total` predicate:
/// verify that `m` is a *valid, maximal* molecule of `md` over `db`. Used
/// by property tests to check the closure theorems.
pub fn check_molecule(db: &Database, md: &MoleculeStructure, m: &Molecule) -> Result<()> {
    if m.atoms.len() != md.node_count() || m.links.len() != md.edge_count() {
        return Err(MadError::structure("molecule grouping does not match md"));
    }
    // every atom is of its node's type and exists
    for (node, atoms) in m.atoms.iter().enumerate() {
        for &a in atoms {
            if a.ty != md.nodes()[node].ty {
                return Err(MadError::structure(format!(
                    "atom {a} has wrong type for node `{}`",
                    md.nodes()[node].alias
                )));
            }
            if !db.atom_exists(a) {
                return Err(MadError::integrity(format!("atom {a} does not exist")));
            }
        }
    }
    // every link exists in the database with the edge's orientation
    for (ei, links) in m.links.iter().enumerate() {
        let e = &md.edges()[ei];
        for &(p, c) in links {
            let present = match e.dir {
                Direction::Fwd => db.linked(e.link, p, c),
                Direction::Bwd => db.linked(e.link, c, p),
                Direction::Sym => db.linked_sym(e.link, p, c),
            };
            if !present {
                return Err(MadError::integrity(format!(
                    "molecule link ({p}, {c}) is not in the database"
                )));
            }
        }
    }
    // totality/maximality: the molecule must equal its re-derivation
    let fresh = derive_one(db, md, m.root)?;
    if &fresh != m {
        return Err(MadError::structure(format!(
            "molecule rooted at {} is not total (maximal) w.r.t. md",
            m.root
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{path, StructureBuilder};
    use mad_model::{AttrType, SchemaBuilder, Value};

    /// A small Fig.-2-like database:
    ///   states SP, MG; rivers Parana
    ///   areas a1 (SP), a2 (MG); net n1 (Parana)
    ///   edges e1 (a1), e2 (a1 & a2 & n1  — shared!), e3 (a2)
    ///   points p1 (e1,e2), p2 (e2,e3)
    fn mini_geo() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("river", &[("rname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("net", &[("nid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .atom_type("point", &[("pname", AttrType::Text)])
            .link_type("state-area", "state", "area")
            .link_type("river-net", "river", "net")
            .link_type("area-edge", "area", "edge")
            .link_type("net-edge", "net", "edge")
            .link_type("edge-point", "edge", "point")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let ty = |n: &str| db.schema().atom_type_id(n).unwrap();
        let lt = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let (state, river, area, net, edge, point) = (
            ty("state"),
            ty("river"),
            ty("area"),
            ty("net"),
            ty("edge"),
            ty("point"),
        );
        let sp = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let mg = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let parana = db.insert_atom(river, vec![Value::from("Parana")]).unwrap();
        let a1 = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        let a2 = db.insert_atom(area, vec![Value::from(2)]).unwrap();
        let n1 = db.insert_atom(net, vec![Value::from(1)]).unwrap();
        let e1 = db.insert_atom(edge, vec![Value::from(1)]).unwrap();
        let e2 = db.insert_atom(edge, vec![Value::from(2)]).unwrap();
        let e3 = db.insert_atom(edge, vec![Value::from(3)]).unwrap();
        let p1 = db.insert_atom(point, vec![Value::from("p1")]).unwrap();
        let p2 = db.insert_atom(point, vec![Value::from("p2")]).unwrap();
        let sa = lt(&db, "state-area");
        let rn = lt(&db, "river-net");
        let ae = lt(&db, "area-edge");
        let ne = lt(&db, "net-edge");
        let ep = lt(&db, "edge-point");
        db.connect(sa, sp, a1).unwrap();
        db.connect(sa, mg, a2).unwrap();
        db.connect(rn, parana, n1).unwrap();
        db.connect(ae, a1, e1).unwrap();
        db.connect(ae, a1, e2).unwrap();
        db.connect(ae, a2, e2).unwrap();
        db.connect(ae, a2, e3).unwrap();
        db.connect(ne, n1, e2).unwrap();
        db.connect(ep, e1, p1).unwrap();
        db.connect(ep, e2, p1).unwrap();
        db.connect(ep, e2, p2).unwrap();
        db.connect(ep, e3, p2).unwrap();
        db
    }

    fn mt_state_structure(db: &Database) -> MoleculeStructure {
        path(db.schema(), &["state", "area", "edge", "point"]).unwrap()
    }

    #[test]
    fn derive_one_mt_state() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let state = db.schema().atom_type_id("state").unwrap();
        let sp = AtomId::new(state, 0);
        let m = derive_one(&db, &md, sp).unwrap();
        assert_eq!(m.root, sp);
        assert_eq!(m.atoms_at(0).len(), 1);
        assert_eq!(m.atoms_at(1).len(), 1, "area a1");
        assert_eq!(m.atoms_at(2).len(), 2, "edges e1, e2");
        assert_eq!(m.atoms_at(3).len(), 2, "points p1, p2");
    }

    #[test]
    fn link_counts_in_mt_state() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let state = db.schema().atom_type_id("state").unwrap();
        let sp = AtomId::new(state, 0);
        let m = derive_one(&db, &md, sp).unwrap();
        assert_eq!(m.links_at(0).len(), 1, "sp-a1");
        assert_eq!(m.links_at(1).len(), 2, "a1-e1, a1-e2");
        assert_eq!(m.links_at(2).len(), 3, "e1-p1, e2-p1, e2-p2");
    }

    #[test]
    fn molecules_share_subobjects() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let ms = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
        assert_eq!(ms.len(), 2, "one molecule per state");
        let edge = db.schema().atom_type_id("edge").unwrap();
        let e2 = AtomId::new(edge, 1);
        assert!(ms[0].contains_atom(e2) && ms[1].contains_atom(e2), "edge e2 is shared");
    }

    #[test]
    fn wrong_root_type_rejected() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let area = db.schema().atom_type_id("area").unwrap();
        assert!(derive_one(&db, &md, AtomId::new(area, 0)).is_err());
    }

    #[test]
    fn missing_selected_root_rejected() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let state = db.schema().atom_type_id("state").unwrap();
        let opts = DeriveOptions {
            roots: Some(vec![AtomId::new(state, 99)]),
            ..Default::default()
        };
        assert!(derive_molecules(&db, &md, &opts).is_err());
    }

    #[test]
    fn point_neighborhood_symmetric_navigation() {
        // Fig. 2 upper half from the same database, starting at points.
        let db = mini_geo();
        let md = StructureBuilder::new(db.schema())
            .node("point")
            .node("edge")
            .node("area")
            .node("state")
            .node("net")
            .node("river")
            .edge("point", "edge")
            .edge("edge", "area")
            .edge("area", "state")
            .edge("edge", "net")
            .edge("net", "river")
            .build()
            .unwrap();
        let point = db.schema().atom_type_id("point").unwrap();
        let p1 = AtomId::new(point, 0);
        let m = derive_one(&db, &md, p1).unwrap();
        // p1 touches e1, e2 → areas a1, a2 → states SP, MG; net n1 → Parana
        assert_eq!(m.atoms_at(1).len(), 2);
        assert_eq!(m.atoms_at(2).len(), 2);
        assert_eq!(m.atoms_at(3).len(), 2);
        assert_eq!(m.atoms_at(4).len(), 1);
        assert_eq!(m.atoms_at(5).len(), 1);
    }

    #[test]
    fn multi_incoming_edge_requires_all_parents() {
        // Diamond r→b→d, r→c→d: Def. 6's ∀/∃ nesting means a `d` atom is
        // contained only if it has a contained parent through BOTH
        // incoming edges.
        let schema = SchemaBuilder::new()
            .atom_type("r", &[("x", AttrType::Int)])
            .atom_type("b", &[("x", AttrType::Int)])
            .atom_type("c", &[("x", AttrType::Int)])
            .atom_type("d", &[("x", AttrType::Int)])
            .link_type("rb", "r", "b")
            .link_type("rc", "r", "c")
            .link_type("bd", "b", "d")
            .link_type("cd", "c", "d")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let ty = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let lt = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let (r, b, c, d) = (ty(&db, "r"), ty(&db, "b"), ty(&db, "c"), ty(&db, "d"));
        let r1 = db.insert_atom(r, vec![Value::from(1)]).unwrap();
        let b1 = db.insert_atom(b, vec![Value::from(1)]).unwrap();
        let c1 = db.insert_atom(c, vec![Value::from(1)]).unwrap();
        let d1 = db.insert_atom(d, vec![Value::from(1)]).unwrap();
        let d2 = db.insert_atom(d, vec![Value::from(2)]).unwrap();
        db.connect(lt(&db, "rb"), r1, b1).unwrap();
        db.connect(lt(&db, "rc"), r1, c1).unwrap();
        // d1 reached from BOTH b1 and c1; d2 only from b1
        db.connect(lt(&db, "bd"), b1, d1).unwrap();
        db.connect(lt(&db, "cd"), c1, d1).unwrap();
        db.connect(lt(&db, "bd"), b1, d2).unwrap();
        let md = StructureBuilder::new(db.schema())
            .node("r")
            .node("b")
            .node("c")
            .node("d")
            .edge("r", "b")
            .edge("r", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build()
            .unwrap();
        let m = derive_one(&db, &md, r1).unwrap();
        // Def. 6: d must have a contained parent through EVERY incoming
        // edge type: d1 qualifies (b1 and c1), d2 does not (only b1).
        assert_eq!(m.atoms_at(3), &[d1]);
        assert!(!m.contains_atom(d2));
        check_molecule(&db, &md, &m).unwrap();
    }

    #[test]
    fn strategies_agree() {
        let db = mini_geo();
        for md in [
            mt_state_structure(&db),
            path(db.schema(), &["point", "edge", "area", "state"]).unwrap(),
            path(db.schema(), &["river", "net", "edge", "point"]).unwrap(),
        ] {
            let a = derive_molecules(&db, &md, &DeriveOptions::with_strategy(Strategy::PerRoot))
                .unwrap();
            let b = derive_molecules(
                &db,
                &md,
                &DeriveOptions::with_strategy(Strategy::LevelAtATime),
            )
            .unwrap();
            let c = derive_molecules(
                &db,
                &md,
                &DeriveOptions::with_strategy(Strategy::Parallel(3)),
            )
            .unwrap();
            let d = derive_molecules(&db, &md, &DeriveOptions::with_strategy(Strategy::Bitset))
                .unwrap();
            assert_eq!(a, b, "LevelAtATime diverged");
            assert_eq!(a, c, "Parallel diverged");
            assert_eq!(a, d, "Bitset diverged");
        }
    }

    #[test]
    fn selected_roots_limit_derivation() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let state = db.schema().atom_type_id("state").unwrap();
        let mg = AtomId::new(state, 1);
        let opts = DeriveOptions {
            roots: Some(vec![mg]),
            ..Default::default()
        };
        let ms = derive_molecules(&db, &md, &opts).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].root, mg);
    }

    #[test]
    fn molecule_with_no_children_is_just_root() {
        let db = mini_geo();
        // a state with no area links
        let mut db = db;
        let state = db.schema().atom_type_id("state").unwrap();
        let lonely = db.insert_atom(state, vec![Value::from("AC")]).unwrap();
        let md = mt_state_structure(&db);
        let m = derive_one(&db, &md, lonely).unwrap();
        assert_eq!(m.atom_set(), vec![lonely]);
        assert!(m.link_set().is_empty());
        check_molecule(&db, &md, &m).unwrap();
    }

    #[test]
    fn check_molecule_rejects_tampering() {
        let db = mini_geo();
        let md = mt_state_structure(&db);
        let state = db.schema().atom_type_id("state").unwrap();
        let sp = AtomId::new(state, 0);
        let good = derive_one(&db, &md, sp).unwrap();
        check_molecule(&db, &md, &good).unwrap();
        // drop an atom: no longer total
        let mut bad = good.clone();
        bad.atoms[3].pop();
        assert!(check_molecule(&db, &md, &bad).is_err());
        // fabricate a link that is not in the database
        let mut bad = good.clone();
        let edge = db.schema().atom_type_id("edge").unwrap();
        let point = db.schema().atom_type_id("point").unwrap();
        bad.links[2].push((AtomId::new(edge, 2), AtomId::new(point, 0)));
        assert!(check_molecule(&db, &md, &bad).is_err());
        // wrong node type grouping
        let mut bad = good;
        bad.atoms[1] = vec![AtomId::new(point, 0)];
        assert!(check_molecule(&db, &md, &bad).is_err());
    }

    #[test]
    fn reflexive_directed_derivation() {
        let schema = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let parts = db.schema().atom_type_id("parts").unwrap();
        let comp = db.schema().link_type_id("composition").unwrap();
        let engine = db.insert_atom(parts, vec![Value::from(1)]).unwrap();
        let piston = db.insert_atom(parts, vec![Value::from(2)]).unwrap();
        let bolt = db.insert_atom(parts, vec![Value::from(3)]).unwrap();
        db.connect(comp, engine, piston).unwrap();
        db.connect(comp, piston, bolt).unwrap();
        // one-level sub-component view: super -> sub
        let md = StructureBuilder::new(db.schema())
            .node_as("super", "parts")
            .node_as("sub", "parts")
            .edge_directed("composition", "super", "sub", Direction::Fwd)
            .build()
            .unwrap();
        let m = derive_one(&db, &md, engine).unwrap();
        assert_eq!(m.atoms_at(1), &[piston]);
        // super-component view from piston
        let md_up = StructureBuilder::new(db.schema())
            .node_as("part", "parts")
            .node_as("used_in", "parts")
            .edge_directed("composition", "part", "used_in", Direction::Bwd)
            .build()
            .unwrap();
        let m = derive_one(&db, &md_up, piston).unwrap();
        assert_eq!(m.atoms_at(1), &[engine]);
    }

    #[test]
    fn empty_database_empty_set() {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let db = Database::new(schema);
        let md = path(db.schema(), &["state", "area"]).unwrap();
        for strat in [
            Strategy::PerRoot,
            Strategy::LevelAtATime,
            Strategy::Parallel(2),
            Strategy::Bitset,
        ] {
            let ms = derive_molecules(&db, &md, &DeriveOptions::with_strategy(strat)).unwrap();
            assert!(ms.is_empty());
        }
    }
}
