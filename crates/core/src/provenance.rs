//! Provenance of derived atoms, link types and atom types.
//!
//! The propagation function `prop` (Def. 9) materializes result sets as
//! **renamed** atom types with restricted occurrences: the new atoms are
//! pure copies of base atoms. Def. 9 then asserts "for each element within
//! rsv there is exactly one equivalent molecule within mv and vice versa" —
//! an equivalence that only makes sense if copies remember what they copy.
//! [`Provenance`] records exactly that:
//!
//! * a *copy* provenance per propagated atom ([`Provenance::canonical_atom`]
//!   resolves any number of propagations back to the base atom, so equality
//!   across propagations compares base identities);
//! * the analogous mapping for propagated atom types;
//! * for inherited link types, additionally the **canonical traversal
//!   direction**: a propagated link store is always oriented parent→child,
//!   while the base link type it renames may have been traversed `Bwd` or
//!   `Sym` — Ω/Δ compatibility checks need the base orientation back.
//!
//! Copies are stored *chain-compressed*: recording a copy of a copy stores
//! the base directly, so every lookup is a single map probe.
//!
//! Atoms produced by the *atom-type operations* of Def. 4 (π σ × ω δ) are
//! genuinely new values, not renamings; they get no copy provenance and are
//! their own canonical representatives.

use mad_model::{AtomId, AtomTypeId, FxHashMap, LinkTypeId};
use mad_storage::database::Direction;

/// Copy-provenance registry (see module docs).
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    atom_copy: FxHashMap<AtomId, AtomId>,
    type_copy: FxHashMap<AtomTypeId, AtomTypeId>,
    link_copy: FxHashMap<LinkTypeId, (LinkTypeId, Direction)>,
}

fn flip(dir: Direction) -> Direction {
    match dir {
        Direction::Fwd => Direction::Bwd,
        Direction::Bwd => Direction::Fwd,
        Direction::Sym => Direction::Sym,
    }
}

impl Provenance {
    /// An empty registry.
    pub fn new() -> Self {
        Provenance::default()
    }

    /// Record that `copy` is a propagated copy of `of` (chain-compressed).
    pub fn record_atom_copy(&mut self, copy: AtomId, of: AtomId) {
        debug_assert_ne!(copy, of);
        let base = self.canonical_atom(of);
        self.atom_copy.insert(copy, base);
    }

    /// Record that atom type `copy` is a propagated renaming of `of`.
    pub fn record_type_copy(&mut self, copy: AtomTypeId, of: AtomTypeId) {
        debug_assert_ne!(copy, of);
        let base = self.canonical_type(of);
        self.type_copy.insert(copy, base);
    }

    /// Record that link type `copy` renames `of`, and that traversing
    /// `copy` forward (parent→child) corresponds to traversing the *base*
    /// link type in direction `dir_of_base`.
    pub fn record_link_copy(&mut self, copy: LinkTypeId, of: LinkTypeId, dir_of_base: Direction) {
        debug_assert_ne!(copy, of);
        let (base, dir) = self.canonical_link(of, dir_of_base);
        self.link_copy.insert(copy, (base, dir));
    }

    /// The base atom behind `a` (identity for base atoms and for results of
    /// atom-type operations).
    pub fn canonical_atom(&self, a: AtomId) -> AtomId {
        self.atom_copy.get(&a).copied().unwrap_or(a)
    }

    /// The base atom type behind `t`.
    pub fn canonical_type(&self, t: AtomTypeId) -> AtomTypeId {
        self.type_copy.get(&t).copied().unwrap_or(t)
    }

    /// The base link type behind `l`, together with the base-level traversal
    /// direction corresponding to traversing `l` in direction `dir`.
    pub fn canonical_link(&self, l: LinkTypeId, dir: Direction) -> (LinkTypeId, Direction) {
        match self.link_copy.get(&l) {
            Some(&(base, base_dir)) => {
                // traversing the copy Fwd corresponds to base_dir; Bwd flips
                let d = match dir {
                    Direction::Fwd => base_dir,
                    Direction::Bwd => flip(base_dir),
                    Direction::Sym => Direction::Sym,
                };
                (base, d)
            }
            None => (l, dir),
        }
    }

    /// Is `a` a propagated copy (as opposed to a base/op-derived atom)?
    pub fn is_copy(&self, a: AtomId) -> bool {
        self.atom_copy.contains_key(&a)
    }

    /// Number of recorded atom copies (diagnostics).
    pub fn atom_copies(&self) -> usize {
        self.atom_copy.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(ty: u32, slot: u32) -> AtomId {
        AtomId::new(AtomTypeId(ty), slot)
    }

    #[test]
    fn canonical_chains_are_compressed() {
        let mut p = Provenance::new();
        let base = aid(0, 1);
        let c1 = aid(5, 0);
        let c2 = aid(9, 3);
        p.record_atom_copy(c1, base);
        p.record_atom_copy(c2, c1);
        assert_eq!(p.canonical_atom(c2), base);
        assert_eq!(p.canonical_atom(c1), base);
        assert_eq!(p.canonical_atom(base), base);
        assert!(p.is_copy(c1));
        assert!(!p.is_copy(base));
        assert_eq!(p.atom_copies(), 2);
    }

    #[test]
    fn type_chains() {
        let mut p = Provenance::new();
        p.record_type_copy(AtomTypeId(7), AtomTypeId(2));
        p.record_type_copy(AtomTypeId(9), AtomTypeId(7));
        assert_eq!(p.canonical_type(AtomTypeId(9)), AtomTypeId(2));
        assert_eq!(p.canonical_type(AtomTypeId(3)), AtomTypeId(3));
    }

    #[test]
    fn link_direction_composition() {
        let mut p = Provenance::new();
        // copy lt4 renames base lt1; traversing lt4 Fwd == traversing lt1 Bwd
        p.record_link_copy(LinkTypeId(4), LinkTypeId(1), Direction::Bwd);
        assert_eq!(
            p.canonical_link(LinkTypeId(4), Direction::Fwd),
            (LinkTypeId(1), Direction::Bwd)
        );
        assert_eq!(
            p.canonical_link(LinkTypeId(4), Direction::Bwd),
            (LinkTypeId(1), Direction::Fwd)
        );
        assert_eq!(
            p.canonical_link(LinkTypeId(4), Direction::Sym),
            (LinkTypeId(1), Direction::Sym)
        );
        // a second-level copy composes through the first
        p.record_link_copy(LinkTypeId(8), LinkTypeId(4), Direction::Fwd);
        assert_eq!(
            p.canonical_link(LinkTypeId(8), Direction::Fwd),
            (LinkTypeId(1), Direction::Bwd)
        );
        // untouched link types are their own canonical form
        assert_eq!(
            p.canonical_link(LinkTypeId(0), Direction::Fwd),
            (LinkTypeId(0), Direction::Fwd)
        );
    }
}
