#![forbid(unsafe_code)]

//! # mad-core — the molecule algebra
//!
//! The primary contribution of Mitschang, *Extending the Relational Algebra
//! to Capture Complex Objects* (VLDB 1989): a closed algebra over
//! dynamically defined, possibly overlapping complex objects ("molecules")
//! built from atoms connected by symmetric links.
//!
//! | Paper | Here |
//! |---|---|
//! | Def. 4 atom-type ops π σ × ω δ (+ link inheritance) | [`atom_ops`] |
//! | Def. 5 molecule-type description, `md_graph` | [`structure`] |
//! | Def. 6 `m_dom`, `contained`, `total` | [`derive`](mod@derive) |
//! | Def. 7/8 molecule type, operator α | [`molecule`], [`ops`] |
//! | Def. 9 propagation `prop` | `Engine`'s propagation step (via [`provenance`]) |
//! | Def. 10 Σ (and the omitted Π X Ω Δ, Ψ) | [`ops`] |
//! | §3.2 qualification formulas `restr(md)` | [`qual`] |
//! | §5 recursive molecule types \[Schö89\] | [`recursive`] |
//! | §5 query optimization outlook | [`explain`](mod@explain) |
//! | Fig. 5 staged operator pipeline | [`trace`] |
//!
//! The closure theorems (1–3) are not just claimed: [`derive::check_molecule`]
//! re-validates `mv_graph`/`total` for every molecule of every operator
//! result, and the property-test suite exercises it.

pub mod atom_ops;
pub mod derive;
pub mod explain;
pub mod molecule;
pub mod ops;
pub mod provenance;
pub mod qual;
pub mod recursive;
pub mod structure;
pub mod trace;

/// The most common imports, bundled.
pub mod prelude {
    pub use crate::atom_ops;
    pub use crate::derive::{
        check_molecule, derive_bitset_parallel, derive_bitset_pruned, derive_molecules,
        derive_one, DeriveOptions,
        Strategy,
    };
    pub use crate::explain::{explain, Plan};
    pub use crate::molecule::{Molecule, MoleculeType};
    pub use crate::ops::{plan_pushdown, AccessPath, Engine, PushdownPlan};
    pub use crate::qual::{AggFn, CmpOp, Operand, QualExpr};
    pub use crate::recursive::{derive_recursive, RecursiveMolecule, RecursiveSpec};
    pub use crate::structure::{path, MoleculeStructure, MsEdge, MsNode, StructureBuilder};
    pub use mad_storage::database::Direction;
}

pub use prelude::*;
