//! Operator execution traces — the machine-readable counterpart of Fig. 5.
//!
//! Fig. 5 presents every molecule-type operation as a staged pipeline:
//! *operation-specific actions* → *propagation of the result set* (Def. 9)
//! → *molecule-type definition α* (Def. 8). When tracing is enabled on an
//! [`crate::ops::Engine`], each operator records exactly these stages, and
//! the figure-regeneration harness prints them.

use std::fmt;

/// One stage of a molecule-type operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stage {
    /// The operation-specific part (e.g. "Σ: filter 12 → 4 molecules").
    OpSpecific(String),
    /// Propagation: which atom/link types were created in DB′.
    Propagation {
        /// Names of the propagated (renamed) atom types.
        atom_types: Vec<String>,
        /// Names of the inherited link types.
        link_types: Vec<String>,
        /// Number of atoms copied.
        atoms_copied: usize,
        /// Number of links copied.
        links_copied: usize,
    },
    /// The closing molecule-type definition α over DB′.
    Alpha {
        /// Result molecule-type name.
        name: String,
        /// Number of molecules in the result occurrence.
        molecules: usize,
    },
    /// How a derivation evaluated: the strategy chosen and whether the
    /// CSR adjacency snapshot was reused or re-frozen for it (the
    /// observability layer renders this in `EXPLAIN ANALYZE`).
    Derivation {
        /// The [`crate::Strategy`] the derivation ran under.
        strategy: String,
        /// CSR link-type pairs re-frozen for this derivation (0 = full
        /// snapshot reuse).
        csr_rebuilt: usize,
        /// Total CSR link-type pairs in the snapshot.
        csr_pairs: usize,
        /// Root slots visited (pre-selected roots under pushdown, the
        /// whole root type otherwise).
        roots: usize,
    },
}

/// The trace of one operator application.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpTrace {
    /// Operator symbol (Σ, Π, X, Ω, Δ, Ψ, α).
    pub op: String,
    /// Recorded stages, in execution order.
    pub stages: Vec<Stage>,
}

impl OpTrace {
    /// Start a trace for operator `op`.
    pub fn new(op: impl Into<String>) -> Self {
        OpTrace {
            op: op.into(),
            stages: Vec::new(),
        }
    }

    /// Record a stage.
    pub fn push(&mut self, stage: Stage) {
        self.stages.push(stage);
    }
}

impl fmt::Display for OpTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "operation {}", self.op)?;
        for (i, s) in self.stages.iter().enumerate() {
            match s {
                Stage::OpSpecific(d) => writeln!(f, "  {}. op-specific: {d}", i + 1)?,
                Stage::Propagation {
                    atom_types,
                    link_types,
                    atoms_copied,
                    links_copied,
                } => writeln!(
                    f,
                    "  {}. prop → DB': atom types [{}], link types [{}], {} atoms, {} links",
                    i + 1,
                    atom_types.join(", "),
                    link_types.join(", "),
                    atoms_copied,
                    links_copied
                )?,
                Stage::Alpha { name, molecules } => writeln!(
                    f,
                    "  {}. α[{name}] over DB' → {molecules} molecule(s)",
                    i + 1
                )?,
                Stage::Derivation {
                    strategy,
                    csr_rebuilt,
                    csr_pairs,
                    roots,
                } => writeln!(
                    f,
                    "  {}. derivation: strategy {strategy}, CSR {} ({csr_rebuilt}/{csr_pairs} \
                     pairs re-frozen), {roots} root slot(s)",
                    i + 1,
                    if *csr_rebuilt == 0 { "reused" } else { "re-frozen" },
                )?,
            }
        }
        Ok(())
    }
}

/// A sink collecting operator traces.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// All recorded traces, oldest first.
    pub ops: Vec<OpTrace>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// The most recent trace, if any.
    pub fn last(&self) -> Option<&OpTrace> {
        self.ops.last()
    }

    /// Render the whole log.
    pub fn render(&self) -> String {
        self.ops.iter().map(|t| t.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_stages_in_order() {
        let mut t = OpTrace::new("Σ");
        t.push(Stage::OpSpecific("filter 12 → 4 molecules".into()));
        t.push(Stage::Propagation {
            atom_types: vec!["state'".into(), "area'".into()],
            link_types: vec!["state-area'".into()],
            atoms_copied: 8,
            links_copied: 6,
        });
        t.push(Stage::Alpha {
            name: "big_states".into(),
            molecules: 4,
        });
        let s = t.to_string();
        let op_pos = s.find("op-specific").unwrap();
        let prop_pos = s.find("prop →").unwrap();
        let alpha_pos = s.find("α[big_states]").unwrap();
        assert!(op_pos < prop_pos && prop_pos < alpha_pos);
        assert!(s.contains("4 molecule(s)"));
    }

    #[test]
    fn log_collects() {
        let mut log = TraceLog::new();
        assert!(log.last().is_none());
        log.ops.push(OpTrace::new("Σ"));
        log.ops.push(OpTrace::new("Π"));
        assert_eq!(log.last().unwrap().op, "Π");
        assert!(log.render().contains("operation Σ"));
    }
}
