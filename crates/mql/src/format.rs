//! Rendering of MQL statement results for terminal output.

use crate::exec::StatementResult;
use mad_model::bin::{len_u32, usize_of_u32, BinAtom, BinMolecules, BinNode, BinResult};
use mad_model::json::Json;
use mad_obs::MetricValue;
use mad_storage::Database;
use std::fmt::Write as _;

/// Render a statement result as human-readable text (molecule sets come
/// out as indented trees, Fig.-2 style).
pub fn render_result(db: &Database, result: &StatementResult) -> String {
    match result {
        StatementResult::Molecules(mt) => {
            let mut out = format!(
                "molecule type `{}`: {} molecule(s)\n",
                mt.name,
                mt.len()
            );
            out.push_str(&format!(
                "structure: {}\n",
                mt.structure.render_compact(db.schema())
            ));
            for m in &mt.molecules {
                out.push_str(&m.render_tree(db, &mt.structure));
            }
            let shared = mt.shared_atoms();
            if !shared.is_empty() {
                out.push_str(&format!(
                    "shared subobjects: {} atom(s) appear in ≥ 2 molecules\n",
                    shared.len()
                ));
            }
            out
        }
        StatementResult::Recursive(ms) => {
            let mut out = format!("{} recursive molecule(s)\n", ms.len());
            for m in ms {
                out.push_str(&m.render_tree(db));
            }
            out
        }
        StatementResult::Plan(plan) => plan.to_string(),
        StatementResult::Defined(name) => format!("defined molecule type `{name}`\n"),
        StatementResult::Inserted(id) => format!("inserted atom {id}\n"),
        StatementResult::Connected(true) => "connected\n".to_owned(),
        StatementResult::Connected(false) => "already connected\n".to_owned(),
        StatementResult::Disconnected(true) => "disconnected\n".to_owned(),
        StatementResult::Disconnected(false) => "no such link\n".to_owned(),
        StatementResult::Deleted { atoms, links } => {
            format!("deleted {atoms} atom(s), cascaded {links} link(s)\n")
        }
        StatementResult::Updated { atoms } => format!("updated {atoms} atom(s)\n"),
        StatementResult::Began => "transaction started\n".to_owned(),
        StatementResult::Committed { seq, ops, remap } if remap.is_empty() => {
            format!("committed {ops} operation(s) at sequence {seq}\n")
        }
        StatementResult::Committed { seq, ops, remap } => {
            format!(
                "committed {ops} operation(s) at sequence {seq}; {} inserted atom(s) remapped\n",
                remap.len()
            )
        }
        StatementResult::Aborted => "transaction aborted\n".to_owned(),
        StatementResult::Checkpointed(stats) => format!(
            "checkpointed: write-ahead log {} -> {} bytes (image at commit {})\n",
            stats.bytes_before, stats.bytes_after, stats.base_seq
        ),
        StatementResult::Stats(text) => text.clone(),
        StatementResult::Prepared(name) => format!("prepared statement `{name}`\n"),
        StatementResult::Deallocated {
            name: Some(name), ..
        } => format!("deallocated prepared statement `{name}`\n"),
        StatementResult::Deallocated { name: None, count } => {
            format!("deallocated {count} prepared statement(s)\n")
        }
        StatementResult::Analyzed { inner, trace } => {
            let mut out = render_result(db, inner);
            if !out.ends_with('\n') {
                out.push('\n');
            }
            out.push_str(&trace.render());
            out
        }
    }
}

/// Encode a statement result for the binary wire encoding: molecule sets
/// travel structurally (schema-described tuples, no text rendering),
/// every other result kind is forwarded as its rendered text.
pub fn bin_result(db: &Database, result: &StatementResult) -> BinResult {
    match result {
        StatementResult::Molecules(mt) => {
            let schema = db.schema();
            let nodes = mt
                .structure
                .nodes()
                .iter()
                .map(|n| {
                    let def = schema.atom_type(n.ty);
                    BinNode {
                        alias: n.alias.clone(),
                        atom_type: def.name.clone(),
                        attrs: def.attrs.clone(),
                    }
                })
                .collect();
            let molecules = mt
                .molecules
                .iter()
                .map(|m| {
                    let mut atoms = Vec::with_capacity(m.atom_occurrences());
                    for node in 0..mt.structure.node_count() {
                        for &id in m.atoms_at(node) {
                            atoms.push(BinAtom {
                                node: len_u32(node),
                                id,
                                // a dead atom (deleted since derivation)
                                // travels as an empty tuple, mirroring the
                                // text renderer's `<dead>` marker
                                tuple: db.atom(id).map(<[_]>::to_vec).unwrap_or_default(),
                            });
                        }
                    }
                    atoms
                })
                .collect();
            BinResult::Molecules(BinMolecules {
                name: mt.name.clone(),
                nodes,
                molecules,
            })
        }
        other => BinResult::Text(render_result(db, other)),
    }
}

/// Render a decoded binary result client-side. The encoding is
/// self-describing, so no schema round-trip is needed; molecule sets come
/// out as per-node atom listings (the structural link information is in
/// the server-side tree rendering only).
pub fn render_bin_result(result: &BinResult) -> String {
    match result {
        BinResult::Text(s) => s.clone(),
        BinResult::Molecules(bm) => {
            let mut out = format!(
                "molecule type `{}`: {} molecule(s) (binary)\n",
                bm.name,
                bm.molecules.len()
            );
            let _ = writeln!(
                out,
                "nodes: {}",
                bm.nodes
                    .iter()
                    .map(|n| n.alias.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            for m in &bm.molecules {
                out.push_str("molecule:\n");
                for a in m {
                    let alias = bm
                        .nodes
                        .get(usize_of_u32(a.node))
                        .map(|n| n.alias.as_str())
                        .unwrap_or("?");
                    let vals: Vec<String> = a.tuple.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(out, "  {alias} {} <{}>", a.id, vals.join(", "));
                }
            }
            out
        }
    }
}

/// Render a registry snapshot as an aligned name/value table (the
/// `SHOW STATS` default).
pub fn stats_table(snap: &[(String, MetricValue)]) -> String {
    if snap.is_empty() {
        return "no metrics recorded\n".to_owned();
    }
    let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in snap {
        let _ = match value {
            MetricValue::Counter(n) | MetricValue::Gauge(n) => {
                writeln!(out, "{name:<width$}  {n}")
            }
            MetricValue::Text(s) => writeln!(out, "{name:<width$}  {s}"),
            MetricValue::Hist(h) => writeln!(out, "{name:<width$}  {h}"),
        };
    }
    out
}

/// Render a registry snapshot as one JSON object (`SHOW STATS … AS JSON`):
/// counters and gauges become integers, text metrics strings, histograms
/// objects carrying count/sum/max and the estimated percentiles.
pub fn stats_json(snap: &[(String, MetricValue)]) -> String {
    let int = |v: u64| Json::Int(i64::try_from(v).unwrap_or(i64::MAX));
    let members = snap
        .iter()
        .map(|(name, value)| {
            let v = match value {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => int(*n),
                MetricValue::Text(s) => Json::Str(s.clone()),
                MetricValue::Hist(h) => Json::Obj(vec![
                    ("count".to_owned(), int(h.count)),
                    ("sum".to_owned(), int(h.sum)),
                    ("mean".to_owned(), int(h.mean())),
                    ("p50".to_owned(), int(h.p50())),
                    ("p90".to_owned(), int(h.p90())),
                    ("p99".to_owned(), int(h.p99())),
                    ("max".to_owned(), int(h.max)),
                ]),
            };
            (name.clone(), v)
        })
        .collect();
    let mut text = Json::Obj(members).render_pretty();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use mad_model::{AttrType, SchemaBuilder, Value};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sa, s1, a).unwrap();
        db.connect(sa, s2, a).unwrap();
        db
    }

    #[test]
    fn renders_molecule_trees_with_sharing_note() {
        let mut s = Session::new(db());
        let r = s.execute("SELECT ALL FROM state-area").unwrap();
        let text = render_result(s.db(), &r);
        assert!(text.contains("molecule type `result`"));
        assert!(text.contains("'SP'"));
        assert!(text.contains("'MG'"));
        assert!(text.contains("shared subobjects: 1"));
    }

    #[test]
    fn renders_dml_results() {
        let mut s = Session::new(db());
        let r = s.execute("INSERT ATOM state (sname = 'RJ')").unwrap();
        assert!(render_result(s.db(), &r).starts_with("inserted atom"));
        let r = s
            .execute("CONNECT state[sname='RJ'] TO area[aid=1] VIA state-area")
            .unwrap();
        assert_eq!(render_result(s.db(), &r), "connected\n");
        let r = s
            .execute("CONNECT state[sname='RJ'] TO area[aid=1] VIA state-area")
            .unwrap();
        assert_eq!(render_result(s.db(), &r), "already connected\n");
        let r = s.execute("DELETE ATOM state[sname='RJ']").unwrap();
        assert!(render_result(s.db(), &r).contains("deleted 1 atom(s)"));
    }
}
