//! Rendering of MQL statement results for terminal output.

use crate::exec::StatementResult;
use mad_storage::Database;

/// Render a statement result as human-readable text (molecule sets come
/// out as indented trees, Fig.-2 style).
pub fn render_result(db: &Database, result: &StatementResult) -> String {
    match result {
        StatementResult::Molecules(mt) => {
            let mut out = format!(
                "molecule type `{}`: {} molecule(s)\n",
                mt.name,
                mt.len()
            );
            out.push_str(&format!(
                "structure: {}\n",
                mt.structure.render_compact(db.schema())
            ));
            for m in &mt.molecules {
                out.push_str(&m.render_tree(db, &mt.structure));
            }
            let shared = mt.shared_atoms();
            if !shared.is_empty() {
                out.push_str(&format!(
                    "shared subobjects: {} atom(s) appear in ≥ 2 molecules\n",
                    shared.len()
                ));
            }
            out
        }
        StatementResult::Recursive(ms) => {
            let mut out = format!("{} recursive molecule(s)\n", ms.len());
            for m in ms {
                out.push_str(&m.render_tree(db));
            }
            out
        }
        StatementResult::Plan(plan) => plan.to_string(),
        StatementResult::Defined(name) => format!("defined molecule type `{name}`\n"),
        StatementResult::Inserted(id) => format!("inserted atom {id}\n"),
        StatementResult::Connected(true) => "connected\n".to_owned(),
        StatementResult::Connected(false) => "already connected\n".to_owned(),
        StatementResult::Disconnected(true) => "disconnected\n".to_owned(),
        StatementResult::Disconnected(false) => "no such link\n".to_owned(),
        StatementResult::Deleted { atoms, links } => {
            format!("deleted {atoms} atom(s), cascaded {links} link(s)\n")
        }
        StatementResult::Updated { atoms } => format!("updated {atoms} atom(s)\n"),
        StatementResult::Began => "transaction started\n".to_owned(),
        StatementResult::Committed { seq, ops, remap } if remap.is_empty() => {
            format!("committed {ops} operation(s) at sequence {seq}\n")
        }
        StatementResult::Committed { seq, ops, remap } => {
            format!(
                "committed {ops} operation(s) at sequence {seq}; {} inserted atom(s) remapped\n",
                remap.len()
            )
        }
        StatementResult::Aborted => "transaction aborted\n".to_owned(),
        StatementResult::Checkpointed(stats) => format!(
            "checkpointed: write-ahead log {} -> {} bytes (image at commit {})\n",
            stats.bytes_before, stats.bytes_after, stats.base_seq
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use mad_model::{AttrType, SchemaBuilder, Value};

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s1 = db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        let s2 = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sa, s1, a).unwrap();
        db.connect(sa, s2, a).unwrap();
        db
    }

    #[test]
    fn renders_molecule_trees_with_sharing_note() {
        let mut s = Session::new(db());
        let r = s.execute("SELECT ALL FROM state-area").unwrap();
        let text = render_result(s.db(), &r);
        assert!(text.contains("molecule type `result`"));
        assert!(text.contains("'SP'"));
        assert!(text.contains("'MG'"));
        assert!(text.contains("shared subobjects: 1"));
    }

    #[test]
    fn renders_dml_results() {
        let mut s = Session::new(db());
        let r = s.execute("INSERT ATOM state (sname = 'RJ')").unwrap();
        assert!(render_result(s.db(), &r).starts_with("inserted atom"));
        let r = s
            .execute("CONNECT state[sname='RJ'] TO area[aid=1] VIA state-area")
            .unwrap();
        assert_eq!(render_result(s.db(), &r), "connected\n");
        let r = s
            .execute("CONNECT state[sname='RJ'] TO area[aid=1] VIA state-area")
            .unwrap();
        assert_eq!(render_result(s.db(), &r), "already connected\n");
        let r = s.execute("DELETE ATOM state[sname='RJ']").unwrap();
        assert!(render_result(s.db(), &r).contains("deleted 1 atom(s)"));
    }
}
