//! The MQL lexer.
//!
//! Produces a token stream with byte offsets for error reporting. Keywords
//! are case-insensitive; identifiers are `[A-Za-z_][A-Za-z0-9_]*` (the `-`
//! in link-type names like `state-area` is tokenized as [`Tok::Dash`] and
//! re-joined by the parser inside `[…]` link labels). Strings use single
//! quotes with `''` as the escape for a quote.

use mad_model::{MadError, Result};

/// Keywords of MQL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Select,
    All,
    From,
    Where,
    And,
    Or,
    Not,
    Exists,
    Forall,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Define,
    Molecule,
    As,
    Insert,
    Atom,
    Connect,
    To,
    Via,
    Disconnect,
    Delete,
    Update,
    Set,
    Explain,
    Analyze,
    Show,
    Stats,
    Json,
    Recursive,
    Down,
    Up,
    Both,
    Depth,
    True,
    False,
    Null,
    Begin,
    Transaction,
    Commit,
    Abort,
    Rollback,
    Checkpoint,
    Prepare,
    Execute,
    Deallocate,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s.to_ascii_uppercase().as_str() {
        "SELECT" => Kw::Select,
        "ALL" => Kw::All,
        "FROM" => Kw::From,
        "WHERE" => Kw::Where,
        "AND" => Kw::And,
        "OR" => Kw::Or,
        "NOT" => Kw::Not,
        "EXISTS" => Kw::Exists,
        "FORALL" => Kw::Forall,
        "COUNT" => Kw::Count,
        "SUM" => Kw::Sum,
        "MIN" => Kw::Min,
        "MAX" => Kw::Max,
        "AVG" => Kw::Avg,
        "DEFINE" => Kw::Define,
        "MOLECULE" => Kw::Molecule,
        "AS" => Kw::As,
        "INSERT" => Kw::Insert,
        "ATOM" => Kw::Atom,
        "CONNECT" => Kw::Connect,
        "TO" => Kw::To,
        "VIA" => Kw::Via,
        "DISCONNECT" => Kw::Disconnect,
        "DELETE" => Kw::Delete,
        "UPDATE" => Kw::Update,
        "SET" => Kw::Set,
        "EXPLAIN" => Kw::Explain,
        "ANALYZE" => Kw::Analyze,
        "SHOW" => Kw::Show,
        "STATS" => Kw::Stats,
        "JSON" => Kw::Json,
        "RECURSIVE" => Kw::Recursive,
        "DOWN" => Kw::Down,
        "UP" => Kw::Up,
        "BOTH" => Kw::Both,
        "DEPTH" => Kw::Depth,
        "TRUE" => Kw::True,
        "FALSE" => Kw::False,
        "NULL" => Kw::Null,
        "BEGIN" => Kw::Begin,
        "TRANSACTION" => Kw::Transaction,
        "COMMIT" => Kw::Commit,
        "ABORT" => Kw::Abort,
        "ROLLBACK" => Kw::Rollback,
        "CHECKPOINT" => Kw::Checkpoint,
        "PREPARE" => Kw::Prepare,
        "EXECUTE" => Kw::Execute,
        "DEALLOCATE" => Kw::Deallocate,
        _ => return None,
    })
}

/// A token kind.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Kw(Kw),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Colon,
    Dash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Tilde,
    Star,
    /// A prepared-statement parameter placeholder `$1`, `$2`, … (1-based).
    Param(u32),
}

/// A token with its source offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Byte offset in the input.
    pub offset: usize,
}

/// Tokenize `input`.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let offset = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                continue;
            }
            '-' => {
                // comment `--` to end of line
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                out.push(Token {
                    tok: Tok::Dash,
                    offset,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    offset,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    offset,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    offset,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    offset,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    offset,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    tok: Tok::Dot,
                    offset,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    tok: Tok::Colon,
                    offset,
                });
                i += 1;
            }
            '~' => {
                out.push(Token {
                    tok: Tok::Tilde,
                    offset,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    tok: Tok::Star,
                    offset,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    tok: Tok::Eq,
                    offset,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token {
                        tok: Tok::Ne,
                        offset,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        tok: Tok::Le,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Lt,
                        offset,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        tok: Tok::Ge,
                        offset,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Gt,
                        offset,
                    });
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
                    j += 1;
                }
                let text = input.get(start..j).unwrap_or("");
                let n: u32 = text.parse().map_err(|_| MadError::Parse {
                    offset,
                    detail: "expected a parameter number after `$`".into(),
                })?;
                if n == 0 {
                    return Err(MadError::Parse {
                        offset,
                        detail: "parameter numbers start at $1".into(),
                    });
                }
                out.push(Token {
                    tok: Tok::Param(n),
                    offset,
                });
                i = j;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(MadError::Parse {
                            offset,
                            detail: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // handle multi-byte UTF-8 transparently
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                                MadError::Parse {
                                    offset: i,
                                    detail: "invalid UTF-8 in string".into(),
                                }
                            })?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    offset,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| MadError::Parse {
                        offset: start,
                        detail: format!("bad float literal `{text}`"),
                    })?;
                    out.push(Token {
                        tok: Tok::Float(v),
                        offset,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| MadError::Parse {
                        offset: start,
                        detail: format!("bad integer literal `{text}`"),
                    })?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        offset,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &input[start..i];
                match keyword(text) {
                    Some(kw) => out.push(Token {
                        tok: Tok::Kw(kw),
                        offset,
                    }),
                    None => out.push(Token {
                        tok: Tok::Ident(text.to_owned()),
                        offset,
                    }),
                }
            }
            other => {
                return Err(MadError::Parse {
                    offset,
                    detail: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_paper_query() {
        let toks = kinds("SELECT ALL FROM mt_state(state-area-edge-point);");
        assert_eq!(toks[0], Tok::Kw(Kw::Select));
        assert_eq!(toks[1], Tok::Kw(Kw::All));
        assert_eq!(toks[2], Tok::Kw(Kw::From));
        assert_eq!(toks[3], Tok::Ident("mt_state".into()));
        assert_eq!(toks[4], Tok::LParen);
        assert!(toks.contains(&Tok::Dash));
        assert_eq!(*toks.last().unwrap(), Tok::Semi);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select")[0], Tok::Kw(Kw::Select));
        assert_eq!(kinds("SeLeCt")[0], Tok::Kw(Kw::Select));
        assert_eq!(kinds("selects")[0], Tok::Ident("selects".into()));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'pn'")[0], Tok::Str("pn".into()));
        assert_eq!(kinds("'it''s'")[0], Tok::Str("it's".into()));
        assert_eq!(kinds("'Paraná'")[0], Tok::Str("Paraná".into()));
        assert!(lex("'open").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Tok::Int(42));
        assert_eq!(kinds("2.5")[0], Tok::Float(2.5));
        // `1.` is Int then Dot (attribute access style), not a float
        assert_eq!(kinds("1.x"), vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> < <= > >="),
            vec![Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("SELECT -- the projection\nALL");
        assert_eq!(toks, vec![Tok::Kw(Kw::Select), Tok::Kw(Kw::All)]);
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = lex("SELECT ALL").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("SELECT ?").unwrap_err();
        assert!(matches!(err, MadError::Parse { offset: 7, .. }));
    }

    #[test]
    fn parameter_placeholders() {
        assert_eq!(kinds("$1")[0], Tok::Param(1));
        assert_eq!(kinds("$12")[0], Tok::Param(12));
        assert_eq!(
            kinds("sname = $2"),
            vec![Tok::Ident("sname".into()), Tok::Eq, Tok::Param(2)]
        );
        assert!(lex("$").is_err());
        assert!(lex("$0").is_err());
        assert!(lex("$x").is_err());
    }

    #[test]
    fn prepared_statement_keywords() {
        assert_eq!(kinds("prepare")[0], Tok::Kw(Kw::Prepare));
        assert_eq!(kinds("EXECUTE")[0], Tok::Kw(Kw::Execute));
        assert_eq!(kinds("Deallocate")[0], Tok::Kw(Kw::Deallocate));
    }

    #[test]
    fn brackets_and_direction_markers() {
        let toks = kinds("super:parts-[composition>]-sub:parts");
        assert!(toks.contains(&Tok::LBracket));
        assert!(toks.contains(&Tok::Gt));
        assert!(toks.contains(&Tok::Colon));
    }
}
