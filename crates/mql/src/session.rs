//! The MQL session: a database + engine + named-molecule-type catalog,
//! with transactions and shared-handle serving.
//!
//! A [`Session`] is the user-facing entry point of the reproduction: feed it
//! MQL text, get molecule sets back. This mirrors the PRIMA architecture
//! (§5): the session's `Engine` is the molecule-processing component, the
//! `Database` underneath is the atom-oriented component.
//!
//! ## Two ownership modes
//!
//! * **Single-owner** ([`Session::new`] / [`Session::with_engine`]): the
//!   session owns its database; outside a transaction every statement
//!   applies directly (exactly the pre-transaction behavior — autocommit).
//!   `BEGIN` wraps the current state in a throwaway [`DbHandle`] and runs
//!   the real `mad_txn` machinery against it, so `ABORT` restores the
//!   pre-transaction state bit for bit.
//! * **Shared** ([`Session::shared`]): many sessions — typically one per
//!   serving thread — hold clones of one [`DbHandle`]. Queries run against
//!   the session's fork of the committed snapshot (refreshed when other
//!   sessions commit); each DML statement outside a transaction is an
//!   implicit single-op transaction (autocommit); `BEGIN … COMMIT` groups
//!   statements into one atomic, snapshot-isolated unit whose SELECTs read
//!   through the transaction's own write overlay.

use crate::ast::{FromClause, Lit, Statement};
use crate::exec::{
    execute, execute_dml, execute_planned, is_dml, plan_select, PreparedPlan, StatementResult,
};
use mad_core::derive::Strategy;
use mad_core::ops::Engine;
use mad_core::structure::MoleculeStructure;
use mad_model::bin::u64_of_usize;
use mad_model::{FxHashMap, MadError, Result};
use mad_obs::trace::{self, StageKind, StageTimer};
use mad_obs::{Counter, Histogram, Registry, StmtTrace};
use mad_storage::Database;
use mad_txn::{CommitInfo, DbHandle, Transaction};
use std::sync::Arc;
use std::time::Instant;

/// The open transaction of a session: the overlay plus a query engine over
/// a fork of the overlay view (kept so consecutive in-transaction SELECTs
/// share one consistently-enlarged database image).
struct ActiveTxn {
    handle: DbHandle,
    txn: Transaction,
    qe: Engine,
}

/// The session's MQL-layer metrics, registered in the deployment's
/// [`Registry`] (handles are cached so the per-statement hot path never
/// touches the registry's map lock).
struct MqlMetrics {
    /// `mql.stmt_ns` — wall time per executed statement.
    stmt_ns: Arc<Histogram>,
    /// `mql.statements` — statements executed (errors included).
    statements: Counter,
    /// `mql.errors` — statements that returned an error.
    errors: Counter,
    /// `mql.prepared.hits` — EXECUTEs served from a cached SELECT plan.
    prepared_hits: Counter,
    /// `mql.prepared.misses` — EXECUTEs that had to (re-)analyze.
    prepared_misses: Counter,
}

impl MqlMetrics {
    fn new(obs: &Registry) -> Self {
        MqlMetrics {
            stmt_ns: obs.histogram("mql.stmt_ns"),
            statements: obs.counter("mql.statements"),
            errors: obs.counter("mql.errors"),
            prepared_hits: obs.counter("mql.prepared.hits"),
            prepared_misses: obs.counter("mql.prepared.misses"),
        }
    }
}

/// One entry of the session's prepared-statement cache (`PREPARE name AS
/// …`): the parsed body, ready to be parameter-bound and executed without
/// re-lexing/-parsing.
struct PreparedStmt {
    /// The parsed body, placeholders unbound.
    body: Statement,
    /// Highest `$n` placeholder in the body (0 = parameter-free).
    max_param: u32,
    /// Cached analyzed plan for a parameter-free SELECT body, tagged with
    /// the commit sequence it was analyzed at. A plan whose tag no longer
    /// matches the session's `base_seq` is re-analyzed, never served —
    /// concurrent committers can't leave a stale plan behind.
    plan: Option<(u64, PreparedPlan)>,
}

/// An MQL session.
pub struct Session {
    engine: Engine,
    catalog: FxHashMap<String, MoleculeStructure>,
    /// `Some` when serving a shared database through a [`DbHandle`].
    shared: Option<DbHandle>,
    /// Commit sequence the engine's database fork was taken at (shared
    /// mode; used to detect staleness after other sessions commit).
    base_seq: u64,
    /// The open explicit transaction, if any.
    txn: Option<ActiveTxn>,
    /// The metrics registry this session reports into: the shared handle's
    /// deployment registry, or a private one in single-owner mode.
    obs: Registry,
    /// Cached metric handles (no registry lock on the statement path).
    metrics: MqlMetrics,
    /// The prepared-statement cache (`PREPARE` / `EXECUTE` / `DEALLOCATE`).
    /// Session-scoped, like the catalog: not transactional.
    prepared: FxHashMap<String, PreparedStmt>,
}

impl Session {
    /// Open a single-owner session over a database.
    pub fn new(db: Database) -> Self {
        let obs = Registry::new();
        let metrics = MqlMetrics::new(&obs);
        Session {
            engine: Engine::new(db),
            catalog: FxHashMap::default(),
            shared: None,
            base_seq: 0,
            txn: None,
            obs,
            metrics,
            prepared: FxHashMap::default(),
        }
    }

    /// Open a single-owner session over an existing engine (keeps its
    /// provenance/trace).
    pub fn with_engine(engine: Engine) -> Self {
        let obs = Registry::new();
        let metrics = MqlMetrics::new(&obs);
        Session {
            engine,
            catalog: FxHashMap::default(),
            shared: None,
            base_seq: 0,
            txn: None,
            obs,
            metrics,
            prepared: FxHashMap::default(),
        }
    }

    /// Open a session over a shared [`DbHandle`]. Any number of sessions
    /// (across threads) may serve the same handle concurrently; each sees
    /// consistent committed snapshots and commits through `mad_txn`.
    pub fn shared(handle: DbHandle) -> Self {
        let (db, base_seq) = handle.fork();
        let obs = handle.obs().clone();
        let metrics = MqlMetrics::new(&obs);
        Session {
            engine: Engine::new(db),
            catalog: FxHashMap::default(),
            shared: Some(handle),
            base_seq,
            txn: None,
            obs,
            metrics,
            prepared: FxHashMap::default(),
        }
    }

    /// The metrics registry this session reports into — the shared
    /// deployment's registry ([`DbHandle::obs`]) in shared mode, a private
    /// per-session one otherwise. `SHOW STATS` renders exactly this.
    pub fn obs(&self) -> &Registry {
        &self.obs
    }

    /// The shared handle this session serves, if it is in shared mode.
    pub fn handle(&self) -> Option<&DbHandle> {
        self.shared.as_ref()
    }

    /// Is an explicit transaction (`BEGIN` without `COMMIT`/`ABORT`) open?
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The underlying engine (the autocommit one; an open transaction's
    /// scratch engine is internal).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the engine (e.g. to create indexes).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The database this session currently reads: inside a transaction the
    /// transaction's view (its own writes included), otherwise the
    /// session's working image.
    pub fn db(&self) -> &Database {
        match &self.txn {
            Some(active) => active.qe.db(),
            None => self.engine.db(),
        }
    }

    /// The derivation strategy SELECT statements run with. Defaults to
    /// [`Strategy::Bitset`] (frontier bitsets over the database's CSR
    /// snapshot).
    pub fn strategy(&self) -> Strategy {
        self.engine.preferred_strategy()
    }

    /// Override the derivation strategy for this session (`None` restores
    /// the automatic bitset default). `Strategy::Parallel(n)` selects the
    /// partitioned bitset engine: root slot ranges fan over `n` scoped
    /// workers sharing one CSR snapshot.
    pub fn set_strategy(&mut self, strategy: Option<Strategy>) {
        self.engine.set_preferred_strategy(strategy);
    }

    /// How many worker threads the session's current strategy requests (1
    /// for every serial strategy). Execution additionally caps this at the
    /// hardware's available parallelism
    /// ([`Strategy::effective_parallelism`]) so queries never oversubscribe
    /// the cores.
    pub fn parallelism(&self) -> usize {
        self.strategy().parallelism()
    }

    /// `(rebuilt, total)` link-type CSR pairs of the database's most recent
    /// snapshot (re)build — shows the incremental invalidation at work
    /// (`None` before the first SELECT builds a snapshot).
    pub fn csr_rebuild_stats(&self) -> Option<(usize, usize)> {
        self.db().csr_rebuild_stats()
    }

    /// Registered molecule-type names.
    pub fn catalog_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.catalog.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Look up a registered structure.
    pub fn catalog_get(&self, name: &str) -> Option<&MoleculeStructure> {
        self.catalog.get(name)
    }

    /// Parse and execute one MQL statement.
    pub fn execute(&mut self, mql: &str) -> Result<StatementResult> {
        let started = Instant::now();
        let result = self.lex_parse_execute(mql);
        self.metrics
            .stmt_ns
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.metrics.statements.inc();
        if result.is_err() {
            self.metrics.errors.inc();
        }
        result
    }

    /// Lex, parse, execute — each front phase under its own trace stage
    /// (free when no statement trace is active).
    fn lex_parse_execute(&mut self, mql: &str) -> Result<StatementResult> {
        let lt = StageTimer::start(StageKind::Lex);
        let tokens = crate::lexer::lex(mql)?;
        lt.finish_info(&[("tokens", u64_of_usize(tokens.len()))]);
        let pt = StageTimer::start(StageKind::Parse);
        let stmt = crate::parser::Parser::new(&tokens).parse_statement()?;
        pt.finish();
        self.execute_statement(&stmt)
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<StatementResult> {
        // `$n` placeholders are only meaningful inside a PREPARE body;
        // anywhere else they must fail loudly before touching data.
        if !matches!(stmt, Statement::Prepare { .. }) {
            let max = stmt.max_param();
            if max > 0 {
                return Err(MadError::Analysis {
                    detail: format!(
                        "unbound parameter ${max}: `$n` placeholders are only valid \
                         inside a PREPARE body"
                    ),
                });
            }
        }
        let result = self.dispatch_statement(stmt);
        // A successful catalog mutation (DEFINE, or a named inline FROM
        // registering its structure) can change what a cached plan's name
        // resolution would see — drop every cached plan, keep the bodies.
        if result.is_ok() && self.invalidates_plans(stmt) {
            for p in self.prepared.values_mut() {
                p.plan = None;
            }
        }
        result
    }

    fn dispatch_statement(&mut self, stmt: &Statement) -> Result<StatementResult> {
        match stmt {
            Statement::Begin => self.begin().map(|_| StatementResult::Began),
            Statement::Commit => self.commit().map(|info| StatementResult::Committed {
                seq: info.seq,
                ops: info.ops,
                remap: info.remap,
            }),
            Statement::Abort => self.abort().map(|_| StatementResult::Aborted),
            Statement::Checkpoint => self.checkpoint().map(StatementResult::Checkpointed),
            Statement::ShowStats { subsystem, json } => {
                self.show_stats(subsystem.as_deref(), *json)
            }
            Statement::ExplainAnalyze(inner) => self.explain_analyze(inner),
            Statement::Prepare { name, body } => self.prepare(name, body),
            Statement::ExecutePrepared { name, args } => self.execute_prepared(name, args),
            Statement::Deallocate { name } => self.deallocate(name.as_deref()),
            _ if self.txn.is_some() => self.execute_in_txn(stmt),
            _ if self.shared.is_some() && is_dml(stmt) => self.execute_autocommit_dml(stmt),
            _ => {
                self.refresh_if_stale();
                execute(&mut self.engine, &mut self.catalog, stmt)
            }
        }
    }

    /// Can a successful execution of `stmt` change molecule-type name
    /// resolution (and thereby stale a cached [`PreparedPlan`])?
    fn invalidates_plans(&self, stmt: &Statement) -> bool {
        match stmt {
            Statement::Define { .. } => true,
            Statement::Select(s) | Statement::Explain(s) => {
                matches!(&s.from, FromClause::Inline { name: Some(_), .. })
            }
            Statement::ExplainAnalyze(inner) => self.invalidates_plans(inner),
            Statement::ExecutePrepared { name, .. } => self
                .prepared
                .get(name)
                .is_some_and(|p| self.invalidates_plans(&p.body)),
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Prepared statements
    // ------------------------------------------------------------------

    /// `PREPARE name AS <stmt>`: cache the parsed body under `name`
    /// (re-preparing an existing name replaces it). Parameter-free SELECT
    /// bodies are eagerly analyzed so the first `EXECUTE` already skips
    /// analysis; parameterized bodies are analyzed at bind time.
    fn prepare(&mut self, name: &str, body: &Statement) -> Result<StatementResult> {
        // The parser enforces this too; re-check for programmatic ASTs so
        // a prepared body can never recurse into prepared-statement
        // control or session-only statements.
        match body {
            Statement::Select(_)
            | Statement::Explain(_)
            | Statement::Define { .. }
            | Statement::InsertAtom { .. }
            | Statement::Connect { .. }
            | Statement::Disconnect { .. }
            | Statement::DeleteAtom { .. }
            | Statement::Update { .. } => {}
            _ => {
                return Err(MadError::Analysis {
                    detail: "this statement kind cannot be PREPAREd \
                             (queries, EXPLAIN, DEFINE and DML only)"
                        .into(),
                })
            }
        }
        let max_param = body.max_param();
        let mut plan = None;
        if max_param == 0 && self.txn.is_none() {
            if let Statement::Select(sel) = body {
                if !matches!(sel.from, FromClause::Recursive { .. }) {
                    self.refresh_if_stale();
                    plan = plan_select(&self.engine, &mut self.catalog, sel)?
                        .map(|p| (self.base_seq, p));
                }
            }
        }
        self.prepared.insert(
            name.to_owned(),
            PreparedStmt {
                body: body.clone(),
                max_param,
                plan,
            },
        );
        Ok(StatementResult::Prepared(name.to_owned()))
    }

    /// `EXECUTE name [(args)]`: bind and run a prepared statement. A
    /// parameter-free SELECT outside a transaction runs through the cached
    /// plan when its commit-sequence tag still matches (skipping lex,
    /// parse *and* analysis); everything else re-binds the cached AST
    /// (still skipping lex/parse).
    fn execute_prepared(&mut self, name: &str, args: &[Lit]) -> Result<StatementResult> {
        let expected = match self.prepared.get(name) {
            Some(entry) => entry.max_param as usize,
            None => return Err(MadError::unknown("prepared statement", name)),
        };
        if args.len() != expected {
            return Err(MadError::Analysis {
                detail: format!(
                    "prepared statement `{name}` expects {expected} parameter(s), \
                     {} given",
                    args.len()
                ),
            });
        }
        // Plan-cache fast path: parameter-free SELECT, no open transaction.
        if expected == 0 && self.txn.is_none() {
            self.refresh_if_stale();
            let base_seq = self.base_seq;
            // Disjoint field borrows: the cached plan lives in `prepared`,
            // execution needs `engine`/`catalog`.
            let Session {
                engine,
                catalog,
                prepared,
                metrics,
                ..
            } = self;
            if let Some(entry) = prepared.get_mut(name) {
                if let Statement::Select(sel) = &entry.body {
                    if let Some((seq, plan)) = &entry.plan {
                        if *seq == base_seq {
                            metrics.prepared_hits.inc();
                            return execute_planned(engine, plan);
                        }
                    }
                    if !matches!(sel.from, FromClause::Recursive { .. }) {
                        metrics.prepared_misses.inc();
                        if let Some(plan) = plan_select(engine, catalog, sel)? {
                            let result = execute_planned(engine, &plan);
                            entry.plan = Some((base_seq, plan));
                            return result;
                        }
                    }
                }
            }
        }
        // General path: clone the body out of the cache (releasing the
        // map borrow), bind arguments, and dispatch like any statement.
        let bound = match self.prepared.get(name) {
            Some(entry) if expected == 0 => entry.body.clone(),
            Some(entry) => entry.body.bind_params(args)?,
            None => return Err(MadError::unknown("prepared statement", name)),
        };
        self.execute_statement(&bound)
    }

    /// `DEALLOCATE name` / `DEALLOCATE ALL`.
    fn deallocate(&mut self, name: Option<&str>) -> Result<StatementResult> {
        match name {
            Some(n) => {
                if self.prepared.remove(n).is_none() {
                    return Err(MadError::unknown("prepared statement", n));
                }
                Ok(StatementResult::Deallocated {
                    name: Some(n.to_owned()),
                    count: 1,
                })
            }
            None => {
                let count = self.prepared.len();
                self.prepared.clear();
                Ok(StatementResult::Deallocated { name: None, count })
            }
        }
    }

    /// Names in the prepared-statement cache (sorted; for shells).
    pub fn prepared_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.prepared.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// `SHOW STATS [subsystem] [AS JSON]`: snapshot the registry (polling
    /// every live gauge) and render it.
    fn show_stats(&self, subsystem: Option<&str>, json: bool) -> Result<StatementResult> {
        let snap = self.obs.snapshot(subsystem);
        if snap.is_empty() {
            if let Some(s) = subsystem {
                return Err(MadError::unknown("stats subsystem", s));
            }
        }
        let text = if json {
            crate::format::stats_json(&snap)
        } else {
            crate::format::stats_table(&snap)
        };
        Ok(StatementResult::Stats(text))
    }

    /// `EXPLAIN ANALYZE <stmt>`: execute the inner statement under a
    /// statement trace and return its result together with the recorded
    /// stage timings. If an enclosing trace is already active (a network
    /// front-end traces every statement), the analysis piggybacks on it —
    /// the snapshot is taken without deactivating, so the outer trace still
    /// reaches the server's histograms and slow-query log.
    fn explain_analyze(&mut self, inner: &Statement) -> Result<StatementResult> {
        if matches!(inner, Statement::ExplainAnalyze(_)) {
            return Err(MadError::Analysis {
                detail: "EXPLAIN ANALYZE does not nest".into(),
            });
        }
        let owned = !trace::is_active();
        if owned {
            trace::begin();
        }
        let result = self.execute_statement(inner);
        let trace = trace::snapshot().unwrap_or_default();
        if owned {
            trace::take();
        }
        Ok(StatementResult::Analyzed {
            inner: Box::new(result?),
            trace,
        })
    }

    /// Parse and execute one MQL statement, returning the result rendered
    /// as terminal text ([`crate::format::render_result`]). The entry
    /// point network front-ends use: one statement in, one text frame out,
    /// with the session's current view (inside a transaction: the overlay
    /// view) supplying names for the rendering.
    pub fn execute_rendered(&mut self, mql: &str) -> Result<String> {
        let result = self.execute(mql)?;
        Ok(crate::format::render_result(self.db(), &result))
    }

    /// [`Session::execute_rendered`] under a per-statement trace: begins a
    /// statement trace, executes, and returns the rendered result together
    /// with the taken trace (text and total filled in). Network front-ends
    /// use this to feed latency histograms and the slow-query log; the
    /// trace is returned even when the statement failed.
    pub fn execute_rendered_traced(&mut self, mql: &str) -> (Result<String>, StmtTrace) {
        trace::begin();
        let result = self.execute(mql);
        let rendered = result.map(|r| crate::format::render_result(self.db(), &r));
        let mut t = trace::take().unwrap_or_default();
        t.text = mql.trim().to_owned();
        (rendered, t)
    }

    /// Parse and execute one MQL statement, returning the result in the
    /// binary wire encoding ([`crate::format::bin_result`]): molecule
    /// sets travel structurally, everything else as rendered text. The
    /// binary-mode sibling of [`Session::execute_rendered`].
    pub fn execute_bin(&mut self, mql: &str) -> Result<mad_model::bin::BinResult> {
        let result = self.execute(mql)?;
        Ok(crate::format::bin_result(self.db(), &result))
    }

    /// [`Session::execute_bin`] under a per-statement trace — the
    /// binary-mode sibling of [`Session::execute_rendered_traced`].
    pub fn execute_bin_traced(
        &mut self,
        mql: &str,
    ) -> (Result<mad_model::bin::BinResult>, StmtTrace) {
        trace::begin();
        let result = self.execute(mql);
        let encoded = result.map(|r| crate::format::bin_result(self.db(), &r));
        let mut t = trace::take().unwrap_or_default();
        t.text = mql.trim().to_owned();
        (encoded, t)
    }

    /// Execute a script of `;`-separated statements, returning every result.
    /// A failing statement aborts the script and reports **which** statement
    /// failed ([`MadError::Script`]: 0-based index plus source text) — an
    /// open transaction the script started stays open, so the caller decides
    /// between `ABORT` and repair.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<StatementResult>> {
        let mut results = Vec::new();
        for (index, stmt_src) in split_statements(script).into_iter().enumerate() {
            match self.execute(&stmt_src) {
                Ok(r) => results.push(r),
                Err(e) => {
                    return Err(MadError::Script {
                        index,
                        statement: stmt_src,
                        source: Box::new(e),
                    })
                }
            }
        }
        Ok(results)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Open a snapshot-isolated transaction (the `BEGIN` statement).
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(MadError::txn_state(
                "a transaction is already open (COMMIT or ABORT it first)",
            ));
        }
        self.refresh_if_stale();
        let handle = match &self.shared {
            Some(h) => h.clone(),
            // single-owner mode: wrap the current state in a throwaway
            // handle so the full mad_txn machinery (overlay, op log,
            // atomic publish) runs identically
            None => DbHandle::new(self.engine.db().clone()),
        };
        let txn = Transaction::begin(&handle);
        let qe = self.fork_query_engine(&txn);
        self.txn = Some(ActiveTxn { handle, txn, qe });
        Ok(())
    }

    /// Validate and publish the open transaction (the `COMMIT` statement).
    /// On conflict the transaction is aborted (state as before `BEGIN` for
    /// everything this session had not committed) and the error returned.
    pub fn commit(&mut self) -> Result<CommitInfo> {
        let active = self
            .txn
            .take()
            .ok_or_else(|| MadError::txn_state("no open transaction to COMMIT"))?;
        let info = active.txn.commit()?;
        // re-sync the session's working image with the committed state
        // (covers both the throwaway owner-mode handle and the shared one)
        let (db, seq) = active.handle.fork();
        self.engine.replace_db(db);
        self.base_seq = seq;
        Ok(info)
    }

    /// Drop the open transaction's overlay (the `ABORT` statement). The
    /// session's state is exactly what it was before `BEGIN`.
    pub fn abort(&mut self) -> Result<()> {
        let active = self
            .txn
            .take()
            .ok_or_else(|| MadError::txn_state("no open transaction to ABORT"))?;
        active.txn.abort();
        Ok(())
    }

    /// Fold the shared handle's write-ahead log into a fresh bootstrap
    /// image of the committed state (the `CHECKPOINT` statement). Requires
    /// a shared session over a durable handle; commits are held off for
    /// the duration, reads are not.
    pub fn checkpoint(&self) -> Result<mad_txn::CheckpointStats> {
        match &self.shared {
            Some(h) => h.checkpoint(),
            None => Err(MadError::wal(
                "CHECKPOINT requires a session over a shared durable handle \
                 (Session::shared over DbHandle::create_durable/open_durable)",
            )),
        }
    }

    /// A fresh query engine over a fork of the transaction's view, carrying
    /// the session's strategy preference. Queries enlarge this scratch fork
    /// (propagation writes derived types into it) rather than the overlay,
    /// so a committed transaction publishes only its logged DML.
    fn fork_query_engine(&self, txn: &Transaction) -> Engine {
        let mut qe = Engine::new(txn.db().clone());
        qe.set_preferred_strategy(Some(self.engine.preferred_strategy()));
        qe
    }

    fn execute_in_txn(&mut self, stmt: &Statement) -> Result<StatementResult> {
        if is_dml(stmt) {
            let active = self.txn.as_mut().expect("caller checked txn presence");
            let result = execute_dml(&mut active.txn, stmt)?;
            // the overlay changed: rebuild the query view over it
            let active = self.txn.take().expect("still present");
            let qe = self.fork_query_engine(&active.txn);
            self.txn = Some(ActiveTxn { qe, ..active });
            Ok(result)
        } else {
            let active = self.txn.as_mut().expect("caller checked txn presence");
            execute(&mut active.qe, &mut self.catalog, stmt)
        }
    }

    /// One DML statement in shared autocommit mode: an implicit
    /// transaction — begin, apply, commit, refresh. The user never asked
    /// for a transaction, so a first-committer-wins conflict is retried
    /// internally against a fresh snapshot (the statement is
    /// self-contained: selectors re-resolve on every attempt) instead of
    /// surfacing as a spurious error; statement-level errors (unknown
    /// names, integrity violations) propagate on the first attempt.
    fn execute_autocommit_dml(&mut self, stmt: &Statement) -> Result<StatementResult> {
        const MAX_RETRIES: usize = 16;
        let handle = self.shared.clone().expect("caller checked shared mode");
        let mut attempt = 0;
        loop {
            let mut txn = Transaction::begin(&handle);
            let mut result = execute_dml(&mut txn, stmt)?;
            match txn.commit() {
                Ok(info) => {
                    // a concurrent committer may have shifted our fresh
                    // atom's slot
                    if let StatementResult::Inserted(id) = &mut result {
                        *id = info.resolve(*id);
                    }
                    let (db, seq) = handle.fork();
                    self.engine.replace_db(db);
                    self.base_seq = seq;
                    return Ok(result);
                }
                Err(e) if e.is_conflict() && attempt < MAX_RETRIES => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Shared mode: re-fork the committed state when other sessions
    /// committed since our fork was taken. Local derived-type enlargement
    /// from past queries is dropped with the stale fork.
    fn refresh_if_stale(&mut self) {
        if let Some(h) = &self.shared {
            if h.commit_seq() != self.base_seq {
                let (db, seq) = h.fork();
                self.engine.replace_db(db);
                self.base_seq = seq;
            }
        }
    }
}

/// Split a script on `;` outside string literals, stripping `--` line
/// comments; empty statements are skipped. This is the one splitting rule
/// of the language — [`Session::execute_script`] and every client-side
/// script runner (e.g. the `madc` REPL) must share it, or a `;` inside a
/// comment or string would split differently on the two sides of the
/// wire.
pub fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                in_str = !in_str;
                current.push(c);
            }
            ';' if !in_str => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_owned());
                }
                current.clear();
            }
            '-' if !in_str && chars.peek() == Some(&'-') => {
                // skip comment to end of line
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        break;
                    }
                }
                current.push(' ');
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder, Value};

    /// The mini Fig.-2 geography used across the workspace tests.
    fn mini_geo() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("hectare", AttrType::Float)])
            .atom_type("river", &[("rname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("net", &[("nid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .atom_type("point", &[("pname", AttrType::Text)])
            .atom_type("parts", &[("pname", AttrType::Text)])
            .link_type("state-area", "state", "area")
            .link_type("river-net", "river", "net")
            .link_type("area-edge", "area", "edge")
            .link_type("net-edge", "net", "edge")
            .link_type("edge-point", "edge", "point")
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let t = |db: &Database, n: &str| db.schema().atom_type_id(n).unwrap();
        let l = |db: &Database, n: &str| db.schema().link_type_id(n).unwrap();
        let sp = db
            .insert_atom(t(&db, "state"), vec![Value::from("SP"), Value::from(1000.0)])
            .unwrap();
        let mg = db
            .insert_atom(t(&db, "state"), vec![Value::from("MG"), Value::from(900.0)])
            .unwrap();
        let parana = db
            .insert_atom(t(&db, "river"), vec![Value::from("Parana")])
            .unwrap();
        let a1 = db.insert_atom(t(&db, "area"), vec![Value::from(1)]).unwrap();
        let a2 = db.insert_atom(t(&db, "area"), vec![Value::from(2)]).unwrap();
        let n1 = db.insert_atom(t(&db, "net"), vec![Value::from(1)]).unwrap();
        let e1 = db.insert_atom(t(&db, "edge"), vec![Value::from(1)]).unwrap();
        let e2 = db.insert_atom(t(&db, "edge"), vec![Value::from(2)]).unwrap();
        let e3 = db.insert_atom(t(&db, "edge"), vec![Value::from(3)]).unwrap();
        let p1 = db
            .insert_atom(t(&db, "point"), vec![Value::from("p1")])
            .unwrap();
        let p2 = db
            .insert_atom(t(&db, "point"), vec![Value::from("p2")])
            .unwrap();
        db.connect(l(&db, "state-area"), sp, a1).unwrap();
        db.connect(l(&db, "state-area"), mg, a2).unwrap();
        db.connect(l(&db, "river-net"), parana, n1).unwrap();
        db.connect(l(&db, "area-edge"), a1, e1).unwrap();
        db.connect(l(&db, "area-edge"), a1, e2).unwrap();
        db.connect(l(&db, "area-edge"), a2, e2).unwrap();
        db.connect(l(&db, "area-edge"), a2, e3).unwrap();
        db.connect(l(&db, "net-edge"), n1, e2).unwrap();
        db.connect(l(&db, "edge-point"), e1, p1).unwrap();
        db.connect(l(&db, "edge-point"), e2, p1).unwrap();
        db.connect(l(&db, "edge-point"), e2, p2).unwrap();
        db.connect(l(&db, "edge-point"), e3, p2).unwrap();
        // a small BOM for recursive queries
        let engine = db
            .insert_atom(t(&db, "parts"), vec![Value::from("engine")])
            .unwrap();
        let piston = db
            .insert_atom(t(&db, "parts"), vec![Value::from("piston")])
            .unwrap();
        let bolt = db
            .insert_atom(t(&db, "parts"), vec![Value::from("bolt")])
            .unwrap();
        db.connect(l(&db, "composition"), engine, piston).unwrap();
        db.connect(l(&db, "composition"), piston, bolt).unwrap();
        db
    }

    fn session() -> Session {
        Session::new(mini_geo())
    }

    fn molecules(r: StatementResult) -> mad_core::molecule::MoleculeType {
        match r {
            StatementResult::Molecules(mt) => mt,
            other => panic!("expected molecules, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_mt_state() {
        let mut s = session();
        let mt = molecules(
            s.execute("SELECT ALL FROM mt_state(state-area-edge-point);")
                .unwrap(),
        );
        assert_eq!(mt.len(), 2, "one molecule per state");
        assert_eq!(mt.name, "mt_state");
        // the inline definition was registered
        assert!(s.catalog_get("mt_state").is_some());
        // and can be reused by name
        let mt2 = molecules(s.execute("SELECT ALL FROM mt_state").unwrap());
        assert_eq!(mt2.len(), 2);
    }

    #[test]
    fn paper_query_point_neighborhood() {
        let mut s = session();
        let mt = molecules(
            s.execute(
                "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = 'p1';",
            )
            .unwrap(),
        );
        assert_eq!(mt.len(), 1);
        let m = &mt.molecules[0];
        // p1 → e1,e2 → a1,a2 → SP,MG; e2 → n1 → Parana
        assert_eq!(m.atoms_at(1).len(), 2, "edges");
        assert_eq!(m.atoms_at(3).len(), 2, "states");
        assert_eq!(m.atoms_at(5).len(), 1, "rivers");
        s.engine().verify_closure(&mt).unwrap();
    }

    #[test]
    fn where_on_child_and_aggregate() {
        let mut s = session();
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area-edge WHERE COUNT(edge) >= 2")
                .unwrap(),
        );
        assert_eq!(mt.len(), 2, "both states touch ≥ 2 edges");
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area-edge WHERE edge.eid = 3")
                .unwrap(),
        );
        assert_eq!(mt.len(), 1, "only MG reaches e3");
    }

    #[test]
    fn select_projection() {
        let mut s = session();
        let mt = molecules(
            s.execute("SELECT state.sname, area FROM state-area-edge-point")
                .unwrap(),
        );
        assert_eq!(mt.structure.node_count(), 2);
        let root_def = s.db().schema().atom_type(mt.structure.root_node().ty);
        assert_eq!(root_def.attrs.len(), 1);
        assert_eq!(root_def.attrs[0].name, "sname");
        // illegal projection: point without its parent edge
        assert!(s
            .execute("SELECT state, point FROM state-area-edge-point")
            .is_err());
    }

    #[test]
    fn single_node_from() {
        let mut s = session();
        let mt = molecules(s.execute("SELECT ALL FROM state").unwrap());
        assert_eq!(mt.len(), 2);
        assert_eq!(mt.structure.node_count(), 1);
    }

    #[test]
    fn define_then_select() {
        let mut s = session();
        let r = s
            .execute("DEFINE MOLECULE pn AS point-edge-(area-state,net-river)")
            .unwrap();
        assert!(matches!(r, StatementResult::Defined(_)));
        assert_eq!(s.catalog_names(), vec!["pn"]);
        let mt = molecules(
            s.execute("SELECT ALL FROM pn WHERE point.pname = 'p2'")
                .unwrap(),
        );
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn recursive_query() {
        let mut s = session();
        let r = s
            .execute(
                "SELECT ALL FROM RECURSIVE parts VIA composition DOWN WHERE parts.pname = 'engine'",
            )
            .unwrap();
        let StatementResult::Recursive(ms) = r else {
            panic!()
        };
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].size(), 3, "engine, piston, bolt");
        // where-used view
        let r = s
            .execute("SELECT ALL FROM RECURSIVE parts VIA composition UP WHERE parts.pname = 'bolt'")
            .unwrap();
        let StatementResult::Recursive(ms) = r else {
            panic!()
        };
        assert_eq!(ms[0].size(), 3);
        // depth bound
        let r = s
            .execute(
                "SELECT ALL FROM RECURSIVE parts VIA composition DOWN DEPTH 1 \
                 WHERE parts.pname = 'engine'",
            )
            .unwrap();
        let StatementResult::Recursive(ms) = r else {
            panic!()
        };
        assert_eq!(ms[0].size(), 2);
    }

    #[test]
    fn dml_roundtrip() {
        let mut s = session();
        let r = s
            .execute("INSERT ATOM state (sname = 'RJ', hectare = 500.0)")
            .unwrap();
        let StatementResult::Inserted(rj) = r else {
            panic!()
        };
        assert!(s.db().atom_exists(rj));
        let r = s
            .execute("INSERT ATOM area (aid = 9)")
            .unwrap();
        let StatementResult::Inserted(_) = r else {
            panic!()
        };
        let r = s
            .execute("CONNECT state[sname='RJ'] TO area[aid=9] VIA state-area")
            .unwrap();
        assert!(matches!(r, StatementResult::Connected(true)));
        // the molecule now exists
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area WHERE state.sname = 'RJ'")
                .unwrap(),
        );
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.molecules[0].atoms_at(1).len(), 1);
        // update
        let r = s
            .execute("UPDATE state[sname='RJ'] SET hectare = 750.0")
            .unwrap();
        assert!(matches!(r, StatementResult::Updated { atoms: 1 }));
        // disconnect and delete
        let r = s
            .execute("DISCONNECT state[sname='RJ'] TO area[aid=9] VIA state-area")
            .unwrap();
        assert!(matches!(r, StatementResult::Disconnected(true)));
        let r = s.execute("DELETE ATOM state[sname='RJ']").unwrap();
        assert!(matches!(
            r,
            StatementResult::Deleted { atoms: 1, links: 0 }
        ));
        assert!(s.db().audit_referential_integrity().is_empty());
    }

    #[test]
    fn delete_cascades_links() {
        let mut s = session();
        let r = s.execute("DELETE ATOM edge[eid=2]").unwrap();
        let StatementResult::Deleted { atoms, links } = r else {
            panic!()
        };
        assert_eq!(atoms, 1);
        assert_eq!(links, 5, "a1,a2,n1 plus p1,p2");
        assert!(s.db().audit_referential_integrity().is_empty());
    }

    #[test]
    fn ambiguous_selector_rejected() {
        let mut s = session();
        s.execute("INSERT ATOM point (pname = 'p1')").unwrap();
        let err = s
            .execute("CONNECT edge[eid=1] TO point[pname='p1'] VIA edge-point")
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
        let err = s
            .execute("CONNECT edge[eid=99] TO point[pname='p2'] VIA edge-point")
            .unwrap_err();
        assert!(err.to_string().contains("matches no atom"));
    }

    #[test]
    fn reflexive_connect_uses_explicit_orientation() {
        let mut s = session();
        s.execute("INSERT ATOM parts (pname = 'ring')").unwrap();
        let r = s
            .execute("CONNECT parts[pname='piston'] TO parts[pname='ring'] VIA composition")
            .unwrap();
        assert!(matches!(r, StatementResult::Connected(true)));
        let r = s
            .execute(
                "SELECT ALL FROM RECURSIVE parts VIA composition DOWN WHERE parts.pname = 'piston'",
            )
            .unwrap();
        let StatementResult::Recursive(ms) = r else {
            panic!()
        };
        assert_eq!(ms[0].size(), 3, "piston, bolt, ring");
    }

    #[test]
    fn execute_script_multi_statement() {
        let mut s = session();
        let results = s
            .execute_script(
                "-- demo script\n\
                 DEFINE MOLECULE ms AS state-area;\n\
                 SELECT ALL FROM ms WHERE state.sname = 'SP';\n\
                 SELECT ALL FROM ms;",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(matches!(results[0], StatementResult::Defined(_)));
    }

    #[test]
    fn semicolon_inside_string_literal() {
        let stmts = split_statements("SELECT ALL FROM state WHERE state.sname = 'a;b'; SELECT ALL FROM state");
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].contains("a;b"));
    }

    #[test]
    fn explain_reports_plan() {
        let mut s = session();
        s.engine_mut()
            .create_index("state", "sname", mad_storage::IndexKind::Ordered)
            .unwrap();
        let r = s
            .execute("EXPLAIN SELECT ALL FROM state-area-edge WHERE state.sname = 'SP'")
            .unwrap();
        let StatementResult::Plan(plan) = r else {
            panic!("expected a plan")
        };
        assert!(matches!(
            plan.root_selection,
            mad_core::explain::RootSelection::IndexAssisted { .. }
        ));
        let text = plan.to_string();
        assert!(text.contains("suggested strategy"));
        // without an index on the attribute the plan falls back to a scan
        let r = s
            .execute("EXPLAIN SELECT ALL FROM state-area WHERE state.hectare > 900.0")
            .unwrap();
        let StatementResult::Plan(plan) = r else {
            panic!()
        };
        assert!(matches!(
            plan.root_selection,
            mad_core::explain::RootSelection::ScanFiltered { .. }
        ));
        // no WHERE → full occurrence
        let r = s.execute("EXPLAIN SELECT ALL FROM state-area").unwrap();
        let StatementResult::Plan(plan) = r else {
            panic!()
        };
        assert!(matches!(
            plan.root_selection,
            mad_core::explain::RootSelection::FullOccurrence { atoms: 2 }
        ));
        // EXPLAIN over a named molecule type
        s.execute("DEFINE MOLECULE b AS state-area").unwrap();
        assert!(matches!(
            s.execute("EXPLAIN SELECT ALL FROM b").unwrap(),
            StatementResult::Plan(_)
        ));
        // recursive FROM is rejected
        assert!(s
            .execute("EXPLAIN SELECT ALL FROM RECURSIVE parts VIA composition")
            .is_err());
    }

    #[test]
    fn parallel_strategy_serves_selects() {
        let mut s = session();
        assert_eq!(s.parallelism(), 1, "bitset default is serial");
        assert_eq!(s.csr_rebuild_stats(), None, "no snapshot before first SELECT");
        let serial = molecules(s.execute("SELECT ALL FROM state-area-edge-point").unwrap());
        s.set_strategy(Some(mad_core::derive::Strategy::Parallel(3)));
        assert_eq!(s.parallelism(), 3);
        let parallel = molecules(s.execute("SELECT ALL FROM state-area-edge-point").unwrap());
        assert_eq!(serial.molecules, parallel.molecules);
        // the WHERE pushdown path rides the parallel engine too
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area-edge WHERE state.sname = 'SP'")
                .unwrap(),
        );
        assert_eq!(mt.len(), 1);
        // the first SELECT built the snapshot; stats are now reported
        assert!(s.csr_rebuild_stats().is_some());
    }

    #[test]
    fn explain_reports_parallelism_and_rebuilds() {
        let mut s = session();
        s.execute("SELECT ALL FROM state-area").unwrap(); // warm the snapshot
        // attribute-only DML must not cost a rebuild
        s.execute("UPDATE state[sname='SP'] SET hectare = 1.5").unwrap();
        let r = s.execute("EXPLAIN SELECT ALL FROM state-area").unwrap();
        let StatementResult::Plan(plan) = r else { panic!() };
        assert!(plan.csr_warm, "update_attr invalidated the snapshot");
        assert_eq!(plan.parallelism, 1);
        let text = plan.to_string();
        assert!(text.contains("parallelism"), "got: {text}");
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let mut s = session();
        assert!(s.execute("SELECT ALL FROM ghost").is_err());
        assert!(s.execute("SELECT ALL FROM state-ghost").is_err());
        assert!(s.execute("INSERT ATOM ghost (x = 1)").is_err());
        assert!(s.execute("INSERT ATOM state (ghost = 1)").is_err());
    }

    #[test]
    fn txn_abort_restores_state_and_select_sees_overlay() {
        // the acceptance round-trip: BEGIN; DML; SELECT; ABORT leaves the
        // database byte-identical while the in-txn SELECT saw the DML
        let mut s = session();
        let before = mad_storage::DatabaseSnapshot::capture(s.db()).to_json_string();
        assert!(matches!(s.execute("BEGIN").unwrap(), StatementResult::Began));
        assert!(s.in_transaction());
        s.execute("INSERT ATOM state (sname = 'RJ', hectare = 500.0)").unwrap();
        s.execute("INSERT ATOM area (aid = 9)").unwrap();
        s.execute("CONNECT state[sname='RJ'] TO area[aid=9] VIA state-area").unwrap();
        s.execute("UPDATE state[sname='SP'] SET hectare = 9999.0").unwrap();
        s.execute("DELETE ATOM edge[eid=1]").unwrap();
        // the SELECT observes every uncommitted write…
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area WHERE state.sname = 'RJ'").unwrap(),
        );
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.molecules[0].atoms_at(1).len(), 1);
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area-edge WHERE state.hectare > 9000.0").unwrap(),
        );
        assert_eq!(mt.len(), 1, "updated attribute visible to pushdown");
        // …and ABORT drops all of it
        assert!(matches!(s.execute("ABORT").unwrap(), StatementResult::Aborted));
        assert!(!s.in_transaction());
        let after = mad_storage::DatabaseSnapshot::capture(s.db()).to_json_string();
        assert_eq!(before, after, "ABORT must leave the database byte-identical");
    }

    #[test]
    fn txn_commit_publishes_atomically() {
        let mut s = session();
        s.execute("BEGIN TRANSACTION").unwrap();
        s.execute("INSERT ATOM state (sname = 'RJ', hectare = 500.0)").unwrap();
        s.execute("INSERT ATOM area (aid = 9)").unwrap();
        s.execute("CONNECT state[sname='RJ'] TO area[aid=9] VIA state-area").unwrap();
        let r = s.execute("COMMIT").unwrap();
        assert!(matches!(r, StatementResult::Committed { ops: 3, .. }));
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area WHERE state.sname = 'RJ'").unwrap(),
        );
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.molecules[0].atoms_at(1).len(), 1);
        assert!(s.db().audit_referential_integrity().is_empty());
    }

    #[test]
    fn txn_state_errors() {
        let mut s = session();
        assert!(s.execute("COMMIT").unwrap_err().to_string().contains("no open transaction"));
        assert!(s.execute("ROLLBACK").is_err());
        s.execute("BEGIN").unwrap();
        let err = s.execute("BEGIN").unwrap_err();
        assert!(matches!(err, MadError::TxnState { .. }));
        s.execute("ABORT").unwrap();
    }

    #[test]
    fn shared_sessions_see_each_others_commits() {
        let handle = DbHandle::new(mini_geo());
        let mut s1 = Session::shared(handle.clone());
        let mut s2 = Session::shared(handle.clone());
        // autocommit DML in s1 is immediately visible to s2's next query
        s1.execute("INSERT ATOM state (sname = 'RJ', hectare = 500.0)").unwrap();
        let mt = molecules(
            s2.execute("SELECT ALL FROM state WHERE state.sname = 'RJ'").unwrap(),
        );
        assert_eq!(mt.len(), 1);
        // an open transaction in s2 is invisible to s1 until COMMIT
        s2.execute("BEGIN").unwrap();
        s2.execute("UPDATE state[sname='RJ'] SET hectare = 1.0").unwrap();
        let mt = molecules(
            s1.execute("SELECT ALL FROM state WHERE state.hectare < 2.0").unwrap(),
        );
        assert_eq!(mt.len(), 0, "uncommitted overlay leaked across sessions");
        s2.execute("COMMIT").unwrap();
        let mt = molecules(
            s1.execute("SELECT ALL FROM state WHERE state.hectare < 2.0").unwrap(),
        );
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn shared_sessions_conflict_first_committer_wins() {
        let handle = DbHandle::new(mini_geo());
        let mut s1 = Session::shared(handle.clone());
        let mut s2 = Session::shared(handle.clone());
        s1.execute("BEGIN").unwrap();
        s2.execute("BEGIN").unwrap();
        s1.execute("UPDATE state[sname='SP'] SET hectare = 1.0").unwrap();
        s2.execute("UPDATE state[sname='SP'] SET hectare = 2.0").unwrap();
        s1.execute("COMMIT").unwrap();
        let err = s2.execute("COMMIT").unwrap_err();
        assert!(err.is_conflict(), "got {err}");
        assert!(!s2.in_transaction(), "failed COMMIT aborts the transaction");
        let mt = molecules(
            s2.execute("SELECT ALL FROM state WHERE state.hectare = 1.0").unwrap(),
        );
        assert_eq!(mt.len(), 1, "the first committer's value survived");
    }

    #[test]
    fn durable_shared_sessions_checkpoint_and_recover() {
        let dir = std::env::temp_dir().join(format!("mad-mql-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mad.wal");
        let handle =
            mad_txn::DbHandle::create_durable(mini_geo(), &path, mad_txn::FsyncPolicy::Group)
                .unwrap();
        let mut s = Session::shared(handle.clone());
        // autocommit DML and an explicit transaction, both WAL-logged
        s.execute("INSERT ATOM state (sname = 'RJ', hectare = 500.0)").unwrap();
        s.execute_script(
            "BEGIN;\n\
             INSERT ATOM area (aid = 9);\n\
             CONNECT state[sname='RJ'] TO area[aid=9] VIA state-area;\n\
             COMMIT;",
        )
        .unwrap();
        // CHECKPOINT through MQL shrinks the log
        let bytes_before_stmt = handle.wal_len_bytes().unwrap();
        let r = s.execute("CHECKPOINT").unwrap();
        let StatementResult::Checkpointed(stats) = r else {
            panic!("expected Checkpointed, got {r:?}")
        };
        assert_eq!(stats.bytes_before, bytes_before_stmt);
        assert!(stats.bytes_after < stats.bytes_before);
        // one more commit after the checkpoint
        s.execute("UPDATE state[sname='RJ'] SET hectare = 750.0").unwrap();
        let expected =
            mad_storage::DatabaseSnapshot::capture(&handle.committed()).to_json_string();
        drop(s);
        drop(handle);

        // restart: a fresh shared session over the recovered handle sees it all
        let handle = mad_txn::DbHandle::open_durable(&path, mad_txn::FsyncPolicy::Group).unwrap();
        assert_eq!(
            mad_storage::DatabaseSnapshot::capture(&handle.committed()).to_json_string(),
            expected
        );
        let mut s = Session::shared(handle);
        let mt = molecules(
            s.execute("SELECT ALL FROM state-area WHERE state.hectare = 750.0").unwrap(),
        );
        assert_eq!(mt.len(), 1, "recovered molecule derivable through MQL");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_requires_durable_shared_session() {
        // single-owner sessions have no WAL
        let mut s = session();
        assert!(s.execute("CHECKPOINT").is_err());
        // shared but non-durable handles refuse too
        let mut s = Session::shared(DbHandle::new(mini_geo()));
        let err = s.execute("CHECKPOINT").unwrap_err();
        assert!(err.to_string().contains("durable"), "got {err}");
    }

    #[test]
    fn execute_script_reports_failing_statement() {
        let mut s = session();
        let err = s
            .execute_script(
                "INSERT ATOM state (sname = 'RJ', hectare = 1.0);\n\
                 SELECT ALL FROM ghost;\n\
                 INSERT ATOM state (sname = 'ES', hectare = 2.0);",
            )
            .unwrap_err();
        let MadError::Script {
            index,
            statement,
            source,
        } = &err
        else {
            panic!("expected MadError::Script, got {err:?}");
        };
        assert_eq!(*index, 1);
        assert!(statement.contains("FROM ghost"));
        assert!(matches!(**source, MadError::UnknownName { .. }));
        let text = err.to_string();
        assert!(text.contains("statement 1"), "got: {text}");
        assert!(text.contains("ghost"), "got: {text}");
        // statement 0 did execute, statement 2 did not
        assert_eq!(s.db().atom_count(s.db().schema().atom_type_id("state").unwrap()), 3);
    }

    #[test]
    fn show_stats_renders_table_and_json() {
        let mut s = session();
        s.execute("SELECT ALL FROM state-area").unwrap();
        // table form: the mql subsystem has recorded the statement
        let r = s.execute("SHOW STATS").unwrap();
        let StatementResult::Stats(text) = r else {
            panic!("expected Stats, got {r:?}")
        };
        assert!(text.contains("mql.statements"), "got: {text}");
        assert!(text.contains("mql.stmt_ns"), "got: {text}");
        // subsystem filter narrows to the prefix
        let StatementResult::Stats(text) = s.execute("SHOW STATS mql").unwrap() else {
            panic!()
        };
        assert!(text.lines().all(|l| l.starts_with("mql.")), "got: {text}");
        // machine-readable variant round-trips through the JSON parser
        let StatementResult::Stats(text) = s.execute("SHOW STATS AS JSON").unwrap() else {
            panic!()
        };
        let json = mad_model::json::Json::parse(&text).unwrap();
        let hist = json.get("mql.stmt_ns").unwrap();
        assert!(matches!(hist.get("count").unwrap(), mad_model::json::Json::Int(n) if *n >= 1));
        // unknown subsystem errors cleanly
        assert!(s.execute("SHOW STATS ghost").is_err());
    }

    #[test]
    fn explain_analyze_executes_and_times_stages() {
        let mut s = session();
        let r = s
            .execute("EXPLAIN ANALYZE SELECT ALL FROM state-area-edge WHERE state.sname = 'SP'")
            .unwrap();
        let StatementResult::Analyzed { inner, trace } = r else {
            panic!("expected Analyzed, got {r:?}")
        };
        let StatementResult::Molecules(mt) = *inner else {
            panic!("inner result must be the executed SELECT")
        };
        assert_eq!(mt.len(), 1);
        assert_eq!(trace.stage_count(trace::StageKind::Derive), 1);
        assert!(trace.stage_ns(trace::StageKind::Derive) > 0);
        let text = trace.render();
        assert!(text.contains("derive"), "got: {text}");
        assert!(text.contains("molecules="), "got: {text}");
        // DML is executed too (ANALYZE is not a dry run)
        let r = s
            .execute("EXPLAIN ANALYZE INSERT ATOM state (sname = 'RJ', hectare = 1.0)")
            .unwrap();
        assert!(matches!(r, StatementResult::Analyzed { .. }));
        let mt = molecules(s.execute("SELECT ALL FROM state WHERE state.sname = 'RJ'").unwrap());
        assert_eq!(mt.len(), 1, "the analyzed INSERT committed");
        // nesting is rejected
        assert!(s.execute("EXPLAIN ANALYZE EXPLAIN ANALYZE SELECT ALL FROM state").is_err());
    }

    #[test]
    fn explain_analyze_times_commit_stages_in_shared_mode() {
        let handle = DbHandle::new(mini_geo());
        let mut s = Session::shared(handle);
        let r = s
            .execute("EXPLAIN ANALYZE UPDATE state[sname='SP'] SET hectare = 2.0")
            .unwrap();
        let StatementResult::Analyzed { trace, .. } = r else {
            panic!()
        };
        assert_eq!(
            trace.stage_count(trace::StageKind::Validate),
            1,
            "autocommit DML validates once: {}",
            trace.render()
        );
        // the shared registry accumulates commit counters
        let StatementResult::Stats(text) = s.execute("SHOW STATS txn").unwrap() else {
            panic!()
        };
        assert!(text.contains("txn.commits"), "got: {text}");
    }

    #[test]
    fn rendered_traced_returns_trace_even_on_error() {
        let mut s = session();
        let (ok, t) = s.execute_rendered_traced("SELECT ALL FROM state-area");
        assert!(ok.unwrap().contains("state"));
        assert_eq!(t.text, "SELECT ALL FROM state-area");
        assert!(t.total_ns > 0);
        assert!(t.stage_count(trace::StageKind::Lex) == 1 && t.stage_count(trace::StageKind::Parse) == 1);
        let (err, t) = s.execute_rendered_traced("SELECT ALL FROM ghost");
        assert!(err.is_err());
        assert!(t.total_ns > 0, "failed statements are traced too");
    }

    #[test]
    fn transactional_script_roundtrip() {
        let mut s = session();
        let before = mad_storage::DatabaseSnapshot::capture(s.db()).to_json_string();
        let results = s
            .execute_script(
                "BEGIN;\n\
                 INSERT ATOM state (sname = 'RJ', hectare = 500.0);\n\
                 SELECT ALL FROM state WHERE state.sname = 'RJ';\n\
                 ABORT;",
            )
            .unwrap();
        assert_eq!(results.len(), 4);
        let StatementResult::Molecules(mt) = &results[2] else {
            panic!()
        };
        assert_eq!(mt.len(), 1, "in-transaction SELECT observed the insert");
        let after = mad_storage::DatabaseSnapshot::capture(s.db()).to_json_string();
        assert_eq!(before, after);
    }

    #[test]
    fn prepare_execute_roundtrip() {
        let mut s = session();
        let r = s
            .execute("PREPARE q AS SELECT ALL FROM state-area WHERE state.sname = 'SP'")
            .unwrap();
        assert!(matches!(r, StatementResult::Prepared(ref n) if n == "q"));
        for _ in 0..3 {
            let StatementResult::Molecules(mt) = s.execute("EXECUTE q").unwrap() else {
                panic!("expected molecules");
            };
            assert_eq!(mt.len(), 1);
        }
        // the parameter-free SELECT plan is cached after the eager prepare
        assert!(s.obs().counter("mql.prepared.hits").get() >= 2);
        let r = s.execute("DEALLOCATE q").unwrap();
        assert!(matches!(r, StatementResult::Deallocated { count: 1, .. }));
        let err = s.execute("EXECUTE q").unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }), "{err}");
    }

    #[test]
    fn prepared_parameters_bind_per_execute() {
        let mut s = session();
        s.execute("PREPARE by_name AS SELECT ALL FROM state WHERE state.sname = $1")
            .unwrap();
        let StatementResult::Molecules(mt) = s.execute("EXECUTE by_name ('SP')").unwrap()
        else {
            panic!()
        };
        assert_eq!(mt.len(), 1);
        let StatementResult::Molecules(mt) = s.execute("EXECUTE by_name ('nope')").unwrap()
        else {
            panic!()
        };
        assert_eq!(mt.len(), 0);
        // wrong arity errors cleanly
        assert!(s.execute("EXECUTE by_name").is_err());
        assert!(s.execute("EXECUTE by_name ('a', 'b')").is_err());
        // parameterized DML binds too
        s.execute("PREPARE upd AS UPDATE state[sname=$1] SET hectare = $2")
            .unwrap();
        let r = s.execute("EXECUTE upd ('SP', 123.0)").unwrap();
        assert!(matches!(r, StatementResult::Updated { atoms: 1 }));
    }

    #[test]
    fn unbound_parameters_outside_prepare_error() {
        let mut s = session();
        let err = s
            .execute("SELECT ALL FROM state WHERE state.sname = $1")
            .unwrap_err();
        assert!(matches!(err, MadError::Analysis { .. }), "{err}");
        let err = s
            .execute("UPDATE state[sname=$1] SET hectare = 1.0")
            .unwrap_err();
        assert!(matches!(err, MadError::Analysis { .. }), "{err}");
    }

    #[test]
    fn prepared_plan_cache_invalidated_by_concurrent_commit() {
        let handle = DbHandle::new(mini_geo());
        let mut a = Session::shared(handle.clone());
        let mut b = Session::shared(handle.clone());
        a.execute("PREPARE q AS SELECT ALL FROM state").unwrap();
        let StatementResult::Molecules(mt) = a.execute("EXECUTE q").unwrap() else {
            panic!()
        };
        assert_eq!(mt.len(), 2);
        // another session commits a new state atom; the cached plan's
        // commit-seq tag no longer matches, so the next EXECUTE re-plans
        // against the refreshed fork and sees three states
        b.execute("INSERT ATOM state (sname = 'RJ', hectare = 1.0)")
            .unwrap();
        let StatementResult::Molecules(mt) = a.execute("EXECUTE q").unwrap() else {
            panic!()
        };
        assert_eq!(mt.len(), 3, "stale plan must never serve stale data");
        assert!(a.obs().counter("mql.prepared.misses").get() >= 1);
    }

    #[test]
    fn prepared_plan_invalidated_by_define() {
        let mut s = session();
        s.execute("DEFINE MOLECULE v AS state-area").unwrap();
        s.execute("PREPARE q AS SELECT ALL FROM v").unwrap();
        let StatementResult::Molecules(mt) = s.execute("EXECUTE q").unwrap() else {
            panic!()
        };
        assert_eq!(mt.structure.node_count(), 2);
        // redefine `v` to a different structure: the cached plan must drop
        s.execute("DEFINE MOLECULE v AS state").unwrap();
        let StatementResult::Molecules(mt) = s.execute("EXECUTE q").unwrap() else {
            panic!()
        };
        assert_eq!(mt.structure.node_count(), 1);
    }

    #[test]
    fn prepare_works_inside_transactions() {
        let mut s = Session::shared(DbHandle::new(mini_geo()));
        s.execute("PREPARE ins AS INSERT ATOM state (sname = $1, hectare = $2)")
            .unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("EXECUTE ins ('RJ', 1.0)").unwrap();
        s.execute("EXECUTE ins ('ES', 2.0)").unwrap();
        s.execute("COMMIT").unwrap();
        let StatementResult::Molecules(mt) = s.execute("SELECT ALL FROM state").unwrap()
        else {
            panic!()
        };
        assert_eq!(mt.len(), 4);
    }
}
