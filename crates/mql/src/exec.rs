//! Statement execution: the translation of analyzed MQL statements into
//! molecule-algebra operations (the semantics definition of §4).

use crate::analyze::{analyze_expr, analyze_structure};
use crate::ast::*;
use mad_core::derive::DeriveOptions;
use mad_core::molecule::MoleculeType;
use mad_core::ops::Engine;
use mad_core::qual::QualExpr;
use mad_core::recursive::{derive_recursive, RecursiveMolecule, RecursiveSpec};
use mad_core::structure::MoleculeStructure;
use mad_model::{AtomId, FxHashMap, MadError, Result, Value};
use mad_storage::database::Direction;

/// The result of executing one MQL statement.
#[derive(Debug)]
pub enum StatementResult {
    /// A SELECT produced a molecule type.
    Molecules(MoleculeType),
    /// EXPLAIN produced an execution plan.
    Plan(mad_core::explain::Plan),
    /// A SELECT over a recursive FROM clause produced recursive molecules.
    Recursive(Vec<RecursiveMolecule>),
    /// DEFINE MOLECULE registered a named structure.
    Defined(String),
    /// INSERT ATOM created an atom.
    Inserted(AtomId),
    /// CONNECT added a link (`false` = it already existed).
    Connected(bool),
    /// DISCONNECT removed a link (`false` = it did not exist).
    Disconnected(bool),
    /// DELETE ATOM removed atoms and cascaded links.
    Deleted {
        /// Number of atoms deleted.
        atoms: usize,
        /// Number of links cascaded away.
        links: usize,
    },
    /// UPDATE modified atoms.
    Updated {
        /// Number of atoms updated.
        atoms: usize,
    },
}

/// Execute an analyzed statement against `engine`, resolving named molecule
/// types through `catalog`.
pub fn execute(
    engine: &mut Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    stmt: &Statement,
) -> Result<StatementResult> {
    match stmt {
        Statement::Select(sel) => execute_select(engine, catalog, sel),
        Statement::Explain(sel) => execute_explain(engine, catalog, sel),
        Statement::Define { name, structure } => {
            let md = analyze_structure(engine.db().schema(), structure)?;
            catalog.insert(name.clone(), md);
            Ok(StatementResult::Defined(name.clone()))
        }
        Statement::InsertAtom { atom_type, values } => {
            let ty = engine.db().schema().atom_type_id(atom_type)?;
            let def = engine.db().schema().atom_type(ty).clone();
            let mut tuple = vec![Value::Null; def.arity()];
            for (attr, lit) in values {
                let pos = def.attr_index(attr).ok_or_else(|| MadError::Analysis {
                    detail: format!("atom type `{atom_type}` has no attribute `{attr}`"),
                })?;
                tuple[pos] = lit.to_value();
            }
            let id = engine.db_mut().insert_atom(ty, tuple)?;
            Ok(StatementResult::Inserted(id))
        }
        Statement::Connect { from, to, link } => {
            let lt = engine.db().schema().link_type_id(link)?;
            let a = select_one(engine, from)?;
            let b = select_one(engine, to)?;
            let added = if engine.db().schema().link_type(lt).is_reflexive() {
                engine.db_mut().connect(lt, a, b)?
            } else {
                engine.db_mut().connect_sym(lt, a, b)?
            };
            Ok(StatementResult::Connected(added))
        }
        Statement::Disconnect { from, to, link } => {
            let lt = engine.db().schema().link_type_id(link)?;
            let a = select_one(engine, from)?;
            let b = select_one(engine, to)?;
            let def = engine.db().schema().link_type(lt).clone();
            // reflexive link types take the selectors as written (side 0 =
            // `from`); otherwise orient by endpoint type
            let removed = if def.is_reflexive() || a.ty == def.ends[0] {
                engine.db_mut().disconnect(lt, a, b)?
            } else {
                engine.db_mut().disconnect(lt, b, a)?
            };
            Ok(StatementResult::Disconnected(removed))
        }
        Statement::DeleteAtom { selector } => {
            let ids = select_atoms(engine, selector)?;
            let mut links = 0usize;
            let count = ids.len();
            for id in ids {
                links += engine.db_mut().delete_atom(id)?;
            }
            Ok(StatementResult::Deleted {
                atoms: count,
                links,
            })
        }
        Statement::Update { selector, sets } => {
            let ids = select_atoms(engine, selector)?;
            let ty = engine.db().schema().atom_type_id(&selector.atom_type)?;
            let def = engine.db().schema().atom_type(ty).clone();
            let mut resolved = Vec::with_capacity(sets.len());
            for (attr, lit) in sets {
                let pos = def.attr_index(attr).ok_or_else(|| MadError::Analysis {
                    detail: format!(
                        "atom type `{}` has no attribute `{attr}`",
                        selector.atom_type
                    ),
                })?;
                resolved.push((pos, lit.to_value()));
            }
            for &id in &ids {
                for (pos, v) in &resolved {
                    engine.db_mut().update_attr(id, *pos, v.clone())?;
                }
            }
            Ok(StatementResult::Updated { atoms: ids.len() })
        }
    }
}

fn select_atoms(engine: &Engine, sel: &AtomSelector) -> Result<Vec<AtomId>> {
    let ty = engine.db().schema().atom_type_id(&sel.atom_type)?;
    let def = engine.db().schema().atom_type(ty);
    let pos = def.attr_index(&sel.attr).ok_or_else(|| MadError::Analysis {
        detail: format!(
            "atom type `{}` has no attribute `{}`",
            sel.atom_type, sel.attr
        ),
    })?;
    let needle = sel.value.to_value();
    // use an index when one exists
    if let Some(hits) = engine.db().lookup_eq(ty, pos, &needle) {
        return Ok(hits.to_vec());
    }
    Ok(engine
        .db()
        .atoms_of(ty)
        .filter(|(_, t)| t[pos].sql_cmp(&needle) == Some(std::cmp::Ordering::Equal))
        .map(|(id, _)| id)
        .collect())
}

fn select_one(engine: &Engine, sel: &AtomSelector) -> Result<AtomId> {
    let hits = select_atoms(engine, sel)?;
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => Err(MadError::Analysis {
            detail: format!(
                "selector {}[{} = {}] matches no atom",
                sel.atom_type,
                sel.attr,
                sel.value.to_value()
            ),
        }),
        many => Err(MadError::Analysis {
            detail: format!(
                "selector {}[{} = {}] is ambiguous ({} atoms)",
                sel.atom_type,
                sel.attr,
                sel.value.to_value(),
                many.len()
            ),
        }),
    }
}

fn execute_explain(
    engine: &mut Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    sel: &SelectStmt,
) -> Result<StatementResult> {
    if matches!(sel.from, FromClause::Recursive { .. }) {
        return Err(MadError::Analysis {
            detail: "EXPLAIN does not support recursive FROM clauses".into(),
        });
    }
    let md = match &sel.from {
        FromClause::Named(n) => catalog
            .get(n)
            .cloned()
            .ok_or_else(|| MadError::unknown("molecule type", n))?,
        FromClause::Inline { structure, .. } => {
            analyze_structure(engine.db().schema(), structure)?
        }
        FromClause::Recursive { .. } => unreachable!(),
    };
    let qual = match &sel.where_clause {
        Some(w) => Some(analyze_expr(engine.db().schema(), &md, w)?),
        None => None,
    };
    Ok(StatementResult::Plan(mad_core::explain::explain(
        engine.db(),
        &md,
        qual.as_ref(),
    )))
}

fn execute_select(
    engine: &mut Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    sel: &SelectStmt,
) -> Result<StatementResult> {
    // recursive FROM is its own path
    if let FromClause::Recursive {
        atom_type,
        link,
        dir,
        depth,
    } = &sel.from
    {
        return execute_recursive(engine, sel, atom_type, link, *dir, *depth);
    }
    let (name, md) = match &sel.from {
        FromClause::Named(n) => match catalog.get(n) {
            Some(md) => (n.clone(), md.clone()),
            None => {
                // fall back: a bare atom-type name is the single-node
                // structure over that type
                let schema = engine.db().schema();
                if schema.atom_type_id(n).is_ok() {
                    (n.clone(), mad_core::structure::path(schema, &[n])?)
                } else {
                    return Err(MadError::unknown("molecule type", n));
                }
            }
        },
        FromClause::Inline { name, structure } => {
            let md = analyze_structure(engine.db().schema(), structure)?;
            let n = name.clone().unwrap_or_else(|| "result".to_owned());
            if let Some(n) = name {
                catalog.insert(n.clone(), md.clone());
            }
            (n, md)
        }
        FromClause::Recursive { .. } => unreachable!(),
    };
    // WHERE → Σ (pushed into the definition, Def. 10 composed with Def. 8).
    // The engine picks the strategy: bitset derivation over the CSR
    // snapshot by default, overridable per session.
    let strategy = engine.preferred_strategy();
    let mt = match &sel.where_clause {
        Some(w) => {
            let qual = analyze_expr(engine.db().schema(), &md, w)?;
            engine.define_restricted(&name, md, &qual, strategy)?
        }
        None => engine.define_with(&name, md, &DeriveOptions::with_strategy(strategy))?,
    };
    // SELECT list → Π
    let mt = apply_projection(engine, mt, &sel.projection)?;
    Ok(StatementResult::Molecules(mt))
}

fn apply_projection(
    engine: &mut Engine,
    mt: MoleculeType,
    projection: &Projection,
) -> Result<MoleculeType> {
    let items = match projection {
        Projection::All => return Ok(mt),
        Projection::Items(items) => items,
    };
    // keep set in structure order, attribute projections merged per node
    let mut keep: Vec<&str> = Vec::new();
    let mut attr_proj: Vec<(&str, Vec<&str>)> = Vec::new();
    for item in items {
        if mt.structure.node_by_alias(&item.node).is_none() {
            return Err(MadError::Analysis {
                detail: format!("projection names unknown node `{}`", item.node),
            });
        }
        if !keep.contains(&item.node.as_str()) {
            keep.push(&item.node);
        }
        if let Some(attr) = &item.attr {
            match attr_proj.iter_mut().find(|(n, _)| *n == item.node) {
                Some((_, attrs)) => {
                    if !attrs.contains(&attr.as_str()) {
                        attrs.push(attr);
                    }
                }
                None => attr_proj.push((&item.node, vec![attr])),
            }
        } else {
            // whole-node item: drop any attribute restriction
            attr_proj.retain(|(n, _)| *n != item.node);
        }
    }
    engine.project(&mt, &keep, &attr_proj)
}

fn execute_recursive(
    engine: &mut Engine,
    sel: &SelectStmt,
    atom_type: &str,
    link: &str,
    dir: RecDir,
    depth: Option<usize>,
) -> Result<StatementResult> {
    if !matches!(sel.projection, Projection::All) {
        return Err(MadError::Analysis {
            detail: "recursive queries support SELECT ALL only".into(),
        });
    }
    let ty = engine.db().schema().atom_type_id(atom_type)?;
    let lt = engine.db().schema().link_type_id(link)?;
    let spec = RecursiveSpec {
        atom_type: ty,
        link: lt,
        dir: match dir {
            RecDir::Down => Direction::Fwd,
            RecDir::Up => Direction::Bwd,
            RecDir::Both => Direction::Sym,
        },
        max_depth: depth,
    };
    spec.validate(engine.db())?;
    // WHERE restricts the ROOT set, evaluated on the single-node structure
    let roots: Option<Vec<AtomId>> = match &sel.where_clause {
        None => None,
        Some(w) => {
            let md = mad_core::structure::path(engine.db().schema(), &[atom_type])?;
            let qual: QualExpr = analyze_expr(engine.db().schema(), &md, w)?;
            let ids = engine
                .db()
                .atom_ids_of(ty)
                .into_iter()
                .filter(|&id| {
                    let m = mad_core::molecule::Molecule::single(id, 1, 0, 0);
                    qual.qualifies(engine.db(), &m)
                })
                .collect();
            Some(ids)
        }
    };
    let ms = derive_recursive(engine.db(), &spec, roots.as_deref())?;
    Ok(StatementResult::Recursive(ms))
}
