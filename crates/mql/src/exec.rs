//! Statement execution: the translation of analyzed MQL statements into
//! molecule-algebra operations (the semantics definition of §4).

use crate::analyze::{analyze_expr, analyze_structure};
use crate::ast::*;
use mad_core::derive::DeriveOptions;
use mad_core::molecule::MoleculeType;
use mad_core::ops::Engine;
use mad_core::qual::QualExpr;
use mad_core::recursive::{derive_recursive, RecursiveMolecule, RecursiveSpec};
use mad_core::structure::MoleculeStructure;
use mad_model::{AtomId, FxHashMap, MadError, Result, Value};
use mad_obs::trace::{StageKind, StageTimer};
use mad_obs::StmtTrace;
use mad_storage::database::Direction;
use mad_storage::Database;
use mad_txn::Transaction;

/// The result of executing one MQL statement.
#[derive(Debug)]
pub enum StatementResult {
    /// A SELECT produced a molecule type.
    Molecules(MoleculeType),
    /// EXPLAIN produced an execution plan.
    Plan(mad_core::explain::Plan),
    /// A SELECT over a recursive FROM clause produced recursive molecules.
    Recursive(Vec<RecursiveMolecule>),
    /// DEFINE MOLECULE registered a named structure.
    Defined(String),
    /// INSERT ATOM created an atom.
    Inserted(AtomId),
    /// CONNECT added a link (`false` = it already existed).
    Connected(bool),
    /// DISCONNECT removed a link (`false` = it did not exist).
    Disconnected(bool),
    /// DELETE ATOM removed atoms and cascaded links.
    Deleted {
        /// Number of atoms deleted.
        atoms: usize,
        /// Number of links cascaded away.
        links: usize,
    },
    /// UPDATE modified atoms.
    Updated {
        /// Number of atoms updated.
        atoms: usize,
    },
    /// BEGIN opened a transaction.
    Began,
    /// COMMIT validated and published the transaction.
    Committed {
        /// The commit sequence number the write-set was published at (0
        /// for a read-only transaction, which publishes nothing). Network
        /// clients use it to reason about what a later snapshot — or a
        /// recovery after a crash — must still contain.
        seq: u64,
        /// Number of DML operations published.
        ops: usize,
        /// Transaction-born atoms whose committed id differs from the
        /// provisional id reported by the in-transaction INSERT (possible
        /// only when other sessions committed inserts of the same type
        /// concurrently). Callers that stored provisional ids must map
        /// them through this before further use.
        remap: FxHashMap<AtomId, AtomId>,
    },
    /// ABORT dropped the transaction's overlay.
    Aborted,
    /// CHECKPOINT folded the write-ahead log into a fresh bootstrap image.
    Checkpointed(mad_txn::CheckpointStats),
    /// SHOW STATS rendered the metrics registry (the session pre-renders
    /// it, since only the session knows which registry the deployment
    /// shares).
    Stats(String),
    /// EXPLAIN ANALYZE executed the inner statement and captured its
    /// per-stage timing trace.
    Analyzed {
        /// The inner statement's own result.
        inner: Box<StatementResult>,
        /// The recorded per-stage timings.
        trace: StmtTrace,
    },
    /// PREPARE cached a statement under a name.
    Prepared(String),
    /// DEALLOCATE dropped prepared statements from the session cache.
    Deallocated {
        /// The dropped name (`None` for `DEALLOCATE ALL`).
        name: Option<String>,
        /// How many cache entries were dropped.
        count: usize,
    },
}

/// The write side of DML execution: either a [`Database`] mutated directly
/// (autocommit / single-owner sessions) or a [`Transaction`] overlay (DML
/// inside `BEGIN … COMMIT`, logged and validated at commit). Both expose a
/// read view for selector resolution — for a transaction that view includes
/// its own uncommitted writes.
pub trait DmlTarget {
    /// The database state selectors and schema lookups resolve against.
    fn view(&self) -> &Database;
    /// Insert an atom.
    fn insert_atom(&mut self, ty: mad_model::AtomTypeId, tuple: Vec<Value>) -> Result<AtomId>;
    /// Delete an atom (cascading links); returns the cascade count.
    fn delete_atom(&mut self, id: AtomId) -> Result<usize>;
    /// Update one attribute.
    fn update_attr(&mut self, id: AtomId, attr: usize, value: Value) -> Result<()>;
    /// Connect with explicit orientation.
    fn connect(&mut self, lt: mad_model::LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool>;
    /// Connect, inferring orientation (non-reflexive link types).
    fn connect_sym(&mut self, lt: mad_model::LinkTypeId, a: AtomId, b: AtomId) -> Result<bool>;
    /// Remove an oriented link.
    fn disconnect(
        &mut self,
        lt: mad_model::LinkTypeId,
        side0: AtomId,
        side1: AtomId,
    ) -> Result<bool>;
}

impl DmlTarget for Database {
    fn view(&self) -> &Database {
        self
    }
    fn insert_atom(&mut self, ty: mad_model::AtomTypeId, tuple: Vec<Value>) -> Result<AtomId> {
        Database::insert_atom(self, ty, tuple)
    }
    fn delete_atom(&mut self, id: AtomId) -> Result<usize> {
        Database::delete_atom(self, id)
    }
    fn update_attr(&mut self, id: AtomId, attr: usize, value: Value) -> Result<()> {
        Database::update_attr(self, id, attr, value)
    }
    fn connect(&mut self, lt: mad_model::LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool> {
        Database::connect(self, lt, side0, side1)
    }
    fn connect_sym(&mut self, lt: mad_model::LinkTypeId, a: AtomId, b: AtomId) -> Result<bool> {
        Database::connect_sym(self, lt, a, b)
    }
    fn disconnect(
        &mut self,
        lt: mad_model::LinkTypeId,
        side0: AtomId,
        side1: AtomId,
    ) -> Result<bool> {
        Database::disconnect(self, lt, side0, side1)
    }
}

impl DmlTarget for Transaction {
    fn view(&self) -> &Database {
        self.db()
    }
    fn insert_atom(&mut self, ty: mad_model::AtomTypeId, tuple: Vec<Value>) -> Result<AtomId> {
        Transaction::insert_atom(self, ty, tuple)
    }
    fn delete_atom(&mut self, id: AtomId) -> Result<usize> {
        Transaction::delete_atom(self, id)
    }
    fn update_attr(&mut self, id: AtomId, attr: usize, value: Value) -> Result<()> {
        Transaction::update_attr(self, id, attr, value)
    }
    fn connect(&mut self, lt: mad_model::LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool> {
        Transaction::connect(self, lt, side0, side1)
    }
    fn connect_sym(&mut self, lt: mad_model::LinkTypeId, a: AtomId, b: AtomId) -> Result<bool> {
        Transaction::connect_sym(self, lt, a, b)
    }
    fn disconnect(
        &mut self,
        lt: mad_model::LinkTypeId,
        side0: AtomId,
        side1: AtomId,
    ) -> Result<bool> {
        Transaction::disconnect(self, lt, side0, side1)
    }
}

/// Is `stmt` a manipulation statement (routed through a [`DmlTarget`])?
pub fn is_dml(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::InsertAtom { .. }
            | Statement::Connect { .. }
            | Statement::Disconnect { .. }
            | Statement::DeleteAtom { .. }
            | Statement::Update { .. }
    )
}

/// Execute a manipulation statement against any [`DmlTarget`].
pub fn execute_dml<W: DmlTarget>(target: &mut W, stmt: &Statement) -> Result<StatementResult> {
    match stmt {
        Statement::InsertAtom { atom_type, values } => {
            let ty = target.view().schema().atom_type_id(atom_type)?;
            let def = target.view().schema().atom_type(ty).clone();
            let mut tuple = vec![Value::Null; def.arity()];
            for (attr, lit) in values {
                let pos = def.attr_index(attr).ok_or_else(|| MadError::Analysis {
                    detail: format!("atom type `{atom_type}` has no attribute `{attr}`"),
                })?;
                tuple[pos] = lit.to_value();
            }
            let id = target.insert_atom(ty, tuple)?;
            Ok(StatementResult::Inserted(id))
        }
        Statement::Connect { from, to, link } => {
            let lt = target.view().schema().link_type_id(link)?;
            let a = select_one(target.view(), from)?;
            let b = select_one(target.view(), to)?;
            let added = if target.view().schema().link_type(lt).is_reflexive() {
                target.connect(lt, a, b)?
            } else {
                target.connect_sym(lt, a, b)?
            };
            Ok(StatementResult::Connected(added))
        }
        Statement::Disconnect { from, to, link } => {
            let lt = target.view().schema().link_type_id(link)?;
            let a = select_one(target.view(), from)?;
            let b = select_one(target.view(), to)?;
            let def = target.view().schema().link_type(lt).clone();
            // reflexive link types take the selectors as written (side 0 =
            // `from`); otherwise orient by endpoint type
            let removed = if def.is_reflexive() || a.ty == def.ends[0] {
                target.disconnect(lt, a, b)?
            } else {
                target.disconnect(lt, b, a)?
            };
            Ok(StatementResult::Disconnected(removed))
        }
        Statement::DeleteAtom { selector } => {
            let ids = select_atoms(target.view(), selector)?;
            let mut links = 0usize;
            let count = ids.len();
            for id in ids {
                links += target.delete_atom(id)?;
            }
            Ok(StatementResult::Deleted {
                atoms: count,
                links,
            })
        }
        Statement::Update { selector, sets } => {
            let ids = select_atoms(target.view(), selector)?;
            let ty = target.view().schema().atom_type_id(&selector.atom_type)?;
            let def = target.view().schema().atom_type(ty).clone();
            let mut resolved = Vec::with_capacity(sets.len());
            for (attr, lit) in sets {
                let pos = def.attr_index(attr).ok_or_else(|| MadError::Analysis {
                    detail: format!(
                        "atom type `{}` has no attribute `{attr}`",
                        selector.atom_type
                    ),
                })?;
                resolved.push((pos, lit.to_value()));
            }
            for &id in &ids {
                for (pos, v) in &resolved {
                    target.update_attr(id, *pos, v.clone())?;
                }
            }
            Ok(StatementResult::Updated { atoms: ids.len() })
        }
        other => Err(MadError::Analysis {
            detail: format!("not a DML statement: {other:?}"),
        }),
    }
}

/// Execute an analyzed statement against `engine`, resolving named molecule
/// types through `catalog`.
pub fn execute(
    engine: &mut Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    stmt: &Statement,
) -> Result<StatementResult> {
    match stmt {
        Statement::Select(sel) => execute_select(engine, catalog, sel),
        Statement::Explain(sel) => execute_explain(engine, catalog, sel),
        Statement::Define { name, structure } => {
            let md = analyze_structure(engine.db().schema(), structure)?;
            catalog.insert(name.clone(), md);
            Ok(StatementResult::Defined(name.clone()))
        }
        Statement::InsertAtom { .. }
        | Statement::Connect { .. }
        | Statement::Disconnect { .. }
        | Statement::DeleteAtom { .. }
        | Statement::Update { .. } => execute_dml(engine.db_mut(), stmt),
        Statement::Begin | Statement::Commit | Statement::Abort | Statement::Checkpoint => {
            Err(MadError::txn_state(
                "transaction control statements are handled by the session",
            ))
        }
        Statement::ShowStats { .. } | Statement::ExplainAnalyze(_) => Err(MadError::txn_state(
            "observability statements are handled by the session",
        )),
        Statement::Prepare { .. }
        | Statement::ExecutePrepared { .. }
        | Statement::Deallocate { .. } => Err(MadError::txn_state(
            "prepared-statement control is handled by the session",
        )),
    }
}

fn select_atoms(db: &Database, sel: &AtomSelector) -> Result<Vec<AtomId>> {
    let ty = db.schema().atom_type_id(&sel.atom_type)?;
    let def = db.schema().atom_type(ty);
    let pos = def.attr_index(&sel.attr).ok_or_else(|| MadError::Analysis {
        detail: format!(
            "atom type `{}` has no attribute `{}`",
            sel.atom_type, sel.attr
        ),
    })?;
    let needle = sel.value.to_value();
    // use an index when one exists
    if let Some(hits) = db.lookup_eq(ty, pos, &needle) {
        return Ok(hits.to_vec());
    }
    Ok(db
        .atoms_of(ty)
        .filter(|(_, t)| t[pos].sql_cmp(&needle) == Some(std::cmp::Ordering::Equal))
        .map(|(id, _)| id)
        .collect())
}

fn select_one(db: &Database, sel: &AtomSelector) -> Result<AtomId> {
    let hits = select_atoms(db, sel)?;
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => Err(MadError::Analysis {
            detail: format!(
                "selector {}[{} = {}] matches no atom",
                sel.atom_type,
                sel.attr,
                sel.value.to_value()
            ),
        }),
        many => Err(MadError::Analysis {
            detail: format!(
                "selector {}[{} = {}] is ambiguous ({} atoms)",
                sel.atom_type,
                sel.attr,
                sel.value.to_value(),
                many.len()
            ),
        }),
    }
}

fn execute_explain(
    engine: &mut Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    sel: &SelectStmt,
) -> Result<StatementResult> {
    if matches!(sel.from, FromClause::Recursive { .. }) {
        return Err(MadError::Analysis {
            detail: "EXPLAIN does not support recursive FROM clauses".into(),
        });
    }
    let md = match &sel.from {
        FromClause::Named(n) => catalog
            .get(n)
            .cloned()
            .ok_or_else(|| MadError::unknown("molecule type", n))?,
        FromClause::Inline { structure, .. } => {
            analyze_structure(engine.db().schema(), structure)?
        }
        FromClause::Recursive { .. } => unreachable!(),
    };
    let qual = match &sel.where_clause {
        Some(w) => Some(analyze_expr(engine.db().schema(), &md, w)?),
        None => None,
    };
    Ok(StatementResult::Plan(mad_core::explain::explain(
        engine.db(),
        &md,
        qual.as_ref(),
    )))
}

/// An analyzed, parameter-free SELECT: name resolution, structure
/// validation and WHERE typing already done, ready for repeated
/// derivation without re-lexing/-parsing/-analyzing. This is what a
/// session caches per prepared statement.
#[derive(Clone, Debug)]
pub struct PreparedPlan {
    /// The molecule-type name the derivation registers under.
    pub name: String,
    /// The validated structure.
    pub md: MoleculeStructure,
    /// The typed WHERE qualification, when present.
    pub qual: Option<QualExpr>,
    /// The SELECT-list projection.
    pub projection: Projection,
}

/// Analyze `sel` into a reusable [`PreparedPlan`]. Returns `None` for
/// recursive FROM clauses, which bypass the molecule-algebra pipeline
/// and are not plan-cacheable.
pub fn plan_select(
    engine: &Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    sel: &SelectStmt,
) -> Result<Option<PreparedPlan>> {
    if matches!(sel.from, FromClause::Recursive { .. }) {
        return Ok(None);
    }
    let (name, md) = match &sel.from {
        FromClause::Named(n) => match catalog.get(n) {
            Some(md) => (n.clone(), md.clone()),
            None => {
                // fall back: a bare atom-type name is the single-node
                // structure over that type
                let schema = engine.db().schema();
                if schema.atom_type_id(n).is_ok() {
                    (n.clone(), mad_core::structure::path(schema, &[n])?)
                } else {
                    return Err(MadError::unknown("molecule type", n));
                }
            }
        },
        FromClause::Inline { name, structure } => {
            let md = analyze_structure(engine.db().schema(), structure)?;
            let n = name.clone().unwrap_or_else(|| "result".to_owned());
            if let Some(n) = name {
                catalog.insert(n.clone(), md.clone());
            }
            (n, md)
        }
        FromClause::Recursive { .. } => return Ok(None),
    };
    let qual = match &sel.where_clause {
        Some(w) => Some(analyze_expr(engine.db().schema(), &md, w)?),
        None => None,
    };
    Ok(Some(PreparedPlan {
        name,
        md,
        qual,
        projection: sel.projection.clone(),
    }))
}

/// Derive and project a previously planned SELECT. The derivation runs
/// against the engine's **current** snapshot — a plan is analysis only,
/// so re-executing it always sees fresh data.
pub fn execute_planned(engine: &mut Engine, plan: &PreparedPlan) -> Result<StatementResult> {
    // WHERE → Σ (pushed into the definition, Def. 10 composed with Def. 8).
    // The engine picks the strategy: bitset derivation over the CSR
    // snapshot by default, overridable per session.
    let strategy = engine.preferred_strategy();
    let dt = StageTimer::start(StageKind::Derive);
    let mt = match &plan.qual {
        Some(qual) => engine.define_restricted(&plan.name, plan.md.clone(), qual, strategy)?,
        None => engine.define_with(
            &plan.name,
            plan.md.clone(),
            &DeriveOptions::with_strategy(strategy),
        )?,
    };
    if dt.is_timing() {
        let (csr_rebuilt, csr_pairs) = engine.db().csr_rebuild_stats().unwrap_or((0, 0));
        dt.finish_with(
            Some(format!("{strategy:?}")),
            &[
                ("csr_rebuilt", mad_model::bin::u64_of_usize(csr_rebuilt)),
                ("csr_pairs", mad_model::bin::u64_of_usize(csr_pairs)),
                ("molecules", mad_model::bin::u64_of_usize(mt.len())),
            ],
        );
    } else {
        dt.finish();
    }
    // SELECT list → Π
    let mt = apply_projection(engine, mt, &plan.projection)?;
    Ok(StatementResult::Molecules(mt))
}

fn execute_select(
    engine: &mut Engine,
    catalog: &mut FxHashMap<String, MoleculeStructure>,
    sel: &SelectStmt,
) -> Result<StatementResult> {
    // recursive FROM is its own path
    if let FromClause::Recursive {
        atom_type,
        link,
        dir,
        depth,
    } = &sel.from
    {
        return execute_recursive(engine, sel, atom_type, link, *dir, *depth);
    }
    match plan_select(engine, catalog, sel)? {
        Some(plan) => execute_planned(engine, &plan),
        None => Err(MadError::Analysis {
            detail: "recursive FROM clauses are not plannable".into(),
        }),
    }
}

fn apply_projection(
    engine: &mut Engine,
    mt: MoleculeType,
    projection: &Projection,
) -> Result<MoleculeType> {
    let items = match projection {
        Projection::All => return Ok(mt),
        Projection::Items(items) => items,
    };
    // keep set in structure order, attribute projections merged per node
    let mut keep: Vec<&str> = Vec::new();
    let mut attr_proj: Vec<(&str, Vec<&str>)> = Vec::new();
    for item in items {
        if mt.structure.node_by_alias(&item.node).is_none() {
            return Err(MadError::Analysis {
                detail: format!("projection names unknown node `{}`", item.node),
            });
        }
        if !keep.contains(&item.node.as_str()) {
            keep.push(&item.node);
        }
        if let Some(attr) = &item.attr {
            match attr_proj.iter_mut().find(|(n, _)| *n == item.node) {
                Some((_, attrs)) => {
                    if !attrs.contains(&attr.as_str()) {
                        attrs.push(attr);
                    }
                }
                None => attr_proj.push((&item.node, vec![attr])),
            }
        } else {
            // whole-node item: drop any attribute restriction
            attr_proj.retain(|(n, _)| *n != item.node);
        }
    }
    engine.project(&mt, &keep, &attr_proj)
}

fn execute_recursive(
    engine: &mut Engine,
    sel: &SelectStmt,
    atom_type: &str,
    link: &str,
    dir: RecDir,
    depth: Option<usize>,
) -> Result<StatementResult> {
    if !matches!(sel.projection, Projection::All) {
        return Err(MadError::Analysis {
            detail: "recursive queries support SELECT ALL only".into(),
        });
    }
    let ty = engine.db().schema().atom_type_id(atom_type)?;
    let lt = engine.db().schema().link_type_id(link)?;
    let spec = RecursiveSpec {
        atom_type: ty,
        link: lt,
        dir: match dir {
            RecDir::Down => Direction::Fwd,
            RecDir::Up => Direction::Bwd,
            RecDir::Both => Direction::Sym,
        },
        max_depth: depth,
    };
    spec.validate(engine.db())?;
    // WHERE restricts the ROOT set, evaluated on the single-node structure
    let roots: Option<Vec<AtomId>> = match &sel.where_clause {
        None => None,
        Some(w) => {
            let md = mad_core::structure::path(engine.db().schema(), &[atom_type])?;
            let qual: QualExpr = analyze_expr(engine.db().schema(), &md, w)?;
            let ids = engine
                .db()
                .atom_ids_of(ty)
                .into_iter()
                .filter(|&id| {
                    let m = mad_core::molecule::Molecule::single(id, 1, 0, 0);
                    qual.qualifies(engine.db(), &m)
                })
                .collect();
            Some(ids)
        }
    };
    let ms = derive_recursive(engine.db(), &spec, roots.as_deref())?;
    Ok(StatementResult::Recursive(ms))
}
