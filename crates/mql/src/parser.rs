//! The MQL recursive-descent parser.

use crate::ast::*;
use crate::lexer::{Kw, Tok, Token};
use mad_core::qual::{AggFn, CmpOp};
use mad_model::{MadError, Result};

/// Recursive-descent parser over a token slice.
pub struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Start parsing `tokens`.
    pub fn new(tokens: &'a [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| {
                self.tokens
                    .last()
                    .map(|t| t.offset + 1)
                    .unwrap_or(0)
            })
    }

    fn err(&self, detail: impl Into<String>) -> MadError {
        MadError::Parse {
            offset: self.offset(),
            detail: detail.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Tok) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: Tok, what: &str) -> Result<()> {
        if self.eat(&expected) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&Tok::Kw(kw))
    }

    fn expect_kw(&mut self, kw: Kw, what: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    /// Parse one complete statement (an optional trailing `;` is consumed;
    /// leftover tokens are an error).
    pub fn parse_statement(&mut self) -> Result<Statement> {
        let stmt = self.statement_body()?;
        self.eat(&Tok::Semi);
        if self.pos != self.tokens.len() {
            return Err(self.err("unexpected trailing tokens"));
        }
        Ok(stmt)
    }

    /// The statement dispatch proper, without the trailing-token check —
    /// `EXPLAIN ANALYZE` recurses into this for its inner statement.
    fn statement_body(&mut self) -> Result<Statement> {
        let stmt = match self.peek() {
            Some(Tok::Kw(Kw::Select)) => Statement::Select(self.select()?),
            Some(Tok::Kw(Kw::Explain)) => {
                self.pos += 1;
                if self.eat_kw(Kw::Analyze) {
                    Statement::ExplainAnalyze(Box::new(self.statement_body()?))
                } else {
                    Statement::Explain(self.select()?)
                }
            }
            Some(Tok::Kw(Kw::Show)) => {
                self.pos += 1;
                self.expect_kw(Kw::Stats, "STATS")?;
                let subsystem = match self.peek() {
                    Some(Tok::Ident(_)) => Some(self.ident("subsystem name")?),
                    _ => None,
                };
                let json = if self.eat_kw(Kw::As) {
                    self.expect_kw(Kw::Json, "JSON")?;
                    true
                } else {
                    false
                };
                Statement::ShowStats { subsystem, json }
            }
            Some(Tok::Kw(Kw::Define)) => self.define()?,
            Some(Tok::Kw(Kw::Insert)) => self.insert()?,
            Some(Tok::Kw(Kw::Connect)) => self.connect(false)?,
            Some(Tok::Kw(Kw::Disconnect)) => self.connect(true)?,
            Some(Tok::Kw(Kw::Delete)) => self.delete()?,
            Some(Tok::Kw(Kw::Update)) => self.update()?,
            Some(Tok::Kw(Kw::Begin)) => {
                self.pos += 1;
                self.eat_kw(Kw::Transaction); // optional noise word
                Statement::Begin
            }
            Some(Tok::Kw(Kw::Commit)) => {
                self.pos += 1;
                Statement::Commit
            }
            Some(Tok::Kw(Kw::Abort)) | Some(Tok::Kw(Kw::Rollback)) => {
                self.pos += 1;
                Statement::Abort
            }
            Some(Tok::Kw(Kw::Checkpoint)) => {
                self.pos += 1;
                Statement::Checkpoint
            }
            Some(Tok::Kw(Kw::Prepare)) => self.prepare()?,
            Some(Tok::Kw(Kw::Execute)) => self.execute_prepared()?,
            Some(Tok::Kw(Kw::Deallocate)) => {
                self.pos += 1;
                let name = if self.eat_kw(Kw::All) {
                    None
                } else {
                    Some(self.ident("prepared-statement name (or ALL)")?)
                };
                Statement::Deallocate { name }
            }
            _ => return Err(self.err("expected a statement keyword")),
        };
        Ok(stmt)
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Kw::Select, "SELECT")?;
        let projection = if self.eat_kw(Kw::All) {
            Projection::All
        } else {
            let mut items = vec![self.proj_item()?];
            while self.eat(&Tok::Comma) {
                items.push(self.proj_item()?);
            }
            Projection::Items(items)
        };
        self.expect_kw(Kw::From, "FROM")?;
        let from = self.from_clause()?;
        let where_clause = if self.eat_kw(Kw::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            from,
            where_clause,
        })
    }

    fn proj_item(&mut self) -> Result<ProjItem> {
        let node = self.ident("projection node")?;
        let attr = if self.eat(&Tok::Dot) {
            if self.eat_kw(Kw::All) {
                None
            } else {
                Some(self.ident("attribute name")?)
            }
        } else {
            None
        };
        Ok(ProjItem { node, attr })
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&mut self) -> Result<FromClause> {
        if self.eat_kw(Kw::Recursive) {
            let atom_type = self.ident("atom type")?;
            self.expect_kw(Kw::Via, "VIA")?;
            let link = self.link_name()?;
            let dir = if self.eat_kw(Kw::Down) {
                RecDir::Down
            } else if self.eat_kw(Kw::Up) {
                RecDir::Up
            } else if self.eat_kw(Kw::Both) {
                RecDir::Both
            } else {
                RecDir::Down
            };
            let depth = if self.eat_kw(Kw::Depth) {
                match self.bump() {
                    Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                    _ => return Err(self.err("expected a non-negative DEPTH")),
                }
            } else {
                None
            };
            return Ok(FromClause::Recursive {
                atom_type,
                link,
                dir,
                depth,
            });
        }
        // `name(structure)` | bare `name` (no '-' and no '(') | structure
        if let Some(Tok::Ident(_)) = self.peek() {
            if self.peek2() == Some(&Tok::LParen) {
                let name = self.ident("molecule-type name")?;
                self.expect(Tok::LParen, "`(`")?;
                let structure = StructureAst {
                    root: self.seq()?,
                };
                self.expect(Tok::RParen, "`)`")?;
                return Ok(FromClause::Inline {
                    name: Some(name),
                    structure,
                });
            }
            // bare name: single identifier not followed by - or :
            let next_is_structure = matches!(
                self.peek2(),
                Some(Tok::Dash) | Some(Tok::Colon)
            );
            if !next_is_structure {
                let name = self.ident("molecule-type name")?;
                return Ok(FromClause::Named(name));
            }
        }
        let structure = StructureAst { root: self.seq()? };
        Ok(FromClause::Inline {
            name: None,
            structure,
        })
    }

    /// A sequence: node term plus optional continuation.
    fn seq(&mut self) -> Result<SeqAst> {
        let head = self.node_term()?;
        let mut branches = Vec::new();
        if self.eat(&Tok::Dash) {
            // continuation: branch or parenthesized branch list
            if self.eat(&Tok::LParen) {
                branches.push(self.branch()?);
                while self.eat(&Tok::Comma) {
                    branches.push(self.branch()?);
                }
                self.expect(Tok::RParen, "`)` closing the branch list")?;
            } else {
                branches.push(self.branch()?);
            }
        }
        Ok(SeqAst { head, branches })
    }

    fn branch(&mut self) -> Result<BranchAst> {
        let link = if self.peek() == Some(&Tok::LBracket) {
            let label = self.link_label()?;
            self.expect(Tok::Dash, "`-` after a link label")?;
            Some(label)
        } else {
            None
        };
        let seq = self.seq()?;
        Ok(BranchAst { link, seq })
    }

    fn link_label(&mut self) -> Result<LinkLabel> {
        self.expect(Tok::LBracket, "`[`")?;
        let name = self.link_name()?;
        let dir = match self.peek() {
            Some(Tok::Gt) => {
                self.pos += 1;
                Some(DirMark::Fwd)
            }
            Some(Tok::Lt) => {
                self.pos += 1;
                Some(DirMark::Bwd)
            }
            Some(Tok::Tilde) => {
                self.pos += 1;
                Some(DirMark::Sym)
            }
            _ => None,
        };
        self.expect(Tok::RBracket, "`]`")?;
        Ok(LinkLabel { name, dir })
    }

    /// A link-type name: identifiers joined by dashes (`state-area`).
    fn link_name(&mut self) -> Result<String> {
        let mut name = self.ident("link-type name")?;
        while self.peek() == Some(&Tok::Dash) {
            // only continue when a name part follows (`state-area`)
            if let Some(Tok::Ident(_)) = self.peek2() {
                self.pos += 1;
                name.push('-');
                name.push_str(&self.ident("link-type name part")?);
            } else {
                break;
            }
        }
        Ok(name)
    }

    fn node_term(&mut self) -> Result<NodeTerm> {
        let first = self.ident("atom type or alias")?;
        if self.eat(&Tok::Colon) {
            let atom_type = self.ident("atom type")?;
            Ok(NodeTerm {
                alias: first,
                atom_type,
            })
        } else {
            Ok(NodeTerm {
                alias: first.clone(),
                atom_type: first,
            })
        }
    }

    // ------------------------------------------------------------------
    // WHERE expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let right = self.and_expr()?;
            left = ExprAst::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<ExprAst> {
        let mut left = self.unary_expr()?;
        while self.eat_kw(Kw::And) {
            let right = self.unary_expr()?;
            left = ExprAst::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<ExprAst> {
        if self.eat_kw(Kw::Not) {
            let inner = self.unary_expr()?;
            return Ok(ExprAst::Not(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn agg_kw(&mut self) -> Option<AggFn> {
        let agg = match self.peek() {
            Some(Tok::Kw(Kw::Sum)) => AggFn::Sum,
            Some(Tok::Kw(Kw::Min)) => AggFn::Min,
            Some(Tok::Kw(Kw::Max)) => AggFn::Max,
            Some(Tok::Kw(Kw::Avg)) => AggFn::Avg,
            _ => return None,
        };
        self.pos += 1;
        Some(agg)
    }

    fn primary_expr(&mut self) -> Result<ExprAst> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Kw(Kw::Exists)) | Some(Tok::Kw(Kw::Forall)) => {
                let forall = matches!(self.peek(), Some(Tok::Kw(Kw::Forall)));
                self.pos += 1;
                self.expect(Tok::LParen, "`(`")?;
                let node = self.ident("node alias")?;
                self.expect(Tok::Colon, "`:`")?;
                let inner = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(if forall {
                    ExprAst::Forall {
                        node,
                        expr: Box::new(inner),
                    }
                } else {
                    ExprAst::Exists {
                        node,
                        expr: Box::new(inner),
                    }
                })
            }
            Some(Tok::Kw(Kw::Count)) => {
                self.pos += 1;
                self.expect(Tok::LParen, "`(`")?;
                let node = self.ident("node alias")?;
                self.expect(Tok::RParen, "`)`")?;
                let op = self.cmp_op()?;
                match self.bump() {
                    Some(Tok::Int(n)) => Ok(ExprAst::CountCmp { node, op, count: n }),
                    _ => Err(self.err("expected an integer after COUNT comparison")),
                }
            }
            _ => {
                if let Some(agg) = self.agg_kw() {
                    self.expect(Tok::LParen, "`(`")?;
                    let node = self.ident("node alias")?;
                    self.expect(Tok::Dot, "`.`")?;
                    let attr = self.ident("attribute")?;
                    self.expect(Tok::RParen, "`)`")?;
                    let op = self.cmp_op()?;
                    let value = self.literal()?;
                    return Ok(ExprAst::AggCmp {
                        agg,
                        node,
                        attr,
                        op,
                        value,
                    });
                }
                let left = self.operand()?;
                let op = self.cmp_op()?;
                let right = self.operand()?;
                Ok(ExprAst::Cmp { left, op, right })
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Err(self.err("expected a comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    fn operand(&mut self) -> Result<OperandAst> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let node = self.ident("node alias")?;
                self.expect(Tok::Dot, "`.` (operands are node.attr or literals)")?;
                let attr = self.ident("attribute")?;
                Ok(OperandAst::Attr { node, attr })
            }
            _ => Ok(OperandAst::Lit(self.literal()?)),
        }
    }

    fn literal(&mut self) -> Result<Lit> {
        // optional unary minus for numerics
        let neg = self.eat(&Tok::Dash);
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Lit::Int(if neg { -n } else { n })),
            Some(Tok::Float(x)) => Ok(Lit::Float(if neg { -x } else { x })),
            Some(Tok::Str(s)) if !neg => Ok(Lit::Str(s)),
            Some(Tok::Kw(Kw::True)) if !neg => Ok(Lit::Bool(true)),
            Some(Tok::Kw(Kw::False)) if !neg => Ok(Lit::Bool(false)),
            Some(Tok::Kw(Kw::Null)) if !neg => Ok(Lit::Null),
            Some(Tok::Param(n)) if !neg => Ok(Lit::Param(n)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a literal"))
            }
        }
    }

    // ------------------------------------------------------------------
    // Prepared statements
    // ------------------------------------------------------------------

    fn prepare(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Prepare, "PREPARE")?;
        let name = self.ident("prepared-statement name")?;
        self.expect_kw(Kw::As, "AS")?;
        let at = self.offset();
        let body = self.statement_body()?;
        match body {
            Statement::Select(_)
            | Statement::Explain(_)
            | Statement::Define { .. }
            | Statement::InsertAtom { .. }
            | Statement::Connect { .. }
            | Statement::Disconnect { .. }
            | Statement::DeleteAtom { .. }
            | Statement::Update { .. } => {}
            _ => {
                return Err(MadError::Parse {
                    offset: at,
                    detail: "this statement kind cannot be PREPAREd \
                             (queries, EXPLAIN, DEFINE and DML only)"
                        .into(),
                })
            }
        }
        Ok(Statement::Prepare {
            name,
            body: Box::new(body),
        })
    }

    fn execute_prepared(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Execute, "EXECUTE")?;
        let name = self.ident("prepared-statement name")?;
        let mut args = Vec::new();
        if self.eat(&Tok::LParen) {
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    let at = self.offset();
                    let lit = self.literal()?;
                    if matches!(lit, Lit::Param(_)) {
                        return Err(MadError::Parse {
                            offset: at,
                            detail: "EXECUTE arguments must be plain literals, not `$n` \
                                     placeholders"
                                .into(),
                        });
                    }
                    args.push(lit);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen, "`)`")?;
        }
        Ok(Statement::ExecutePrepared { name, args })
    }

    // ------------------------------------------------------------------
    // DDL / DML statements
    // ------------------------------------------------------------------

    fn define(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Define, "DEFINE")?;
        self.expect_kw(Kw::Molecule, "MOLECULE")?;
        let name = self.ident("molecule-type name")?;
        self.expect_kw(Kw::As, "AS")?;
        let structure = StructureAst { root: self.seq()? };
        Ok(Statement::Define { name, structure })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Insert, "INSERT")?;
        self.expect_kw(Kw::Atom, "ATOM")?;
        let atom_type = self.ident("atom type")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut values = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let attr = self.ident("attribute")?;
                self.expect(Tok::Eq, "`=`")?;
                let lit = self.literal()?;
                values.push((attr, lit));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(Statement::InsertAtom { atom_type, values })
    }

    fn atom_selector(&mut self) -> Result<AtomSelector> {
        let atom_type = self.ident("atom type")?;
        self.expect(Tok::LBracket, "`[`")?;
        let attr = self.ident("attribute")?;
        self.expect(Tok::Eq, "`=`")?;
        let value = self.literal()?;
        self.expect(Tok::RBracket, "`]`")?;
        Ok(AtomSelector {
            atom_type,
            attr,
            value,
        })
    }

    fn connect(&mut self, disconnect: bool) -> Result<Statement> {
        if disconnect {
            self.expect_kw(Kw::Disconnect, "DISCONNECT")?;
        } else {
            self.expect_kw(Kw::Connect, "CONNECT")?;
        }
        let from = self.atom_selector()?;
        self.expect_kw(Kw::To, "TO")?;
        let to = self.atom_selector()?;
        self.expect_kw(Kw::Via, "VIA")?;
        let link = self.link_name()?;
        Ok(if disconnect {
            Statement::Disconnect { from, to, link }
        } else {
            Statement::Connect { from, to, link }
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Delete, "DELETE")?;
        self.expect_kw(Kw::Atom, "ATOM")?;
        let selector = self.atom_selector()?;
        Ok(Statement::DeleteAtom { selector })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw(Kw::Update, "UPDATE")?;
        let selector = self.atom_selector()?;
        self.expect_kw(Kw::Set, "SET")?;
        let mut sets = Vec::new();
        loop {
            let attr = self.ident("attribute")?;
            self.expect(Tok::Eq, "`=`")?;
            let lit = self.literal()?;
            sets.push((attr, lit));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(Statement::Update { selector, sets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(s: &str) -> Result<Statement> {
        let toks = lex(s)?;
        Parser::new(&toks).parse_statement()
    }

    fn parse_ok(s: &str) -> Statement {
        parse(s).unwrap_or_else(|e| panic!("parse failed for `{s}`: {e}"))
    }

    #[test]
    fn paper_example_mt_state() {
        let stmt = parse_ok("SELECT ALL FROM mt_state(state-area-edge-point);");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.projection, Projection::All);
        let FromClause::Inline { name, structure } = sel.from else {
            panic!()
        };
        assert_eq!(name.as_deref(), Some("mt_state"));
        // linear path: state → area → edge → point
        let mut seq = &structure.root;
        let mut names = vec![seq.head.atom_type.clone()];
        while let Some(b) = seq.branches.first() {
            seq = &b.seq;
            names.push(seq.head.atom_type.clone());
        }
        assert_eq!(names, vec!["state", "area", "edge", "point"]);
        assert!(sel.where_clause.is_none());
    }

    #[test]
    fn paper_example_point_neighborhood() {
        let stmt = parse_ok(
            "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = 'pn';",
        );
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let FromClause::Inline {
            name: None,
            structure,
        } = sel.from
        else {
            panic!()
        };
        let root = &structure.root;
        assert_eq!(root.head.atom_type, "point");
        let edge_seq = &root.branches[0].seq;
        assert_eq!(edge_seq.head.atom_type, "edge");
        assert_eq!(edge_seq.branches.len(), 2, "two branches under edge");
        assert_eq!(edge_seq.branches[0].seq.head.atom_type, "area");
        assert_eq!(edge_seq.branches[1].seq.head.atom_type, "net");
        assert!(matches!(
            sel.where_clause,
            Some(ExprAst::Cmp { .. })
        ));
    }

    #[test]
    fn explicit_link_labels_and_aliases() {
        let stmt =
            parse_ok("SELECT ALL FROM super:parts-[composition>]-sub:parts");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let FromClause::Inline { structure, .. } = sel.from else {
            panic!()
        };
        let root = &structure.root;
        assert_eq!(root.head.alias, "super");
        assert_eq!(root.head.atom_type, "parts");
        let b = &root.branches[0];
        let label = b.link.as_ref().unwrap();
        assert_eq!(label.name, "composition");
        assert_eq!(label.dir, Some(DirMark::Fwd));
        assert_eq!(b.seq.head.alias, "sub");
    }

    #[test]
    fn dashed_link_names_in_labels() {
        let stmt = parse_ok("SELECT ALL FROM state-[state-area]-area");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let FromClause::Inline { structure, .. } = sel.from else {
            panic!()
        };
        let label = structure.root.branches[0].link.as_ref().unwrap();
        assert_eq!(label.name, "state-area");
        assert_eq!(label.dir, None);
    }

    #[test]
    fn named_from_clause() {
        let stmt = parse_ok("SELECT ALL FROM mt_state");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.from, FromClause::Named("mt_state".into()));
    }

    #[test]
    fn recursive_from() {
        let stmt = parse_ok("SELECT ALL FROM RECURSIVE parts VIA composition DOWN DEPTH 3");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(
            sel.from,
            FromClause::Recursive {
                atom_type: "parts".into(),
                link: "composition".into(),
                dir: RecDir::Down,
                depth: Some(3),
            }
        );
        // default direction is DOWN, no depth
        let stmt = parse_ok("SELECT ALL FROM RECURSIVE parts VIA composition");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert!(matches!(
            sel.from,
            FromClause::Recursive {
                dir: RecDir::Down,
                depth: None,
                ..
            }
        ));
    }

    #[test]
    fn projection_items() {
        let stmt = parse_ok("SELECT state.sname, area, edge.ALL FROM state-area-edge");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let Projection::Items(items) = sel.projection else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].attr.as_deref(), Some("sname"));
        assert_eq!(items[1].attr, None);
        assert_eq!(items[2].attr, None, "node.ALL keeps all attributes");
    }

    #[test]
    fn where_precedence_and_quantifiers() {
        let stmt = parse_ok(
            "SELECT ALL FROM state-area WHERE state.sname = 'SP' OR state.sname = 'MG' \
             AND NOT EXISTS(area: area.aid > 5)",
        );
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        // OR is the top node (AND binds tighter)
        let Some(ExprAst::Or(_, rhs)) = sel.where_clause else {
            panic!()
        };
        assert!(matches!(*rhs, ExprAst::And(_, _)));
    }

    #[test]
    fn count_and_aggregates() {
        let stmt = parse_ok(
            "SELECT ALL FROM state-area WHERE COUNT(area) >= 2 AND SUM(area.aid) < 10 \
             AND MAX(area.aid) <> 4",
        );
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn negative_literals() {
        let stmt = parse_ok("SELECT ALL FROM state-area WHERE area.aid > -5");
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let Some(ExprAst::Cmp { right, .. }) = sel.where_clause else {
            panic!()
        };
        assert_eq!(right, OperandAst::Lit(Lit::Int(-5)));
    }

    #[test]
    fn define_statement() {
        let stmt = parse_ok("DEFINE MOLECULE pn AS point-edge-(area-state,net-river)");
        assert!(matches!(stmt, Statement::Define { ref name, .. } if name == "pn"));
    }

    #[test]
    fn dml_statements() {
        assert!(matches!(
            parse_ok("INSERT ATOM state (sname = 'SP', hectare = 1000.0)"),
            Statement::InsertAtom { .. }
        ));
        assert!(matches!(
            parse_ok("CONNECT state[sname='SP'] TO area[aid=1] VIA state-area"),
            Statement::Connect { .. }
        ));
        assert!(matches!(
            parse_ok("DISCONNECT state[sname='SP'] TO area[aid=1] VIA state-area"),
            Statement::Disconnect { .. }
        ));
        assert!(matches!(
            parse_ok("DELETE ATOM state[sname='SP']"),
            Statement::DeleteAtom { .. }
        ));
        assert!(matches!(
            parse_ok("UPDATE state[sname='SP'] SET hectare = 2000.0, sname = 'SP2'"),
            Statement::Update { .. }
        ));
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT ALL").is_err());
        assert!(parse("SELECT ALL FROM").is_err());
        assert!(parse("FROM state").is_err());
        assert!(parse("SELECT ALL FROM state-").is_err());
        assert!(parse("SELECT ALL FROM state-area WHERE").is_err());
        assert!(parse("SELECT ALL FROM state-area WHERE state.sname").is_err());
        assert!(parse("SELECT ALL FROM a-(b,c) extra").is_err());
        assert!(parse("SELECT ALL FROM RECURSIVE parts VIA composition DEPTH x").is_err());
    }

    #[test]
    fn trailing_semicolon_optional() {
        assert!(parse("SELECT ALL FROM state-area").is_ok());
        assert!(parse("SELECT ALL FROM state-area;").is_ok());
    }

    #[test]
    fn prepare_execute_deallocate() {
        let stmt = parse_ok("PREPARE q1 AS SELECT ALL FROM state-area WHERE state.sname = $1");
        match &stmt {
            Statement::Prepare { name, body } => {
                assert_eq!(name, "q1");
                assert!(matches!(**body, Statement::Select(_)));
                assert_eq!(body.max_param(), 1);
            }
            other => panic!("expected Prepare, got {other:?}"),
        }
        assert_eq!(
            parse_ok("EXECUTE q1 ('SP')"),
            Statement::ExecutePrepared {
                name: "q1".into(),
                args: vec![Lit::Str("SP".into())],
            }
        );
        assert_eq!(
            parse_ok("EXECUTE q1"),
            Statement::ExecutePrepared {
                name: "q1".into(),
                args: vec![],
            }
        );
        assert_eq!(
            parse_ok("DEALLOCATE q1"),
            Statement::Deallocate {
                name: Some("q1".into())
            }
        );
        assert_eq!(parse_ok("DEALLOCATE ALL"), Statement::Deallocate { name: None });
    }

    #[test]
    fn prepare_rejects_unpreparable_bodies() {
        assert!(parse("PREPARE t AS BEGIN").is_err());
        assert!(parse("PREPARE t AS COMMIT").is_err());
        assert!(parse("PREPARE t AS CHECKPOINT").is_err());
        assert!(parse("PREPARE t AS SHOW STATS").is_err());
        assert!(parse("PREPARE t AS PREPARE u AS SELECT ALL FROM state-area").is_err());
        assert!(parse("PREPARE t AS EXECUTE u").is_err());
        assert!(parse("PREPARE t AS EXPLAIN ANALYZE SELECT ALL FROM state-area").is_err());
    }

    #[test]
    fn execute_rejects_placeholder_arguments() {
        assert!(parse("EXECUTE q1 ($1)").is_err());
    }

    #[test]
    fn params_bind_in_dml_positions() {
        let stmt = parse_ok("PREPARE u AS UPDATE state[sname=$1] SET hectare = $2");
        let Statement::Prepare { body, .. } = stmt else {
            panic!("expected Prepare");
        };
        assert_eq!(body.max_param(), 2);
        let bound = body
            .bind_params(&[Lit::Str("SP".into()), Lit::Float(9.0)])
            .unwrap();
        assert_eq!(bound.max_param(), 0);
        assert!(body.bind_params(&[Lit::Str("SP".into())]).is_err());
    }
}
