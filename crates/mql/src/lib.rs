#![forbid(unsafe_code)]

//! # mad-mql — MOL/MQL, the molecule query language (§4)
//!
//! The paper defines MQL's semantics *by translation into the molecule
//! algebra*: "the whole molecule-type definition is expressed in the FROM
//! clause", restriction is the WHERE clause, projection the SELECT clause.
//! This crate implements that pipeline end to end:
//!
//! ```text
//!   source ──lexer──▶ tokens ──parser──▶ AST ──analyze──▶
//!     (MoleculeStructure, QualExpr, projection) ──translate/exec──▶
//!        α / Σ / Π applications on mad_core::Engine ──▶ result
//! ```
//!
//! The concrete syntax follows the paper's examples:
//!
//! ```text
//! SELECT ALL FROM mt_state(state-area-edge-point);
//! SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = 'pn';
//! ```
//!
//! extended with the features the paper describes in prose: explicit link
//! names `a-[lname]-b` (needed when several link types connect two atom
//! types), traversal direction markers for reflexive link types
//! (`[composition>]` sub-component view, `[composition<]` super-component
//! view, `[composition~]` symmetric), node aliases `alias:type`,
//! quantifiers/aggregates in WHERE, recursive molecule queries
//! (`FROM RECURSIVE parts VIA composition DOWN DEPTH 3`), named molecule
//! types (`DEFINE MOLECULE name AS …`), and the manipulation statements
//! (INSERT ATOM / CONNECT / DISCONNECT / DELETE ATOM / UPDATE) that make
//! MQL "a high level query **and manipulation** language".

pub mod analyze;
pub mod ast;
pub mod exec;
pub mod format;
pub mod lexer;
pub mod parser;
pub mod session;

pub use exec::StatementResult;
pub use mad_txn::{DbHandle, Transaction};
pub use session::{split_statements, Session};

/// Parse a single MQL statement into its AST (lex + parse only).
pub fn parse(input: &str) -> mad_model::Result<ast::Statement> {
    let tokens = lexer::lex(input)?;
    parser::Parser::new(&tokens).parse_statement()
}
