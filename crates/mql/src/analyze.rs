//! Semantic analysis: resolve the syntactic AST against a database schema.
//!
//! * [`analyze_structure`] turns a [`StructureAst`] into a validated
//!   `MoleculeStructure` (Def. 5's `md_graph` enforced by the builder).
//!   Node terms with the same alias in different branches denote the *same*
//!   structure node, which is how MQL expresses DAG-shaped (diamond)
//!   structures: `r-(b-d, c-d)`.
//! * [`analyze_expr`] turns an [`ExprAst`] into a typed
//!   `mad_core::QualExpr`, resolving `alias.attr` references and validating
//!   operand types.

use crate::ast::*;
use mad_core::qual::{Operand, QualExpr};
use mad_core::structure::{MoleculeStructure, StructureBuilder};
use mad_model::{MadError, Result, Schema};
use mad_storage::database::Direction;

fn dir_of(mark: DirMark) -> Direction {
    match mark {
        DirMark::Fwd => Direction::Fwd,
        DirMark::Bwd => Direction::Bwd,
        DirMark::Sym => Direction::Sym,
    }
}

/// Flattened edge collected from the AST.
struct RawEdge {
    from: String,
    to: String,
    link: Option<LinkLabel>,
}

fn collect(
    seq: &SeqAst,
    nodes: &mut Vec<NodeTerm>,
    edges: &mut Vec<RawEdge>,
) -> Result<()> {
    // merge node terms by alias; types must agree
    match nodes.iter().find(|n| n.alias == seq.head.alias) {
        Some(existing) => {
            if existing.atom_type != seq.head.atom_type {
                return Err(MadError::Analysis {
                    detail: format!(
                        "alias `{}` bound to both `{}` and `{}`",
                        seq.head.alias, existing.atom_type, seq.head.atom_type
                    ),
                });
            }
        }
        None => nodes.push(seq.head.clone()),
    }
    for b in &seq.branches {
        // pre-order: this edge before the branch's own edges, so that the
        // analyzed structure has the same edge order as a structure built
        // top-down (render_compact → parse round-trips shape-identically)
        if nodes.iter().all(|n| n.alias != b.seq.head.alias) {
            nodes.push(b.seq.head.clone());
        }
        edges.push(RawEdge {
            from: seq.head.alias.clone(),
            to: b.seq.head.alias.clone(),
            link: b.link.clone(),
        });
        collect(&b.seq, nodes, edges)?;
    }
    Ok(())
}

/// Resolve a structure AST into a validated [`MoleculeStructure`].
pub fn analyze_structure(schema: &Schema, ast: &StructureAst) -> Result<MoleculeStructure> {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    collect(&ast.root, &mut nodes, &mut edges)?;
    let mut b = StructureBuilder::new(schema);
    for n in &nodes {
        b = b.node_as(&n.alias, &n.atom_type);
    }
    for e in &edges {
        b = match &e.link {
            None => b.edge(&e.from, &e.to),
            Some(LinkLabel { name, dir: None }) => b.edge_named(name, &e.from, &e.to),
            Some(LinkLabel {
                name,
                dir: Some(mark),
            }) => b.edge_directed(name, &e.from, &e.to, dir_of(*mark)),
        };
    }
    b.build()
}

fn resolve_node(md: &MoleculeStructure, alias: &str) -> Result<usize> {
    md.node_by_alias(alias).ok_or_else(|| MadError::Analysis {
        detail: format!("unknown node alias `{alias}` in WHERE clause"),
    })
}

fn resolve_attr(
    schema: &Schema,
    md: &MoleculeStructure,
    node: usize,
    attr: &str,
) -> Result<usize> {
    let def = schema.atom_type(md.nodes()[node].ty);
    def.attr_index(attr).ok_or_else(|| MadError::Analysis {
        detail: format!("atom type `{}` has no attribute `{attr}`", def.name),
    })
}

/// Resolve a WHERE expression into a validated [`QualExpr`].
pub fn analyze_expr(
    schema: &Schema,
    md: &MoleculeStructure,
    ast: &ExprAst,
) -> Result<QualExpr> {
    let q = analyze_expr_inner(schema, md, ast)?;
    q.validate(md, schema)?;
    Ok(q)
}

fn analyze_expr_inner(
    schema: &Schema,
    md: &MoleculeStructure,
    ast: &ExprAst,
) -> Result<QualExpr> {
    Ok(match ast {
        ExprAst::Or(a, b) => QualExpr::Or(
            Box::new(analyze_expr_inner(schema, md, a)?),
            Box::new(analyze_expr_inner(schema, md, b)?),
        ),
        ExprAst::And(a, b) => QualExpr::And(
            Box::new(analyze_expr_inner(schema, md, a)?),
            Box::new(analyze_expr_inner(schema, md, b)?),
        ),
        ExprAst::Not(a) => QualExpr::Not(Box::new(analyze_expr_inner(schema, md, a)?)),
        ExprAst::Cmp { left, op, right } => {
            let l = analyze_operand(schema, md, left)?;
            let r = analyze_operand(schema, md, right)?;
            QualExpr::Cmp {
                left: l,
                op: *op,
                right: r,
            }
        }
        ExprAst::Exists { node, expr } => QualExpr::Exists {
            node: resolve_node(md, node)?,
            pred: Box::new(analyze_expr_inner(schema, md, expr)?),
        },
        ExprAst::Forall { node, expr } => QualExpr::ForAll {
            node: resolve_node(md, node)?,
            pred: Box::new(analyze_expr_inner(schema, md, expr)?),
        },
        ExprAst::CountCmp { node, op, count } => QualExpr::CountCmp {
            node: resolve_node(md, node)?,
            op: *op,
            count: *count,
        },
        ExprAst::AggCmp {
            agg,
            node,
            attr,
            op,
            value,
        } => {
            let n = resolve_node(md, node)?;
            QualExpr::AggCmp {
                agg: *agg,
                node: n,
                attr: resolve_attr(schema, md, n, attr)?,
                op: *op,
                value: value.to_value(),
            }
        }
    })
}

fn analyze_operand(
    schema: &Schema,
    md: &MoleculeStructure,
    ast: &OperandAst,
) -> Result<Operand> {
    Ok(match ast {
        OperandAst::Lit(l) => Operand::Const(l.to_value()),
        OperandAst::Attr { node, attr } => {
            let n = resolve_node(md, node)?;
            Operand::Attr {
                node: n,
                attr: resolve_attr(schema, md, n, attr)?,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::Parser;
    use mad_model::{AttrType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("river", &[("rname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("net", &[("nid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .atom_type("point", &[("pname", AttrType::Text)])
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .link_type("river-net", "river", "net")
            .link_type("area-edge", "area", "edge")
            .link_type("net-edge", "net", "edge")
            .link_type("edge-point", "edge", "point")
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap()
    }

    fn structure_of(s: &str) -> Result<MoleculeStructure> {
        let toks = lex(s).unwrap();
        let stmt = Parser::new(&toks).parse_statement().unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let FromClause::Inline { structure, .. } = sel.from else {
            panic!()
        };
        analyze_structure(&schema(), &structure)
    }

    #[test]
    fn resolves_paper_structures() {
        let md = structure_of("SELECT ALL FROM state-area-edge-point").unwrap();
        assert_eq!(md.node_count(), 4);
        assert_eq!(md.root_node().alias, "state");
        let md =
            structure_of("SELECT ALL FROM point-edge-(area-state,net-river)").unwrap();
        assert_eq!(md.node_count(), 6);
        assert_eq!(md.edge_count(), 5);
        assert_eq!(md.root_node().alias, "point");
    }

    #[test]
    fn shared_alias_makes_diamond() {
        // edge is reached from both area and net: same alias = same node
        let md = structure_of("SELECT ALL FROM state-area-(edge,edge)");
        // duplicate edges rejected by the builder
        assert!(md.is_err());
        // a genuine diamond through two different link types
        let md = structure_of(
            "SELECT ALL FROM p:point-e:edge-(a:area-s:state, n:net-s:state)",
        );
        // area-state and net-state: no link type net-state exists → error
        assert!(md.is_err());
    }

    #[test]
    fn alias_type_conflict_detected() {
        let toks = lex("SELECT ALL FROM x:state-x:area").unwrap();
        let stmt = Parser::new(&toks).parse_statement();
        // parse succeeds; analysis must reject the alias rebinding
        let Statement::Select(sel) = stmt.unwrap() else {
            panic!()
        };
        let FromClause::Inline { structure, .. } = sel.from else {
            panic!()
        };
        let err = analyze_structure(&schema(), &structure).unwrap_err();
        assert!(err.to_string().contains("alias `x`"));
    }

    #[test]
    fn reflexive_edges_need_direction_marker() {
        assert!(structure_of("SELECT ALL FROM super:parts-[composition]-sub:parts").is_err());
        let md = structure_of(
            "SELECT ALL FROM super:parts-[composition>]-sub:parts",
        )
        .unwrap();
        assert_eq!(md.edges()[0].dir, Direction::Fwd);
        let md = structure_of(
            "SELECT ALL FROM part:parts-[composition<]-used_in:parts",
        )
        .unwrap();
        assert_eq!(md.edges()[0].dir, Direction::Bwd);
    }

    #[test]
    fn where_expression_resolution() {
        let sch = schema();
        let md = structure_of("SELECT ALL FROM state-area-edge-point").unwrap();
        let toks =
            lex("SELECT ALL FROM state-area-edge-point WHERE point.pname = 'pn' AND COUNT(edge) > 1")
                .unwrap();
        let Statement::Select(sel) = Parser::new(&toks).parse_statement().unwrap() else {
            panic!()
        };
        let q = analyze_expr(&sch, &md, &sel.where_clause.unwrap()).unwrap();
        let rendered = q.render(&md, &sch);
        assert!(rendered.contains("point.pname = 'pn'"));
        assert!(rendered.contains("COUNT(edge) > 1"));
    }

    #[test]
    fn where_errors() {
        let sch = schema();
        let md = structure_of("SELECT ALL FROM state-area").unwrap();
        let parse_where = |w: &str| {
            let toks = lex(&format!("SELECT ALL FROM state-area WHERE {w}")).unwrap();
            let Statement::Select(sel) = Parser::new(&toks).parse_statement().unwrap() else {
                panic!()
            };
            analyze_expr(&sch, &md, &sel.where_clause.unwrap())
        };
        assert!(parse_where("ghost.x = 1").is_err());
        assert!(parse_where("state.ghost = 1").is_err());
        // type error caught by validation
        assert!(parse_where("state.sname = 3").is_err());
        assert!(parse_where("SUM(state.sname) > 1").is_err());
        // fine
        assert!(parse_where("area.aid >= 2").is_ok());
    }
}
