//! The MQL abstract syntax tree.
//!
//! The AST is purely syntactic: names are unresolved strings; `analyze`
//! turns a [`StructureAst`] into a validated `mad_core::MoleculeStructure`
//! and an [`ExprAst`] into a typed `mad_core::QualExpr`.

use mad_core::qual::{AggFn, CmpOp};

/// One parsed MQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `SELECT … FROM … [WHERE …]`.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …` — show the execution plan instead of running.
    Explain(SelectStmt),
    /// `DEFINE MOLECULE name AS structure`.
    Define {
        /// The molecule-type name.
        name: String,
        /// The structure.
        structure: StructureAst,
    },
    /// `INSERT ATOM type (attr = lit, …)`.
    InsertAtom {
        /// Atom-type name.
        atom_type: String,
        /// Attribute assignments.
        values: Vec<(String, Lit)>,
    },
    /// `CONNECT sel TO sel VIA link`.
    Connect {
        /// Side-0 atom selector.
        from: AtomSelector,
        /// Side-1 atom selector.
        to: AtomSelector,
        /// Link-type name.
        link: String,
    },
    /// `DISCONNECT sel TO sel VIA link`.
    Disconnect {
        /// Side-0 atom selector.
        from: AtomSelector,
        /// Side-1 atom selector.
        to: AtomSelector,
        /// Link-type name.
        link: String,
    },
    /// `DELETE ATOM sel` (cascades incident links).
    DeleteAtom {
        /// Selector of the atom(s) to delete.
        selector: AtomSelector,
    },
    /// `UPDATE sel SET attr = lit, …`.
    Update {
        /// Selector of the atom(s) to update.
        selector: AtomSelector,
        /// Attribute assignments.
        sets: Vec<(String, Lit)>,
    },
    /// `BEGIN [TRANSACTION]` — open a snapshot-isolated transaction.
    Begin,
    /// `COMMIT` — validate and publish the open transaction.
    Commit,
    /// `ABORT` (or `ROLLBACK`) — drop the open transaction's overlay.
    Abort,
    /// `CHECKPOINT` — fold the write-ahead log into a fresh bootstrap
    /// image of the committed state (durable shared sessions only).
    Checkpoint,
    /// `SHOW STATS [subsystem] [AS JSON]` — render the deployment's
    /// metrics registry (optionally one subsystem: `txn`, `wal`, `repl`,
    /// `mql`, `net`…; `AS JSON` for the machine-readable variant).
    ShowStats {
        /// Subsystem prefix filter, when given.
        subsystem: Option<String>,
        /// Render as one JSON object instead of the text table.
        json: bool,
    },
    /// `EXPLAIN ANALYZE <stmt>` — **execute** the statement (DML
    /// included) and render its per-stage timing trace alongside the
    /// result.
    ExplainAnalyze(Box<Statement>),
}

/// `SELECT projection FROM from [WHERE expr]`.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// The SELECT clause.
    pub projection: Projection,
    /// The FROM clause (the molecule-type definition, §4).
    pub from: FromClause,
    /// The WHERE clause.
    pub where_clause: Option<ExprAst>,
}

/// The SELECT clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `SELECT ALL` — whole molecules.
    All,
    /// `SELECT item, …` — node / attribute projection.
    Items(Vec<ProjItem>),
}

/// One projection item: `node` (whole node) or `node.attr`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjItem {
    /// Node alias.
    pub node: String,
    /// Attribute name; `None` keeps all attributes of the node.
    pub attr: Option<String>,
}

/// The FROM clause.
#[derive(Clone, Debug, PartialEq)]
pub enum FromClause {
    /// A previously DEFINEd molecule-type name.
    Named(String),
    /// An inline structure, optionally naming the molecule type
    /// (`mt_state(state-area-edge-point)`).
    Inline {
        /// Optional molecule-type name.
        name: Option<String>,
        /// The structure expression.
        structure: StructureAst,
    },
    /// `RECURSIVE type VIA link [DOWN|UP|BOTH] [DEPTH n]` — a recursive
    /// molecule type (\[Schö89\]).
    Recursive {
        /// The traversed atom type.
        atom_type: String,
        /// The reflexive link type.
        link: String,
        /// Traversal direction.
        dir: RecDir,
        /// Optional depth bound.
        depth: Option<usize>,
    },
}

/// Direction keyword of a recursive FROM clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecDir {
    /// Sub-component view (side 0 → side 1), the parts explosion.
    Down,
    /// Super-component view (where-used).
    Up,
    /// Both orientations.
    Both,
}

/// A structure expression: a path with optional branching.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureAst {
    /// The root sequence.
    pub root: SeqAst,
}

/// A node followed by an optional continuation.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqAst {
    /// The head node term.
    pub head: NodeTerm,
    /// Branches hanging off the head (empty = leaf).
    pub branches: Vec<BranchAst>,
}

/// One branch: an optional link label and the sub-sequence it leads to.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchAst {
    /// Explicit link label `[lname]` / `[lname>]` / `[lname<]` / `[lname~]`.
    pub link: Option<LinkLabel>,
    /// The continuation.
    pub seq: SeqAst,
}

/// An explicit link label.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkLabel {
    /// Link-type name (may contain dashes).
    pub name: String,
    /// Direction marker for reflexive link types.
    pub dir: Option<DirMark>,
}

/// Direction marker inside a link label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirMark {
    /// `>` — side 0 → side 1.
    Fwd,
    /// `<` — side 1 → side 0.
    Bwd,
    /// `~` — symmetric.
    Sym,
}

/// A node term: `type` or `alias:type`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTerm {
    /// Node alias (defaults to the atom-type name).
    pub alias: String,
    /// Atom-type name.
    pub atom_type: String,
}

/// A WHERE expression.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprAst {
    /// Disjunction.
    Or(Box<ExprAst>, Box<ExprAst>),
    /// Conjunction.
    And(Box<ExprAst>, Box<ExprAst>),
    /// Negation.
    Not(Box<ExprAst>),
    /// Comparison.
    Cmp {
        /// Left operand.
        left: OperandAst,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: OperandAst,
    },
    /// `EXISTS(node: expr)`.
    Exists {
        /// Quantified node alias.
        node: String,
        /// Inner expression.
        expr: Box<ExprAst>,
    },
    /// `FORALL(node: expr)`.
    Forall {
        /// Quantified node alias.
        node: String,
        /// Inner expression.
        expr: Box<ExprAst>,
    },
    /// `COUNT(node) op n`.
    CountCmp {
        /// Counted node alias.
        node: String,
        /// Operator.
        op: CmpOp,
        /// Constant.
        count: i64,
    },
    /// `AGG(node.attr) op lit`.
    AggCmp {
        /// Aggregate function.
        agg: AggFn,
        /// Node alias.
        node: String,
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Lit,
    },
}

/// A comparison operand.
#[derive(Clone, Debug, PartialEq)]
pub enum OperandAst {
    /// `node.attr`.
    Attr {
        /// Node alias.
        node: String,
        /// Attribute name.
        attr: String,
    },
    /// A literal.
    Lit(Lit),
}

/// A literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum Lit {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// NULL.
    Null,
}

impl Lit {
    /// Convert into a storage value.
    pub fn to_value(&self) -> mad_model::Value {
        match self {
            Lit::Int(i) => mad_model::Value::Int(*i),
            Lit::Float(x) => mad_model::Value::Float(*x),
            Lit::Str(s) => mad_model::Value::Text(s.clone()),
            Lit::Bool(b) => mad_model::Value::Bool(*b),
            Lit::Null => mad_model::Value::Null,
        }
    }
}

/// `type[attr = lit]` — selects the atoms of `type` whose attribute equals
/// the literal (DML addressing).
#[derive(Clone, Debug, PartialEq)]
pub struct AtomSelector {
    /// Atom-type name.
    pub atom_type: String,
    /// Attribute name.
    pub attr: String,
    /// Matched literal.
    pub value: Lit,
}
