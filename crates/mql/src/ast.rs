//! The MQL abstract syntax tree.
//!
//! The AST is purely syntactic: names are unresolved strings; `analyze`
//! turns a [`StructureAst`] into a validated `mad_core::MoleculeStructure`
//! and an [`ExprAst`] into a typed `mad_core::QualExpr`.

use mad_core::qual::{AggFn, CmpOp};
use mad_model::{MadError, Result};

/// One parsed MQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `SELECT … FROM … [WHERE …]`.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …` — show the execution plan instead of running.
    Explain(SelectStmt),
    /// `DEFINE MOLECULE name AS structure`.
    Define {
        /// The molecule-type name.
        name: String,
        /// The structure.
        structure: StructureAst,
    },
    /// `INSERT ATOM type (attr = lit, …)`.
    InsertAtom {
        /// Atom-type name.
        atom_type: String,
        /// Attribute assignments.
        values: Vec<(String, Lit)>,
    },
    /// `CONNECT sel TO sel VIA link`.
    Connect {
        /// Side-0 atom selector.
        from: AtomSelector,
        /// Side-1 atom selector.
        to: AtomSelector,
        /// Link-type name.
        link: String,
    },
    /// `DISCONNECT sel TO sel VIA link`.
    Disconnect {
        /// Side-0 atom selector.
        from: AtomSelector,
        /// Side-1 atom selector.
        to: AtomSelector,
        /// Link-type name.
        link: String,
    },
    /// `DELETE ATOM sel` (cascades incident links).
    DeleteAtom {
        /// Selector of the atom(s) to delete.
        selector: AtomSelector,
    },
    /// `UPDATE sel SET attr = lit, …`.
    Update {
        /// Selector of the atom(s) to update.
        selector: AtomSelector,
        /// Attribute assignments.
        sets: Vec<(String, Lit)>,
    },
    /// `BEGIN [TRANSACTION]` — open a snapshot-isolated transaction.
    Begin,
    /// `COMMIT` — validate and publish the open transaction.
    Commit,
    /// `ABORT` (or `ROLLBACK`) — drop the open transaction's overlay.
    Abort,
    /// `CHECKPOINT` — fold the write-ahead log into a fresh bootstrap
    /// image of the committed state (durable shared sessions only).
    Checkpoint,
    /// `SHOW STATS [subsystem] [AS JSON]` — render the deployment's
    /// metrics registry (optionally one subsystem: `txn`, `wal`, `repl`,
    /// `mql`, `net`…; `AS JSON` for the machine-readable variant).
    ShowStats {
        /// Subsystem prefix filter, when given.
        subsystem: Option<String>,
        /// Render as one JSON object instead of the text table.
        json: bool,
    },
    /// `EXPLAIN ANALYZE <stmt>` — **execute** the statement (DML
    /// included) and render its per-stage timing trace alongside the
    /// result.
    ExplainAnalyze(Box<Statement>),
    /// `PREPARE name AS <stmt>` — parse (and for parameter-free SELECTs,
    /// plan) once, cache in the session under `name`. The body may use
    /// `$1`-style placeholders in literal positions.
    Prepare {
        /// The prepared-statement name.
        name: String,
        /// The prepared body.
        body: Box<Statement>,
    },
    /// `EXECUTE name [(lit, …)]` — run a prepared statement, binding the
    /// positional arguments to its `$n` placeholders.
    ExecutePrepared {
        /// The prepared-statement name.
        name: String,
        /// Positional arguments for `$1`, `$2`, ….
        args: Vec<Lit>,
    },
    /// `DEALLOCATE name` / `DEALLOCATE ALL` — drop one (or every)
    /// prepared statement from the session cache.
    Deallocate {
        /// The name to drop; `None` means `ALL`.
        name: Option<String>,
    },
}

impl Statement {
    /// The highest `$n` placeholder referenced anywhere in the statement
    /// (0 when the statement is parameter-free).
    pub fn max_param(&self) -> u32 {
        let mut max = 0u32;
        // The mapper is total when every param is "bindable"; abuse it as
        // a visitor by substituting each placeholder with Null.
        let _ = self.map_lits(&mut |lit| {
            if let Lit::Param(n) = lit {
                max = max.max(*n);
            }
            Ok(lit.clone())
        });
        max
    }

    /// Substitute `$n` placeholders with the positional `args` (1-based),
    /// returning the bound statement. Errors when a placeholder has no
    /// matching argument.
    pub fn bind_params(&self, args: &[Lit]) -> Result<Statement> {
        self.map_lits(&mut |lit| match lit {
            Lit::Param(n) => args.get(*n as usize - 1).cloned().ok_or_else(|| {
                MadError::Analysis {
                    detail: format!(
                        "no value bound for parameter ${n} ({} supplied)",
                        args.len()
                    ),
                }
            }),
            other => Ok(other.clone()),
        })
    }

    /// Rebuild the statement with `f` applied to every literal position.
    fn map_lits(&self, f: &mut impl FnMut(&Lit) -> Result<Lit>) -> Result<Statement> {
        let map_sets = |sets: &[(String, Lit)],
                        f: &mut dyn FnMut(&Lit) -> Result<Lit>|
         -> Result<Vec<(String, Lit)>> {
            sets.iter()
                .map(|(k, v)| Ok((k.clone(), f(v)?)))
                .collect()
        };
        let map_sel =
            |sel: &AtomSelector, f: &mut dyn FnMut(&Lit) -> Result<Lit>| -> Result<AtomSelector> {
                Ok(AtomSelector {
                    atom_type: sel.atom_type.clone(),
                    attr: sel.attr.clone(),
                    value: f(&sel.value)?,
                })
            };
        Ok(match self {
            Statement::Select(sel) => Statement::Select(map_select(sel, f)?),
            Statement::Explain(sel) => Statement::Explain(map_select(sel, f)?),
            Statement::InsertAtom { atom_type, values } => Statement::InsertAtom {
                atom_type: atom_type.clone(),
                values: map_sets(values, f)?,
            },
            Statement::Connect { from, to, link } => Statement::Connect {
                from: map_sel(from, f)?,
                to: map_sel(to, f)?,
                link: link.clone(),
            },
            Statement::Disconnect { from, to, link } => Statement::Disconnect {
                from: map_sel(from, f)?,
                to: map_sel(to, f)?,
                link: link.clone(),
            },
            Statement::DeleteAtom { selector } => Statement::DeleteAtom {
                selector: map_sel(selector, f)?,
            },
            Statement::Update { selector, sets } => Statement::Update {
                selector: map_sel(selector, f)?,
                sets: map_sets(sets, f)?,
            },
            Statement::ExplainAnalyze(inner) => {
                Statement::ExplainAnalyze(Box::new(inner.map_lits(f)?))
            }
            Statement::Prepare { name, body } => Statement::Prepare {
                name: name.clone(),
                body: Box::new(body.map_lits(f)?),
            },
            Statement::ExecutePrepared { name, args } => Statement::ExecutePrepared {
                name: name.clone(),
                args: args.iter().map(&mut *f).collect::<Result<Vec<_>>>()?,
            },
            other => other.clone(),
        })
    }
}

fn map_select(sel: &SelectStmt, f: &mut impl FnMut(&Lit) -> Result<Lit>) -> Result<SelectStmt> {
    Ok(SelectStmt {
        projection: sel.projection.clone(),
        from: sel.from.clone(),
        where_clause: match &sel.where_clause {
            Some(w) => Some(map_expr(w, f)?),
            None => None,
        },
    })
}

fn map_expr(e: &ExprAst, f: &mut impl FnMut(&Lit) -> Result<Lit>) -> Result<ExprAst> {
    Ok(match e {
        ExprAst::Or(a, b) => ExprAst::Or(Box::new(map_expr(a, f)?), Box::new(map_expr(b, f)?)),
        ExprAst::And(a, b) => ExprAst::And(Box::new(map_expr(a, f)?), Box::new(map_expr(b, f)?)),
        ExprAst::Not(a) => ExprAst::Not(Box::new(map_expr(a, f)?)),
        ExprAst::Cmp { left, op, right } => ExprAst::Cmp {
            left: map_operand(left, f)?,
            op: *op,
            right: map_operand(right, f)?,
        },
        ExprAst::Exists { node, expr } => ExprAst::Exists {
            node: node.clone(),
            expr: Box::new(map_expr(expr, f)?),
        },
        ExprAst::Forall { node, expr } => ExprAst::Forall {
            node: node.clone(),
            expr: Box::new(map_expr(expr, f)?),
        },
        ExprAst::CountCmp { .. } => e.clone(),
        ExprAst::AggCmp {
            agg,
            node,
            attr,
            op,
            value,
        } => ExprAst::AggCmp {
            agg: *agg,
            node: node.clone(),
            attr: attr.clone(),
            op: *op,
            value: f(value)?,
        },
    })
}

fn map_operand(o: &OperandAst, f: &mut impl FnMut(&Lit) -> Result<Lit>) -> Result<OperandAst> {
    Ok(match o {
        OperandAst::Attr { .. } => o.clone(),
        OperandAst::Lit(l) => OperandAst::Lit(f(l)?),
    })
}

/// `SELECT projection FROM from [WHERE expr]`.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// The SELECT clause.
    pub projection: Projection,
    /// The FROM clause (the molecule-type definition, §4).
    pub from: FromClause,
    /// The WHERE clause.
    pub where_clause: Option<ExprAst>,
}

/// The SELECT clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `SELECT ALL` — whole molecules.
    All,
    /// `SELECT item, …` — node / attribute projection.
    Items(Vec<ProjItem>),
}

/// One projection item: `node` (whole node) or `node.attr`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjItem {
    /// Node alias.
    pub node: String,
    /// Attribute name; `None` keeps all attributes of the node.
    pub attr: Option<String>,
}

/// The FROM clause.
#[derive(Clone, Debug, PartialEq)]
pub enum FromClause {
    /// A previously DEFINEd molecule-type name.
    Named(String),
    /// An inline structure, optionally naming the molecule type
    /// (`mt_state(state-area-edge-point)`).
    Inline {
        /// Optional molecule-type name.
        name: Option<String>,
        /// The structure expression.
        structure: StructureAst,
    },
    /// `RECURSIVE type VIA link [DOWN|UP|BOTH] [DEPTH n]` — a recursive
    /// molecule type (\[Schö89\]).
    Recursive {
        /// The traversed atom type.
        atom_type: String,
        /// The reflexive link type.
        link: String,
        /// Traversal direction.
        dir: RecDir,
        /// Optional depth bound.
        depth: Option<usize>,
    },
}

/// Direction keyword of a recursive FROM clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecDir {
    /// Sub-component view (side 0 → side 1), the parts explosion.
    Down,
    /// Super-component view (where-used).
    Up,
    /// Both orientations.
    Both,
}

/// A structure expression: a path with optional branching.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureAst {
    /// The root sequence.
    pub root: SeqAst,
}

/// A node followed by an optional continuation.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqAst {
    /// The head node term.
    pub head: NodeTerm,
    /// Branches hanging off the head (empty = leaf).
    pub branches: Vec<BranchAst>,
}

/// One branch: an optional link label and the sub-sequence it leads to.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchAst {
    /// Explicit link label `[lname]` / `[lname>]` / `[lname<]` / `[lname~]`.
    pub link: Option<LinkLabel>,
    /// The continuation.
    pub seq: SeqAst,
}

/// An explicit link label.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkLabel {
    /// Link-type name (may contain dashes).
    pub name: String,
    /// Direction marker for reflexive link types.
    pub dir: Option<DirMark>,
}

/// Direction marker inside a link label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirMark {
    /// `>` — side 0 → side 1.
    Fwd,
    /// `<` — side 1 → side 0.
    Bwd,
    /// `~` — symmetric.
    Sym,
}

/// A node term: `type` or `alias:type`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTerm {
    /// Node alias (defaults to the atom-type name).
    pub alias: String,
    /// Atom-type name.
    pub atom_type: String,
}

/// A WHERE expression.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprAst {
    /// Disjunction.
    Or(Box<ExprAst>, Box<ExprAst>),
    /// Conjunction.
    And(Box<ExprAst>, Box<ExprAst>),
    /// Negation.
    Not(Box<ExprAst>),
    /// Comparison.
    Cmp {
        /// Left operand.
        left: OperandAst,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: OperandAst,
    },
    /// `EXISTS(node: expr)`.
    Exists {
        /// Quantified node alias.
        node: String,
        /// Inner expression.
        expr: Box<ExprAst>,
    },
    /// `FORALL(node: expr)`.
    Forall {
        /// Quantified node alias.
        node: String,
        /// Inner expression.
        expr: Box<ExprAst>,
    },
    /// `COUNT(node) op n`.
    CountCmp {
        /// Counted node alias.
        node: String,
        /// Operator.
        op: CmpOp,
        /// Constant.
        count: i64,
    },
    /// `AGG(node.attr) op lit`.
    AggCmp {
        /// Aggregate function.
        agg: AggFn,
        /// Node alias.
        node: String,
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Lit,
    },
}

/// A comparison operand.
#[derive(Clone, Debug, PartialEq)]
pub enum OperandAst {
    /// `node.attr`.
    Attr {
        /// Node alias.
        node: String,
        /// Attribute name.
        attr: String,
    },
    /// A literal.
    Lit(Lit),
}

/// A literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum Lit {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// NULL.
    Null,
    /// A `$n` placeholder (1-based); only valid inside a `PREPARE` body
    /// and substituted away by [`Statement::bind_params`] before
    /// execution.
    Param(u32),
}

impl Lit {
    /// Convert into a storage value. Unbound placeholders are rejected
    /// before execution ever reaches a literal position, so `Param`
    /// degrades to NULL rather than panicking.
    pub fn to_value(&self) -> mad_model::Value {
        match self {
            Lit::Int(i) => mad_model::Value::Int(*i),
            Lit::Float(x) => mad_model::Value::Float(*x),
            Lit::Str(s) => mad_model::Value::Text(s.clone()),
            Lit::Bool(b) => mad_model::Value::Bool(*b),
            Lit::Null | Lit::Param(_) => mad_model::Value::Null,
        }
    }
}

/// `type[attr = lit]` — selects the atoms of `type` whose attribute equals
/// the literal (DML addressing).
#[derive(Clone, Debug, PartialEq)]
pub struct AtomSelector {
    /// Atom-type name.
    pub atom_type: String,
    /// Attribute name.
    pub attr: String,
    /// Matched literal.
    pub value: Lit,
}
