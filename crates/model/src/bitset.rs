//! Dense bitsets over atom slots.
//!
//! The storage engine allocates atom slots append-only and never reuses
//! them, so the slot index is a stable *dense* key for every atom of one
//! type. A [`BitSet`] indexed by slot therefore represents an atom set of
//! one atom type in `slots/8` bytes, and the ∀/∃ containment condition of
//! Def. 6 becomes word-wise `AND`/`OR` — the set-at-a-time representation
//! behind `Strategy::Bitset` in `mad-core` and the frontier expansion of
//! `mad-storage`'s CSR snapshots.
//!
//! The set keeps a **dirty word window** — the range of words that may be
//! nonzero. [`BitSet::clear`] zeroes only that window and iteration scans
//! only that window, so the per-root reset/collect cycle of the bitset
//! derivation engine costs proportional to the *molecule*, not to the
//! whole slot horizon of the atom type.
//!
//! Iteration order is ascending slot order, which coincides with the sorted
//! `Vec<AtomId>` order used everywhere else (within one atom type), so
//! bitset-derived molecules come out identical to the classic strategies.

/// A fixed-capacity dense bitset with a dirty-window fast clear.
///
/// Invariant: every nonzero word lies inside `dirty_lo..=dirty_hi`
/// (`dirty_lo > dirty_hi` means the set is known empty), and the boundary
/// words of a nonempty window are nonzero — ops that can strand zeros at
/// the edges ([`BitSet::remove`], [`BitSet::intersect_with`]) re-tighten.
#[derive(Clone, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    dirty_lo: usize,
    dirty_hi: usize,
}

impl Default for BitSet {
    /// An empty set with the canonical empty window (`lo > hi`); a derived
    /// default would claim word 0 as dirty and spoil the window invariant.
    fn default() -> Self {
        BitSet {
            words: Vec::new(),
            dirty_lo: usize::MAX,
            dirty_hi: 0,
        }
    }
}

impl BitSet {
    /// An empty set able to hold bits `0..nbits`.
    pub fn with_capacity(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            dirty_lo: usize::MAX,
            dirty_hi: 0,
        }
    }

    /// Number of representable bits (a multiple of 64).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    #[inline]
    fn mark(&mut self, word: usize) {
        if self.dirty_lo > self.dirty_hi {
            self.dirty_lo = word;
            self.dirty_hi = word;
        } else {
            self.dirty_lo = self.dirty_lo.min(word);
            self.dirty_hi = self.dirty_hi.max(word);
        }
    }

    /// The window of words that may be nonzero, as a slice bound pair.
    #[inline]
    fn window(&self) -> (usize, usize) {
        if self.dirty_lo > self.dirty_hi {
            (0, 0)
        } else {
            (self.dirty_lo, (self.dirty_hi + 1).min(self.words.len()))
        }
    }

    /// Shrink the dirty window to the outermost nonzero words. Cost is
    /// proportional to the number of zero *boundary* words only, so ops
    /// that can strand zeros at the window edges (`remove`,
    /// `intersect_with`) call this to keep later clears/iterations tight.
    fn trim(&mut self) {
        if self.dirty_lo > self.dirty_hi {
            return;
        }
        let mut lo = self.dirty_lo;
        let mut hi = self.dirty_hi.min(self.words.len().saturating_sub(1));
        while lo <= hi && self.words[lo] == 0 {
            lo += 1;
        }
        if lo > hi {
            self.dirty_lo = usize::MAX;
            self.dirty_hi = 0;
            return;
        }
        while self.words[hi] == 0 {
            hi -= 1;
        }
        self.dirty_lo = lo;
        self.dirty_hi = hi;
    }

    /// Set bit `i`. The set grows if `i` is beyond the current capacity.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
        self.mark(w);
    }

    /// Clear bit `i` (no-op when out of range). A boundary word zeroed by
    /// the removal shrinks the dirty window.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        let wi = i / 64;
        if let Some(w) = self.words.get_mut(wi) {
            *w &= !(1u64 << (i % 64));
            if *w == 0 && (wi == self.dirty_lo || wi == self.dirty_hi) {
                self.trim();
            }
        }
    }

    /// Is bit `i` set?
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Remove every bit. Only the dirty window is written, so clearing a
    /// sparse set is O(words touched since the last clear).
    pub fn clear(&mut self) {
        let (lo, hi) = self.window();
        self.words[lo..hi].fill(0);
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        let (lo, hi) = self.window();
        self.words[lo..hi].iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        let (lo, hi) = self.window();
        self.words[lo..hi]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// `self ∩= other` (word-wise AND; bits beyond `other` are cleared).
    pub fn intersect_with(&mut self, other: &BitSet) {
        // nonzero words can only survive where both windows overlap, and
        // writing zeros never violates the dirty-window invariant
        let (lo, hi) = self.window();
        let n = hi.min(other.words.len());
        for i in lo..n {
            self.words[i] &= other.words[i];
        }
        for w in &mut self.words[n.max(lo)..hi] {
            *w = 0;
        }
        // the AND can zero arbitrarily many boundary words; re-tighten so
        // the next clear/iteration does not pay for them
        self.trim();
    }

    /// `self ∪= other` (word-wise OR; grows to fit `other`).
    pub fn union_with(&mut self, other: &BitSet) {
        let (mut olo, mut ohi) = other.window();
        // skip zero boundary words of `other` so a sloppily-windowed
        // operand does not widen our window past its actual content
        while olo < ohi && other.words[olo] == 0 {
            olo += 1;
        }
        while ohi > olo && other.words[ohi - 1] == 0 {
            ohi -= 1;
        }
        if olo >= ohi {
            return;
        }
        if ohi > self.words.len() {
            self.words.resize(ohi, 0);
        }
        for i in olo..ohi {
            self.words[i] |= other.words[i];
        }
        self.mark(olo);
        self.mark(ohi - 1);
    }

    /// Do the two sets share any bit? (early-exits per word)
    pub fn intersects(&self, other: &BitSet) -> bool {
        let (lo, hi) = self.window();
        let hi = hi.min(other.words.len());
        (lo..hi).any(|i| self.words[i] & other.words[i] != 0)
    }

    /// Iterate set bits in ascending order (scans the dirty window only).
    pub fn iter(&self) -> Iter<'_> {
        let (lo, hi) = self.window();
        Iter {
            words: &self.words[..hi],
            word_idx: lo,
            current: self.words.get(lo).copied().unwrap_or(0),
        }
    }

    /// The raw words (low bit of word 0 = bit 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl PartialEq for BitSet {
    /// Logical set equality: capacity and dirty-window bookkeeping are
    /// ignored, only the set bits count.
    fn eq(&self, other: &BitSet) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for BitSet {}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

/// Ascending iterator over set bits.
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::with_capacity(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1) && !s.contains(100));
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn grows_on_demand() {
        let mut s = BitSet::default();
        s.insert(1000);
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: BitSet = [99usize, 5, 64, 0, 63].into_iter().collect();
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 99]);
    }

    #[test]
    fn intersect_clears_tail() {
        let a: BitSet = [1usize, 70, 200].into_iter().collect();
        let b: BitSet = [1usize, 70].into_iter().collect();
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(a.intersects(&b));
    }

    #[test]
    fn union_grows() {
        let mut a: BitSet = [1usize].into_iter().collect();
        let b: BitSet = [500usize].into_iter().collect();
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(500));
    }

    #[test]
    fn empty_set_behaves() {
        let s = BitSet::default();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.intersects(&s));
    }

    #[test]
    fn clear_resets_only_dirty_window_but_fully() {
        let mut s = BitSet::with_capacity(10_000);
        s.insert(5000);
        s.insert(5100);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5000) && !s.contains(5100));
        assert_eq!(s.iter().count(), 0);
        // reuse after clear behaves like a fresh set
        s.insert(1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn equality_ignores_capacity_and_window() {
        let mut a = BitSet::with_capacity(64);
        let mut b = BitSet::with_capacity(100_000);
        b.insert(90_000);
        b.clear();
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        b.insert(4);
        assert_ne!(a, b);
    }

    /// The tightened invariant the derivation engine relies on: every
    /// nonzero word lies inside the dirty window, and the boundary words of
    /// a nonempty window are themselves nonzero (no stale bounds).
    fn assert_tight(s: &BitSet, ctx: &str) {
        let nonzero: Vec<usize> = s
            .words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, _)| i)
            .collect();
        match (nonzero.first(), nonzero.last()) {
            (Some(&first), Some(&last)) => {
                assert!(
                    s.dirty_lo <= first && last <= s.dirty_hi,
                    "{ctx}: nonzero words {first}..={last} escape window \
                     {}..={}",
                    s.dirty_lo,
                    s.dirty_hi
                );
                assert_eq!(s.dirty_lo, first, "{ctx}: stale lower bound");
                assert_eq!(s.dirty_hi, last, "{ctx}: stale upper bound");
            }
            _ => assert!(
                s.dirty_lo > s.dirty_hi,
                "{ctx}: empty set keeps a nonempty window {}..={}",
                s.dirty_lo,
                s.dirty_hi
            ),
        }
    }

    #[test]
    fn remove_trims_stale_bounds() {
        let mut s: BitSet = [5usize, 300, 700].into_iter().collect();
        s.remove(700); // upper boundary word becomes zero
        assert_tight(&s, "after removing upper bound");
        s.remove(5); // lower boundary word becomes zero
        assert_tight(&s, "after removing lower bound");
        s.remove(300); // now empty
        assert_tight(&s, "after removing last bit");
        assert!(s.is_empty());
    }

    #[test]
    fn intersect_trims_stale_bounds() {
        let mut a: BitSet = [1usize, 300, 900].into_iter().collect();
        let b: BitSet = [300usize].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![300]);
        assert_tight(&a, "after intersect");
        // disjoint intersection empties the set and the window
        let c: BitSet = [40usize].into_iter().collect();
        a.intersect_with(&c);
        assert!(a.is_empty());
        assert_tight(&a, "after disjoint intersect");
    }

    #[test]
    fn union_ignores_other_stale_window() {
        // widen b's window artificially, then empty the boundary words:
        // union must not inherit the stale bounds
        let mut b: BitSet = [10usize, 2000].into_iter().collect();
        b.remove(10);
        b.remove(2000);
        b.insert(640);
        let mut a: BitSet = [600usize].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![600, 640]);
        assert_tight(&a, "after union with sloppy operand");
        // union with a fully-empty (but once-dirty) set is a no-op
        let mut empty = BitSet::with_capacity(4096);
        empty.insert(3000);
        empty.remove(3000);
        a.union_with(&empty);
        assert_tight(&a, "after union with emptied operand");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn mixed_op_sequence_keeps_window_tight() {
        let mut s = BitSet::with_capacity(4096);
        let mut other = BitSet::with_capacity(4096);
        for i in [0usize, 63, 64, 1000, 4000] {
            s.insert(i);
            assert_tight(&s, "after insert");
        }
        for i in [70usize, 1000, 4000] {
            other.insert(i);
        }
        s.intersect_with(&other);
        assert_tight(&s, "after intersect_with");
        s.remove(4000);
        assert_tight(&s, "after remove");
        s.union_with(&other);
        assert_tight(&s, "after union_with");
        s.clear();
        assert_tight(&s, "after clear");
        s.insert(2);
        assert_tight(&s, "after reuse");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn window_survives_swap_and_reuse_cycle() {
        // the derivation engine's pattern: expand into a scratch set, swap
        // it into place, clear both, repeat
        let mut scratch = BitSet::default();
        let mut slot = BitSet::with_capacity(1_000);
        scratch.insert(900);
        std::mem::swap(&mut slot, &mut scratch);
        assert!(slot.contains(900));
        scratch.clear();
        slot.clear();
        assert!(slot.is_empty() && scratch.is_empty());
        slot.insert(10);
        assert_eq!(slot.iter().collect::<Vec<_>>(), vec![10]);
    }
}
