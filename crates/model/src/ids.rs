//! Identifiers for atom types, link types and atoms.
//!
//! Def. 1 of the paper requires every atom to be *uniquely identifiable*; the
//! MAD link concept (Def. 2) then references atoms by that identity rather
//! than by foreign-key values. We realize identity as the pair
//! *(atom type, slot)*: 8 bytes, `Copy`, and cheap to hash with the Fx
//! hasher. Slots are allocated by the storage engine and never reused within
//! one database, so an `AtomId` is stable for the lifetime of its database.

use std::fmt;

/// Index of an atom type within a [`crate::Schema`] (position in `AT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomTypeId(pub u32);

/// Index of a link type within a [`crate::Schema`] (position in `LT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkTypeId(pub u32);

/// The identity of an atom: its atom type plus a slot unique within the type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId {
    /// The atom type this atom belongs to.
    pub ty: AtomTypeId,
    /// The slot within the atom-type occurrence. Never reused.
    pub slot: u32,
}

impl AtomId {
    /// Build an atom id from its parts.
    #[inline]
    pub const fn new(ty: AtomTypeId, slot: u32) -> Self {
        AtomId { ty, slot }
    }

    /// Pack into a single `u64` (useful as a compact map key or for export).
    #[inline]
    pub const fn pack(self) -> u64 {
        ((self.ty.0 as u64) << 32) | self.slot as u64
    }

    /// Inverse of [`AtomId::pack`].
    #[inline]
    pub const fn unpack(packed: u64) -> Self {
        AtomId {
            ty: AtomTypeId((packed >> 32) as u32),
            slot: packed as u32,
        }
    }
}

impl fmt::Debug for AtomTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at{}", self.0)
    }
}

impl fmt::Debug for LinkTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lt{}", self.0)
    }
}

impl fmt::Debug for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}.{}", self.ty.0, self.slot)
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An undirected link occurrence: the unsorted pair `<a1, a2>` of Def. 2.
///
/// The pair is stored in normalized order (smaller id first) so that value
/// equality coincides with the unordered-pair equality of the formalism.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkPair {
    lo: AtomId,
    hi: AtomId,
}

impl LinkPair {
    /// Normalize `(a, b)` into an unordered pair.
    #[inline]
    pub fn new(a: AtomId, b: AtomId) -> Self {
        if a <= b {
            LinkPair { lo: a, hi: b }
        } else {
            LinkPair { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn lo(self) -> AtomId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub fn hi(self) -> AtomId {
        self.hi
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub fn endpoints(self) -> (AtomId, AtomId) {
        (self.lo, self.hi)
    }

    /// Given one endpoint, return the other; `None` if `a` is not part of the
    /// pair. A reflexive self-link `(a, a)` partners with itself.
    #[inline]
    pub fn partner_of(self, a: AtomId) -> Option<AtomId> {
        if a == self.lo {
            Some(self.hi)
        } else if a == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Debug for LinkPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:?},{:?}>", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let id = AtomId::new(AtomTypeId(7), 123_456);
        assert_eq!(AtomId::unpack(id.pack()), id);
    }

    #[test]
    fn pack_roundtrip_extremes() {
        for id in [
            AtomId::new(AtomTypeId(0), 0),
            AtomId::new(AtomTypeId(u32::MAX), u32::MAX),
            AtomId::new(AtomTypeId(0), u32::MAX),
            AtomId::new(AtomTypeId(u32::MAX), 0),
        ] {
            assert_eq!(AtomId::unpack(id.pack()), id);
        }
    }

    #[test]
    fn link_pair_is_unordered() {
        let a = AtomId::new(AtomTypeId(1), 5);
        let b = AtomId::new(AtomTypeId(2), 3);
        assert_eq!(LinkPair::new(a, b), LinkPair::new(b, a));
    }

    #[test]
    fn link_pair_partner() {
        let a = AtomId::new(AtomTypeId(1), 5);
        let b = AtomId::new(AtomTypeId(2), 3);
        let c = AtomId::new(AtomTypeId(2), 4);
        let l = LinkPair::new(a, b);
        assert_eq!(l.partner_of(a), Some(b));
        assert_eq!(l.partner_of(b), Some(a));
        assert_eq!(l.partner_of(c), None);
    }

    #[test]
    fn reflexive_self_link() {
        let a = AtomId::new(AtomTypeId(1), 5);
        let l = LinkPair::new(a, a);
        assert_eq!(l.partner_of(a), Some(a));
        assert_eq!(l.endpoints(), (a, a));
    }

    #[test]
    fn atom_id_ordering_is_type_major() {
        let a = AtomId::new(AtomTypeId(1), 100);
        let b = AtomId::new(AtomTypeId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn debug_formats() {
        let id = AtomId::new(AtomTypeId(3), 9);
        assert_eq!(format!("{id:?}"), "a3.9");
        assert_eq!(format!("{:?}", AtomTypeId(3)), "at3");
        assert_eq!(format!("{:?}", LinkTypeId(4)), "lt4");
    }
}
