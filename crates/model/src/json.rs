//! A small self-contained JSON tree, parser and printer.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so — following
//! the precedent of [`crate::fxhash`] — the ~300 lines of JSON handling the
//! snapshot machinery needs are inlined here. [`ToJson`]/[`FromJson`] play
//! the role of `Serialize`/`Deserialize`; the concrete wire format is ours
//! to choose, and only needs to round-trip through this module itself.
//!
//! Conventions (mirroring serde's externally-tagged default closely enough
//! that snapshots stay human-readable):
//!
//! * structs → objects keyed by field name,
//! * dataless enum variants → the variant name as a string,
//! * data-carrying variants → a single-key object `{"Variant": payload}`,
//! * `Option` → `null` or the payload,
//! * integers and floats are kept apart ([`Json::Int`] vs [`Json::Float`])
//!   so `i64` attribute values survive with full precision.

use crate::error::{MadError, Result};
use crate::ids::{AtomId, AtomTypeId, LinkPair, LinkTypeId};
use crate::types::{AtomTypeDef, AttrDef, Cardinality, LinkTypeDef};
use crate::value::{AttrType, Value};
use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part, kept at full 64-bit precision.
    Int(i64),
    /// A fractional number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

fn err(detail: impl Into<String>) -> MadError {
    MadError::Snapshot {
        detail: detail.into(),
    }
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Result<&Json> {
        match self {
            Json::Obj(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| err(format!("missing object key `{key}`"))),
            _ => Err(err(format!("expected object with key `{key}`"))),
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(err("expected array")),
        }
    }

    /// Render compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // always keep a fractional marker so the parser reads a
                    // Float back — Display omits it for every integral float
                    // (900, 1e19, …)
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no non-finite literals; encode as strings
                    let _ = write!(out, "\"{x}\"");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(err(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| err("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(err(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(err(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    members.push((key, v));
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(err(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(err("invalid escape")),
                    }
                }
                _ => {
                    // consume the full UTF-8 sequence starting at b
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("invalid number"))?;
        if text.is_empty() {
            return Err(err(format!("expected a value at byte {start}")));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| err(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| err(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] tree (the shim's `Serialize`).
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] tree (the shim's `Deserialize`).
pub trait FromJson: Sized {
    /// Reconstruct a value, validating the shape.
    fn from_json(v: &Json) -> Result<Self>;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(err("expected bool")),
        }
    }
}

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i).map_err(|_| err("integer out of range")),
                    _ => Err(err("expected integer")),
                }
            }
        }
    )*};
}
json_int!(i64, u64, u32, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64> {
        match v {
            Json::Float(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::Str(s) => s.parse().map_err(|_| err("expected number")),
            _ => Err(err("expected number")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(err("expected string")),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<(A, B)> {
        match v.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(err("expected 2-element array")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<(A, B, C)> {
        match v.as_arr()? {
            [a, b, c] => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(err("expected 3-element array")),
        }
    }
}

// ---------------------------------------------------------------------------
// Model types
// ---------------------------------------------------------------------------

impl ToJson for AtomTypeId {
    fn to_json(&self) -> Json {
        Json::Int(self.0 as i64)
    }
}

impl FromJson for AtomTypeId {
    fn from_json(v: &Json) -> Result<AtomTypeId> {
        u32::from_json(v).map(AtomTypeId)
    }
}

impl ToJson for LinkTypeId {
    fn to_json(&self) -> Json {
        Json::Int(self.0 as i64)
    }
}

impl FromJson for LinkTypeId {
    fn from_json(v: &Json) -> Result<LinkTypeId> {
        u32::from_json(v).map(LinkTypeId)
    }
}

impl ToJson for AtomId {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.ty.to_json(), Json::Int(self.slot as i64)])
    }
}

impl FromJson for AtomId {
    fn from_json(v: &Json) -> Result<AtomId> {
        let (ty, slot): (AtomTypeId, u32) = FromJson::from_json(v)?;
        Ok(AtomId::new(ty, slot))
    }
}

impl ToJson for LinkPair {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.lo().to_json(), self.hi().to_json()])
    }
}

impl FromJson for LinkPair {
    fn from_json(v: &Json) -> Result<LinkPair> {
        let (a, b): (AtomId, AtomId) = FromJson::from_json(v)?;
        Ok(LinkPair::new(a, b))
    }
}

impl ToJson for AttrType {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_owned())
    }
}

impl FromJson for AttrType {
    fn from_json(v: &Json) -> Result<AttrType> {
        match v {
            Json::Str(s) => match s.as_str() {
                "BOOL" => Ok(AttrType::Bool),
                "INT" => Ok(AttrType::Int),
                "FLOAT" => Ok(AttrType::Float),
                "TEXT" => Ok(AttrType::Text),
                "ID" => Ok(AttrType::Id),
                other => Err(err(format!("unknown attribute domain `{other}`"))),
            },
            _ => Err(err("expected attribute domain string")),
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Null => Json::Null,
            Value::Bool(b) => Json::Obj(vec![("Bool".into(), Json::Bool(*b))]),
            Value::Int(i) => Json::Obj(vec![("Int".into(), Json::Int(*i))]),
            Value::Float(x) => Json::Obj(vec![("Float".into(), Json::Float(*x))]),
            Value::Text(s) => Json::Obj(vec![("Text".into(), Json::Str(s.clone()))]),
            Value::Id(id) => Json::Obj(vec![("Id".into(), id.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(v: &Json) -> Result<Value> {
        match v {
            Json::Null => Ok(Value::Null),
            Json::Obj(members) => match members.as_slice() {
                [(tag, payload)] => match tag.as_str() {
                    "Bool" => bool::from_json(payload).map(Value::Bool),
                    "Int" => i64::from_json(payload).map(Value::Int),
                    "Float" => f64::from_json(payload).map(Value::Float),
                    "Text" => String::from_json(payload).map(Value::Text),
                    "Id" => AtomId::from_json(payload).map(Value::Id),
                    other => Err(err(format!("unknown value tag `{other}`"))),
                },
                _ => Err(err("expected single-key value object")),
            },
            _ => Err(err("expected attribute value")),
        }
    }
}

impl ToJson for AttrDef {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("ty".into(), self.ty.to_json()),
        ])
    }
}

impl FromJson for AttrDef {
    fn from_json(v: &Json) -> Result<AttrDef> {
        Ok(AttrDef {
            name: String::from_json(v.get("name")?)?,
            ty: AttrType::from_json(v.get("ty")?)?,
        })
    }
}

impl ToJson for AtomTypeDef {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("attrs".into(), self.attrs.to_json()),
            ("derived_from".into(), self.derived_from.to_json()),
        ])
    }
}

impl FromJson for AtomTypeDef {
    fn from_json(v: &Json) -> Result<AtomTypeDef> {
        Ok(AtomTypeDef {
            name: String::from_json(v.get("name")?)?,
            attrs: Vec::from_json(v.get("attrs")?)?,
            derived_from: Option::from_json(v.get("derived_from")?)?,
        })
    }
}

impl ToJson for Cardinality {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("min".into(), self.min.to_json()),
            ("max".into(), self.max.to_json()),
        ])
    }
}

impl FromJson for Cardinality {
    fn from_json(v: &Json) -> Result<Cardinality> {
        Ok(Cardinality {
            min: u32::from_json(v.get("min")?)?,
            max: Option::from_json(v.get("max")?)?,
        })
    }
}

impl ToJson for LinkTypeDef {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("ends".into(), Json::Arr(self.ends.iter().map(ToJson::to_json).collect())),
            ("cards".into(), Json::Arr(self.cards.iter().map(ToJson::to_json).collect())),
            ("derived_from".into(), self.derived_from.to_json()),
        ])
    }
}

impl FromJson for LinkTypeDef {
    fn from_json(v: &Json) -> Result<LinkTypeDef> {
        let ends: Vec<AtomTypeId> = Vec::from_json(v.get("ends")?)?;
        let cards: Vec<Cardinality> = Vec::from_json(v.get("cards")?)?;
        let (ends, cards) = match (ends.as_slice(), cards.as_slice()) {
            ([a, b], [ca, cb]) => ([*a, *b], [*ca, *cb]),
            _ => return Err(err("link type needs exactly two ends and cards")),
        };
        Ok(LinkTypeDef {
            name: String::from_json(v.get("name")?)?,
            ends,
            cards,
            derived_from: Option::from_json(v.get("derived_from")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(1.5),
            Json::Str("hé \"quoted\"\n".into()),
        ] {
            let text = v.render();
            assert_eq!(Json::parse(&text).unwrap(), v, "compact: {text}");
            let pretty = v.render_pretty();
            assert_eq!(Json::parse(&pretty).unwrap(), v, "pretty: {pretty}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Float(2.5)])),
            ("b".into(), Json::Obj(vec![("c".into(), Json::Null)])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        // whole-number floats must come back as Floats, not Ints — including
        // magnitudes whose Display output has no fractional marker at all
        for x in [900.0, 1e15, 1e19, -3e22, f64::MAX] {
            let v = Json::Float(x);
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "x = {x}");
        }
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Int(7),
            Value::Float(1.25),
            Value::Text("SP".into()),
            Value::Id(AtomId::new(AtomTypeId(3), 9)),
        ] {
            let j = v.to_json();
            let back = Value::from_json(&Json::parse(&j.render()).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
