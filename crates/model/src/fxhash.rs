//! A small, fast, non-cryptographic hasher (the Fx algorithm used by rustc).
//!
//! Hashing is hot in molecule derivation (adjacency lookups keyed by
//! [`crate::AtomId`] happen once per traversed link). The default SipHash 1-3
//! is robust against HashDoS but slow for 8-byte integer keys; the Rust
//! performance guide recommends an Fx-style hasher for exactly this workload.
//! Rather than pulling in a crate outside the allowed dependency set, the ~40
//! lines of the algorithm are inlined here.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state: multiply-rotate over native words.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_tail_is_length_sensitive() {
        // A trailing partial word must not collide with the same bytes padded
        // by zeros (the `^ len` term guards against that).
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1, 0]);
        b.write(&[1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"x"));
    }
}
