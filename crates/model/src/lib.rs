#![forbid(unsafe_code)]

//! # mad-model — the MAD data model kernel
//!
//! This crate defines the *static* side of the molecule-atom data model (MAD)
//! from Mitschang, *Extending the Relational Algebra to Capture Complex
//! Objects*, VLDB 1989:
//!
//! * [`Value`] / [`AttrType`] — attribute values and their domains,
//! * [`AttrDef`] — attribute descriptions,
//! * [`AtomTypeDef`] — atom-type descriptions (Def. 1: the pair
//!   `<aname, ad>`; occurrences live in `mad-storage`),
//! * [`LinkTypeDef`] — link-type descriptions (Def. 2: `<lname, {a1, a2}>`),
//!   including the *extended* link-type definition with cardinality
//!   restrictions the paper mentions in §3.1,
//! * [`Schema`] — the database schema `<AT, LT>` of Def. 3,
//! * [`MadError`] — the error domain shared by all crates.
//!
//! The correspondence to the relational model is exactly Fig. 3 of the paper:
//! attribute ↔ attribute, relation schema ↔ atom-type description, tuple ↔
//! atom, relation ↔ atom type, plus the concepts that have *no* relational
//! counterpart: link, link-type description, link-type occurrence, link type.

pub mod bin;
pub mod bitset;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod json;
pub mod schema;
pub mod types;
pub mod value;

pub use bitset::BitSet;
pub use error::{MadError, Result};
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{AtomId, AtomTypeId, LinkPair, LinkTypeId};
pub use schema::{attrs, Schema, SchemaBuilder};
pub use types::{AtomTypeDef, AttrDef, Cardinality, LinkTypeDef};
pub use value::{AttrType, Value};
