//! The database schema `<AT, LT>` of Def. 3.
//!
//! A [`Schema`] owns the atom-type and link-type descriptions and provides
//! the name-resolution functions of the formalism: `atyp(aname)` is
//! [`Schema::atom_type_id`], `nam(at)` is [`Schema::atom_type`] + field
//! access, and the auxiliary `ltyp` used by Def. 6 is
//! [`Schema::link_type_id`].
//!
//! The schema is *growable*: every atom-type operation and every propagation
//! (`prop`, Def. 9) adds derived types, which is how the algebra's closure
//! over the database domain DB* is realized. Base types (declared by the
//! user) and derived types are distinguished by their `derived_from`
//! provenance.

use crate::error::{MadError, Result};
use crate::fxhash::FxHashMap;
use crate::ids::{AtomTypeId, LinkTypeId};
use crate::types::{AtomTypeDef, Cardinality, LinkTypeDef};
use crate::value::AttrType;
use crate::json::{FromJson, Json, ToJson};
use crate::AttrDef;
use std::fmt;

/// The schema part of a database: atom types `AT` and link types `LT`.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    atom_types: Vec<AtomTypeDef>,
    link_types: Vec<LinkTypeDef>,
    atom_by_name: FxHashMap<String, AtomTypeId>,
    link_by_name: FxHashMap<String, LinkTypeId>,
    /// For each atom type, the link types touching it (the basis of link-type
    /// inheritance and of symmetric navigation). Derived; rebuilt after
    /// deserialization rather than serialized.
    links_of_atom: Vec<Vec<LinkTypeId>>,
}

impl ToJson for Schema {
    fn to_json(&self) -> Json {
        // the lookup maps are derived state: only the two type lists travel
        Json::Obj(vec![
            ("atom_types".into(), self.atom_types.to_json()),
            ("link_types".into(), self.link_types.to_json()),
        ])
    }
}

impl FromJson for Schema {
    fn from_json(v: &Json) -> Result<Self> {
        let mut schema = Schema {
            atom_types: Vec::from_json(v.get("atom_types")?)?,
            link_types: Vec::from_json(v.get("link_types")?)?,
            ..Schema::default()
        };
        schema.rebuild_indexes();
        Ok(schema)
    }
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Rebuild the derived lookup maps (after deserialization).
    pub fn rebuild_indexes(&mut self) {
        self.atom_by_name = self
            .atom_types
            .iter()
            .enumerate()
            .map(|(i, at)| (at.name.clone(), AtomTypeId(i as u32)))
            .collect();
        self.link_by_name = self
            .link_types
            .iter()
            .enumerate()
            .map(|(i, lt)| (lt.name.clone(), LinkTypeId(i as u32)))
            .collect();
        self.links_of_atom = vec![Vec::new(); self.atom_types.len()];
        for (i, lt) in self.link_types.iter().enumerate() {
            let id = LinkTypeId(i as u32);
            self.links_of_atom[lt.ends[0].0 as usize].push(id);
            if lt.ends[0] != lt.ends[1] {
                self.links_of_atom[lt.ends[1].0 as usize].push(id);
            }
        }
    }

    /// Add an atom-type description; the name must be fresh.
    pub fn add_atom_type(&mut self, def: AtomTypeDef) -> Result<AtomTypeId> {
        if self.atom_by_name.contains_key(&def.name) {
            return Err(MadError::duplicate("atom type", &def.name));
        }
        let mut seen: Vec<&str> = Vec::with_capacity(def.attrs.len());
        for a in &def.attrs {
            if seen.contains(&a.name.as_str()) {
                return Err(MadError::duplicate("attribute", &a.name));
            }
            seen.push(&a.name);
        }
        let id = AtomTypeId(self.atom_types.len() as u32);
        self.atom_by_name.insert(def.name.clone(), id);
        self.atom_types.push(def);
        self.links_of_atom.push(Vec::new());
        Ok(id)
    }

    /// Add a link-type description; the name must be fresh and both endpoint
    /// atom types must exist.
    pub fn add_link_type(&mut self, def: LinkTypeDef) -> Result<LinkTypeId> {
        if self.link_by_name.contains_key(&def.name) {
            return Err(MadError::duplicate("link type", &def.name));
        }
        for end in def.ends {
            if end.0 as usize >= self.atom_types.len() {
                return Err(MadError::unknown("atom type id", format!("{end:?}")));
            }
        }
        let id = LinkTypeId(self.link_types.len() as u32);
        self.link_by_name.insert(def.name.clone(), id);
        self.links_of_atom[def.ends[0].0 as usize].push(id);
        if def.ends[0] != def.ends[1] {
            self.links_of_atom[def.ends[1].0 as usize].push(id);
        }
        self.link_types.push(def);
        Ok(id)
    }

    /// `atyp(aname)`: resolve an atom-type name.
    pub fn atom_type_id(&self, name: &str) -> Result<AtomTypeId> {
        self.atom_by_name
            .get(name)
            .copied()
            .ok_or_else(|| MadError::unknown("atom type", name))
    }

    /// `ltyp(lname)`: resolve a link-type name.
    pub fn link_type_id(&self, name: &str) -> Result<LinkTypeId> {
        self.link_by_name
            .get(name)
            .copied()
            .ok_or_else(|| MadError::unknown("link type", name))
    }

    /// The description of atom type `id`.
    pub fn atom_type(&self, id: AtomTypeId) -> &AtomTypeDef {
        &self.atom_types[id.0 as usize]
    }

    /// The description of link type `id`.
    pub fn link_type(&self, id: LinkTypeId) -> &LinkTypeDef {
        &self.link_types[id.0 as usize]
    }

    /// All atom types with their ids.
    pub fn atom_types(&self) -> impl Iterator<Item = (AtomTypeId, &AtomTypeDef)> {
        self.atom_types
            .iter()
            .enumerate()
            .map(|(i, d)| (AtomTypeId(i as u32), d))
    }

    /// All link types with their ids.
    pub fn link_types(&self) -> impl Iterator<Item = (LinkTypeId, &LinkTypeDef)> {
        self.link_types
            .iter()
            .enumerate()
            .map(|(i, d)| (LinkTypeId(i as u32), d))
    }

    /// Link types touching atom type `ty` (incident edges of the schema
    /// graph — the "nondirectional graph" of §2).
    pub fn link_types_of(&self, ty: AtomTypeId) -> &[LinkTypeId] {
        &self.links_of_atom[ty.0 as usize]
    }

    /// Link types connecting `a` and `b` (in either orientation). Several
    /// may exist — Def. 2 explicitly allows this.
    pub fn link_types_between(&self, a: AtomTypeId, b: AtomTypeId) -> Vec<LinkTypeId> {
        self.links_of_atom[a.0 as usize]
            .iter()
            .copied()
            .filter(|&lt| {
                let d = self.link_type(lt);
                (d.ends[0] == a && d.ends[1] == b) || (d.ends[0] == b && d.ends[1] == a)
            })
            .collect()
    }

    /// Number of atom types.
    pub fn atom_type_count(&self) -> usize {
        self.atom_types.len()
    }

    /// Number of link types.
    pub fn link_type_count(&self) -> usize {
        self.link_types.len()
    }

    /// Generate a fresh name with the given prefix (an element of the naming
    /// set `N` not yet used). Used by the algebra operators, which must give
    /// every result type a new name.
    pub fn fresh_atom_type_name(&self, prefix: &str) -> String {
        if !self.atom_by_name.contains_key(prefix) {
            return prefix.to_owned();
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{prefix}#{i}");
            if !self.atom_by_name.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Generate a fresh link-type name with the given prefix.
    pub fn fresh_link_type_name(&self, prefix: &str) -> String {
        if !self.link_by_name.contains_key(prefix) {
            return prefix.to_owned();
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{prefix}#{i}");
            if !self.link_by_name.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Render the schema in the style of Fig. 4 (the "database definition"
    /// part, without occurrences).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("atom types\n");
        for (_, at) in self.atom_types() {
            out.push_str("  ");
            out.push_str(&at.to_string());
            if let Some(src) = &at.derived_from {
                out.push_str(&format!("   -- derived: {src}"));
            }
            out.push('\n');
        }
        out.push_str("link types\n");
        for (_, lt) in self.link_types() {
            let a = &self.atom_type(lt.ends[0]).name;
            let b = &self.atom_type(lt.ends[1]).name;
            out.push_str(&format!(
                "  {} = <{}, {{{}, {}}}> {} {}",
                lt.name, lt.name, a, b, lt.cards[0], lt.cards[1]
            ));
            if let Some(src) = &lt.derived_from {
                out.push_str(&format!("   -- derived: {src}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Fluent builder for schemas, used by fixtures and tests.
///
/// ```
/// use mad_model::{SchemaBuilder, AttrType, Cardinality};
/// let schema = SchemaBuilder::new()
///     .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
///     .atom_type("area", &[("aname", AttrType::Text)])
///     .link_type("state-area", "state", "area")
///     .build()
///     .unwrap();
/// assert_eq!(schema.atom_type_count(), 2);
/// ```
#[derive(Default)]
pub struct SchemaBuilder {
    atoms: Vec<AtomTypeDef>,
    links: Vec<(String, String, String, Cardinality, Cardinality)>,
}

impl SchemaBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Declare an atom type with `(attr name, attr type)` pairs.
    pub fn atom_type(mut self, name: &str, attrs: &[(&str, AttrType)]) -> Self {
        self.atoms.push(AtomTypeDef::new(
            name,
            attrs
                .iter()
                .map(|(n, t)| AttrDef::new(*n, *t))
                .collect(),
        ));
        self
    }

    /// Declare an unrestricted (n:m) link type between two named atom types.
    pub fn link_type(self, name: &str, a: &str, b: &str) -> Self {
        self.link_type_card(name, a, Cardinality::MANY, b, Cardinality::MANY)
    }

    /// Declare a link type with explicit per-side cardinalities.
    pub fn link_type_card(
        mut self,
        name: &str,
        a: &str,
        ca: Cardinality,
        b: &str,
        cb: Cardinality,
    ) -> Self {
        self.links
            .push((name.to_owned(), a.to_owned(), b.to_owned(), ca, cb));
        self
    }

    /// Resolve names and produce the [`Schema`].
    pub fn build(self) -> Result<Schema> {
        let mut schema = Schema::new();
        for at in self.atoms {
            schema.add_atom_type(at)?;
        }
        for (name, a, b, ca, cb) in self.links {
            let a = schema.atom_type_id(&a)?;
            let b = schema.atom_type_id(&b)?;
            schema.add_link_type(LinkTypeDef::with_cards(name, a, ca, b, cb))?;
        }
        Ok(schema)
    }
}

/// Helper: attribute list construction from `(name, type)` pairs.
pub fn attrs(pairs: &[(&str, AttrType)]) -> Vec<AttrDef> {
    pairs.iter().map(|(n, t)| AttrDef::new(*n, *t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo_schema() -> Schema {
        SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("hectare", AttrType::Float)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .atom_type("edge", &[("eid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .link_type("area-edge", "area", "edge")
            .build()
            .unwrap()
    }

    #[test]
    fn resolves_names() {
        let s = geo_schema();
        let state = s.atom_type_id("state").unwrap();
        assert_eq!(s.atom_type(state).name, "state");
        let sa = s.link_type_id("state-area").unwrap();
        assert_eq!(s.link_type(sa).ends[0], state);
    }

    #[test]
    fn unknown_names_error() {
        let s = geo_schema();
        assert!(s.atom_type_id("city").is_err());
        assert!(s.link_type_id("city-state").is_err());
    }

    #[test]
    fn duplicate_atom_type_rejected() {
        let mut s = geo_schema();
        let err = s
            .add_atom_type(AtomTypeDef::new("state", vec![]))
            .unwrap_err();
        assert!(matches!(err, MadError::DuplicateName { .. }));
    }

    #[test]
    fn duplicate_attr_rejected() {
        let mut s = Schema::new();
        let err = s
            .add_atom_type(AtomTypeDef::new(
                "x",
                vec![
                    AttrDef::new("a", AttrType::Int),
                    AttrDef::new("a", AttrType::Text),
                ],
            ))
            .unwrap_err();
        assert!(matches!(err, MadError::DuplicateName { .. }));
    }

    #[test]
    fn duplicate_link_type_rejected() {
        let mut s = geo_schema();
        let a = s.atom_type_id("state").unwrap();
        let b = s.atom_type_id("area").unwrap();
        let err = s
            .add_link_type(LinkTypeDef::new("state-area", a, b))
            .unwrap_err();
        assert!(matches!(err, MadError::DuplicateName { .. }));
    }

    #[test]
    fn link_type_unknown_endpoint_rejected() {
        let mut s = Schema::new();
        let err = s
            .add_link_type(LinkTypeDef::new("x", AtomTypeId(0), AtomTypeId(1)))
            .unwrap_err();
        assert!(matches!(err, MadError::UnknownName { .. }));
    }

    #[test]
    fn incident_link_types() {
        let s = geo_schema();
        let area = s.atom_type_id("area").unwrap();
        let names: Vec<&str> = s
            .link_types_of(area)
            .iter()
            .map(|&lt| s.link_type(lt).name.as_str())
            .collect();
        assert_eq!(names, vec!["state-area", "area-edge"]);
    }

    #[test]
    fn link_types_between_both_orientations() {
        let s = geo_schema();
        let state = s.atom_type_id("state").unwrap();
        let area = s.atom_type_id("area").unwrap();
        assert_eq!(s.link_types_between(state, area).len(), 1);
        assert_eq!(s.link_types_between(area, state).len(), 1);
        let edge = s.atom_type_id("edge").unwrap();
        assert_eq!(s.link_types_between(state, edge).len(), 0);
    }

    #[test]
    fn multiple_link_types_between_same_pair() {
        let s = SchemaBuilder::new()
            .atom_type("a", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .link_type("l1", "a", "b")
            .link_type("l2", "a", "b")
            .build()
            .unwrap();
        let a = s.atom_type_id("a").unwrap();
        let b = s.atom_type_id("b").unwrap();
        assert_eq!(s.link_types_between(a, b).len(), 2);
    }

    #[test]
    fn reflexive_link_type_registered_once_per_atom() {
        let s = SchemaBuilder::new()
            .atom_type("parts", &[("pid", AttrType::Int)])
            .link_type("composition", "parts", "parts")
            .build()
            .unwrap();
        let parts = s.atom_type_id("parts").unwrap();
        assert_eq!(s.link_types_of(parts).len(), 1);
        assert!(s.link_type(s.link_type_id("composition").unwrap()).is_reflexive());
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let s = geo_schema();
        assert_eq!(s.fresh_atom_type_name("border"), "border");
        assert_eq!(s.fresh_atom_type_name("state"), "state#1");
        assert_eq!(s.fresh_link_type_name("state-area"), "state-area#1");
    }

    #[test]
    fn render_mentions_all_types() {
        let s = geo_schema();
        let r = s.render();
        for name in ["state", "area", "edge", "state-area", "area-edge"] {
            assert!(r.contains(name), "missing {name} in:\n{r}");
        }
    }

    #[test]
    fn rebuild_indexes_after_clear() {
        let mut s = geo_schema();
        // Simulate a deserialized schema: wipe the skip-serialized maps.
        s.atom_by_name.clear();
        s.link_by_name.clear();
        s.links_of_atom.clear();
        s.rebuild_indexes();
        assert!(s.atom_type_id("state").is_ok());
        assert_eq!(s.link_types_of(s.atom_type_id("area").unwrap()).len(), 2);
    }
}
