//! The shared error domain of the MAD reproduction.
//!
//! Every crate in the workspace reports failures through [`MadError`] so that
//! integration code (the MQL session, the benchmark harness, the examples)
//! deals with a single error type.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = MadError> = std::result::Result<T, E>;

/// All error conditions raised by the MAD model, its storage engine, the
/// algebras and MQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MadError {
    /// A name (atom type, link type, attribute, molecule type, …) was not
    /// found where the formalism requires it to exist.
    UnknownName { kind: &'static str, name: String },
    /// A name is already taken; the sets AT*/LT* require unique names.
    DuplicateName { kind: &'static str, name: String },
    /// An attribute value does not belong to the attribute's domain.
    TypeMismatch {
        context: String,
        expected: String,
        found: String,
    },
    /// A tuple has the wrong arity for its atom-type description.
    ArityMismatch {
        context: String,
        expected: usize,
        found: usize,
    },
    /// Referential integrity would be violated: a link references a
    /// non-existing atom, or an atom id is stale (deleted / wrong type).
    IntegrityViolation { detail: String },
    /// A cardinality restriction of an extended link-type definition would be
    /// violated (§3.1: "it is even possible to control cardinality
    /// restrictions specified in an extended link-type definition").
    CardinalityViolation { link_type: String, detail: String },
    /// A molecule-type description failed the `md_graph` predicate of Def. 5:
    /// it must be a directed, acyclic, coherent graph with exactly one root.
    InvalidStructure { detail: String },
    /// An algebra operator was applied to incompatible operands (e.g. ω/δ on
    /// different descriptions, Def. 4; Ω/Δ on non-isomorphic structures).
    IncompatibleOperands { op: &'static str, detail: String },
    /// A qualification formula is ill-formed with respect to the description
    /// it restricts (`restr(ad)` must be an element of `qual-formulas(ad)`).
    InvalidQualification { detail: String },
    /// MQL lexing/parsing failure, with a 1-based character offset.
    Parse { offset: usize, detail: String },
    /// MQL semantic analysis failure (name resolution, ambiguity, typing).
    Analysis { detail: String },
    /// Snapshot (de)serialization failure.
    Snapshot { detail: String },
    /// Binary codec failure: truncated, malformed or unknown-tag input (the
    /// WAL recovery path feeds untrusted torn tails through the decoder, so
    /// this must surface as an error, never a panic).
    Codec { detail: String },
    /// Write-ahead-log failure: an I/O error on the log file, a corrupt
    /// record beyond the recoverable torn tail, or a recovery replay that
    /// diverged from the logged commit.
    Wal { detail: String },
    /// Recursion-specific failure (depth bound exceeded while a finite
    /// unfolding was required).
    Recursion { detail: String },
    /// A transaction failed first-committer-wins validation: another
    /// transaction committed an overlapping write since this one's begin
    /// snapshot. The transaction is aborted; retrying against a fresh
    /// snapshot is the standard response.
    TxnConflict { detail: String },
    /// A transaction-control operation in an invalid state (BEGIN inside an
    /// open transaction, COMMIT/ABORT without one).
    TxnState { detail: String },
    /// A statement inside a multi-statement script failed; wraps the
    /// underlying error with the 0-based statement index and its source
    /// text so transaction scripts can be debugged without bisecting.
    Script {
        index: usize,
        statement: String,
        source: Box<MadError>,
    },
    /// A wire-protocol violation on a network connection: bad magic, an
    /// oversized or truncated frame, a checksum mismatch, an unknown
    /// message tag. The connection that produced it is closed; the shared
    /// database handle is untouched.
    Protocol { detail: String },
    /// A socket/file I/O failure on a network connection (connect refused,
    /// reset, unexpected EOF). Like [`MadError::Protocol`] this is scoped
    /// to one connection, never to the shared state.
    Io { detail: String },
}

impl MadError {
    /// Shorthand for [`MadError::UnknownName`].
    pub fn unknown(kind: &'static str, name: impl Into<String>) -> Self {
        MadError::UnknownName {
            kind,
            name: name.into(),
        }
    }

    /// Shorthand for [`MadError::DuplicateName`].
    pub fn duplicate(kind: &'static str, name: impl Into<String>) -> Self {
        MadError::DuplicateName {
            kind,
            name: name.into(),
        }
    }

    /// Shorthand for [`MadError::IntegrityViolation`].
    pub fn integrity(detail: impl Into<String>) -> Self {
        MadError::IntegrityViolation {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::InvalidStructure`].
    pub fn structure(detail: impl Into<String>) -> Self {
        MadError::InvalidStructure {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::Codec`].
    pub fn codec(detail: impl Into<String>) -> Self {
        MadError::Codec {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::Wal`].
    pub fn wal(detail: impl Into<String>) -> Self {
        MadError::Wal {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::TxnConflict`].
    pub fn txn_conflict(detail: impl Into<String>) -> Self {
        MadError::TxnConflict {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::TxnState`].
    pub fn txn_state(detail: impl Into<String>) -> Self {
        MadError::TxnState {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::Protocol`].
    pub fn protocol(detail: impl Into<String>) -> Self {
        MadError::Protocol {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`MadError::Io`].
    pub fn io(detail: impl Into<String>) -> Self {
        MadError::Io {
            detail: detail.into(),
        }
    }

    /// Is this (or, for a [`MadError::Script`] wrapper, its root cause) a
    /// serialization conflict the caller should retry?
    pub fn is_conflict(&self) -> bool {
        match self {
            MadError::TxnConflict { .. } => true,
            MadError::Script { source, .. } => source.is_conflict(),
            _ => false,
        }
    }
}

impl fmt::Display for MadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MadError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            MadError::DuplicateName { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            MadError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            MadError::ArityMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch in {context}: expected {expected} values, found {found}"
            ),
            MadError::IntegrityViolation { detail } => {
                write!(f, "referential integrity violation: {detail}")
            }
            MadError::CardinalityViolation { link_type, detail } => {
                write!(f, "cardinality violation on link type `{link_type}`: {detail}")
            }
            MadError::InvalidStructure { detail } => {
                write!(f, "invalid molecule-type description: {detail}")
            }
            MadError::IncompatibleOperands { op, detail } => {
                write!(f, "incompatible operands for {op}: {detail}")
            }
            MadError::InvalidQualification { detail } => {
                write!(f, "invalid qualification formula: {detail}")
            }
            MadError::Parse { offset, detail } => {
                write!(f, "MQL parse error at offset {offset}: {detail}")
            }
            MadError::Analysis { detail } => write!(f, "MQL analysis error: {detail}"),
            MadError::Snapshot { detail } => write!(f, "snapshot error: {detail}"),
            MadError::Codec { detail } => write!(f, "binary codec error: {detail}"),
            MadError::Wal { detail } => write!(f, "write-ahead-log error: {detail}"),
            MadError::Recursion { detail } => write!(f, "recursion error: {detail}"),
            MadError::TxnConflict { detail } => {
                write!(f, "transaction conflict: {detail}")
            }
            MadError::TxnState { detail } => write!(f, "transaction state error: {detail}"),
            MadError::Script {
                index,
                statement,
                source,
            } => write!(f, "statement {index} (`{statement}`): {source}"),
            MadError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            MadError::Io { detail } => write!(f, "I/O error: {detail}"),
        }
    }
}

impl std::error::Error for MadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_name() {
        let e = MadError::unknown("atom type", "city");
        assert_eq!(e.to_string(), "unknown atom type `city`");
    }

    #[test]
    fn display_cardinality() {
        let e = MadError::CardinalityViolation {
            link_type: "state-area".into(),
            detail: "state side already has 1 partner (max 1)".into(),
        };
        assert!(e.to_string().contains("state-area"));
        assert!(e.to_string().contains("max 1"));
    }

    #[test]
    fn display_parse() {
        let e = MadError::Parse {
            offset: 17,
            detail: "expected FROM".into(),
        };
        assert_eq!(
            e.to_string(),
            "MQL parse error at offset 17: expected FROM"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MadError>();
    }
}
