//! Attribute values and attribute domains.
//!
//! Def. 1 of the paper lets atoms consist of "attributes of various data
//! types". We support the scalar domains a 1989-era engineering database
//! would offer (booleans, integers, reals, strings) plus an explicit `Null`
//! for optional attributes and an `Id` value that can store an [`AtomId`]
//! reference — the latter is used by the propagation function `prop` when a
//! synthetic atom type (e.g. the pair type of the molecule cartesian product)
//! must record which base atoms it was built from.
//!
//! Because the algebra's ω/δ (and the relational degeneration) require *set*
//! semantics, [`Value`] implements total `Eq`, `Ord` and `Hash`: floats
//! compare via `f64::total_cmp` and hash via their bit pattern.

use crate::ids::AtomId;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The domain of an attribute (Fig. 3: "attribute domain").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrType {
    /// Truth values.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE-754 reals.
    Float,
    /// UTF-8 text.
    Text,
    /// A stored atom identity (used by propagated/synthetic atom types).
    Id,
}

impl AttrType {
    /// Human-readable domain name, as printed in schema dumps (Fig. 4).
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Bool => "BOOL",
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Text => "TEXT",
            AttrType::Id => "ID",
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single attribute value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The null value; member of every domain.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A text string.
    Text(String),
    /// An atom identity.
    Id(AtomId),
}

impl Value {
    /// The domain this value belongs to; `None` for [`Value::Null`], which is
    /// a member of every domain.
    pub fn attr_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(AttrType::Bool),
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Text(_) => Some(AttrType::Text),
            Value::Id(_) => Some(AttrType::Id),
        }
    }

    /// Does this value belong to domain `ty`? Null belongs to every domain;
    /// an `Int` is accepted by a `Float` attribute (widening), matching the
    /// behaviour of SQL numeric literals in MQL.
    pub fn conforms_to(&self, ty: AttrType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), AttrType::Float) => true,
            _ => self.attr_type() == Some(ty),
        }
    }

    /// Coerce into domain `ty` where [`Value::conforms_to`] allows it
    /// (widening `Int` → `Float`); otherwise return the value unchanged.
    pub fn coerce(self, ty: AttrType) -> Value {
        match (&self, ty) {
            (Value::Int(i), AttrType::Float) => Value::Float(*i as f64),
            _ => self,
        }
    }

    /// True if this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float; integers widen.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract text, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a stored atom id, if this is one.
    pub fn as_id(&self) -> Option<AtomId> {
        match self {
            Value::Id(a) => Some(*a),
            _ => None,
        }
    }

    /// Three-valued-logic comparison used by qualification formulas: returns
    /// `None` when either side is null (unknown), `Some(ordering)` otherwise.
    /// Numeric values compare across `Int`/`Float`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (a, b) => {
                if discriminant_rank(a) == discriminant_rank(b) {
                    Some(a.cmp(b))
                } else {
                    None
                }
            }
        }
    }
}

fn discriminant_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Text(_) => 4,
        Value::Id(_) => 5,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order for set semantics: values order first by kind, then by
    /// payload; floats use `total_cmp` so `NaN` has a fixed place.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Id(a), Id(b)) => a.cmp(b),
            (a, b) => discriminant_rank(a).cmp(&discriminant_rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        discriminant_rank(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Id(a) => a.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Id(a) => write!(f, "@{a}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<AtomId> for Value {
    fn from(a: AtomId) -> Self {
        Value::Id(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AtomTypeId;

    #[test]
    fn null_conforms_to_everything() {
        for ty in [
            AttrType::Bool,
            AttrType::Int,
            AttrType::Float,
            AttrType::Text,
            AttrType::Id,
        ] {
            assert!(Value::Null.conforms_to(ty));
        }
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Value::Int(3).conforms_to(AttrType::Float));
        assert_eq!(Value::Int(3).coerce(AttrType::Float), Value::Float(3.0));
        assert!(!Value::Float(3.0).conforms_to(AttrType::Int));
    }

    #[test]
    fn sql_cmp_nulls_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_cmp_incomparable_kinds() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("x".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
    }

    #[test]
    fn hash_eq_consistency_floats() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Float(1.0));
        s.insert(Value::Float(1.0));
        s.insert(Value::Float(f64::NAN));
        s.insert(Value::Float(f64::NAN));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Text("pn".into()).to_string(), "'pn'");
        assert_eq!(Value::Bool(true).to_string(), "true");
        let a = AtomId::new(AtomTypeId(1), 2);
        assert_eq!(Value::Id(a).to_string(), "@a1.2");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1i32), Value::Int(1));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Text("s".into()));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
    }

    #[test]
    fn kind_ordering_is_stable() {
        // Ordering across kinds must be total and antisymmetric for sorting.
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.0),
            Value::Text(String::new()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }
}
