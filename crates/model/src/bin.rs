//! Stable binary encoding for WAL records and snapshots.
//!
//! Like [`crate::json`], this is a hand-rolled, dependency-free shim in
//! place of `serde`/`bincode` (the build environment has no crate
//! registry). Unlike JSON it is a *wire format*: the write-ahead log and
//! the binary database snapshot persist these bytes across process
//! restarts, so the encoding must stay **stable** — append new tags, never
//! renumber existing ones.
//!
//! Layout conventions:
//!
//! * all integers are little-endian fixed width (`u8`/`u32`/`u64`/`i64`);
//! * floats travel as their IEEE-754 bit pattern (`f64::to_bits`), so
//!   `NaN` payloads survive a round-trip bit-identically;
//! * strings are a `u32` byte length followed by UTF-8 bytes;
//! * sequences are a `u32` element count followed by the elements;
//! * enums are a `u8` tag followed by the variant payload.
//!
//! Everything decodable implements [`BinDecode`]; decoding is
//! bounds-checked and returns [`MadError::Codec`] on truncated or
//! malformed input — it never panics on untrusted bytes (the WAL recovery
//! path feeds it torn tails).

use crate::error::{MadError, Result};
use crate::ids::{AtomId, AtomTypeId, LinkTypeId};
use crate::schema::Schema;
use crate::types::{AtomTypeDef, AttrDef, Cardinality, LinkTypeDef};
use crate::value::{AttrType, Value};

/// Types that can append their stable binary form to a buffer.
pub trait BinEncode {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types that can be decoded from the [`BinEncode`] form.
pub trait BinDecode: Sized {
    /// Decode one value from the reader, advancing its position.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Convenience: decode from a buffer, requiring it to be consumed
    /// exactly.
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(MadError::Codec {
                detail: format!("{} trailing bytes after decoded value", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(MadError::Codec {
                detail: format!(
                    "truncated input: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = usize_of_u32(self.u32()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| MadError::Codec {
            detail: format!("invalid UTF-8 in string: {e}"),
        })
    }

    /// Read a length-prefixed byte blob (the counterpart of [`put_blob`]).
    pub fn blob(&mut self) -> Result<Vec<u8>> {
        let len = usize_of_u32(self.u32()?);
        Ok(self.take(len)?.to_vec())
    }

    /// Read a sequence length, sanity-capped against the remaining input so
    /// corrupt lengths cannot trigger huge allocations.
    pub fn seq_len(&mut self) -> Result<usize> {
        let n = usize_of_u32(self.u32()?);
        // every element occupies at least one byte in all our encodings
        if n > self.remaining() {
            return Err(MadError::Codec {
                detail: format!(
                    "implausible sequence length {n} with {} bytes remaining",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }
}

/// The `u32` length prefix for an in-memory length. A value this process
/// holds in memory but cannot express on the wire is a logic error
/// upstream; a silently wrapped prefix would corrupt every later byte of
/// the stream, so this fails loudly instead.
pub fn len_u32(n: usize) -> u32 {
    // check: allow(panic, "a >= 4 GiB in-memory value cannot round-trip; wrapping the length prefix would corrupt the stream, so fail loudly")
    u32::try_from(n).expect("value length exceeds the u32 wire prefix")
}

/// Widen a wire `u32` to an in-memory `usize`. Lossless on every target
/// with at least 32-bit pointers; on a (hypothetical) smaller target the
/// saturated value fails the reader's bounds checks instead of wrapping.
pub fn usize_of_u32(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Widen an in-memory count to the wire's `u64`. Lossless on every
/// supported target (`usize` is at most 64 bits).
pub fn u64_of_usize(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Narrow a wire `u64` count to an in-memory `usize`, surfacing
/// [`MadError::Codec`] when the value does not fit this target instead of
/// silently truncating.
pub fn usize_of_u64(v: u64) -> Result<usize> {
    usize::try_from(v).map_err(|_| MadError::Codec {
        detail: format!("count {v} overflows usize on this target"),
    })
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, len_u32(s.len()));
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed byte blob (opaque nested payloads).
pub fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, len_u32(b.len()));
    out.extend_from_slice(b);
}

impl BinEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, self);
    }
}

impl BinDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.str()
    }
}

impl<T: BinEncode> BinEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, len_u32(self.len()));
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: BinDecode> BinDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: BinEncode, B: BinEncode> BinEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: BinDecode, B: BinDecode> BinDecode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl BinEncode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
}

impl BinDecode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.u32()
    }
}

impl BinEncode for AtomTypeId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
    }
}

impl BinDecode for AtomTypeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AtomTypeId(r.u32()?))
    }
}

impl BinEncode for LinkTypeId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
    }
}

impl BinDecode for LinkTypeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(LinkTypeId(r.u32()?))
    }
}

impl BinEncode for AtomId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.ty.0);
        put_u32(out, self.slot);
    }
}

impl BinDecode for AtomId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AtomId::new(AtomTypeId(r.u32()?), r.u32()?))
    }
}

impl BinEncode for AttrType {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AttrType::Bool => 0,
            AttrType::Int => 1,
            AttrType::Float => 2,
            AttrType::Text => 3,
            AttrType::Id => 4,
        });
    }
}

impl BinDecode for AttrType {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            0 => AttrType::Bool,
            1 => AttrType::Int,
            2 => AttrType::Float,
            3 => AttrType::Text,
            4 => AttrType::Id,
            t => {
                return Err(MadError::Codec {
                    detail: format!("unknown AttrType tag {t}"),
                })
            }
        })
    }
}

impl BinEncode for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(3);
                put_u64(out, x.to_bits());
            }
            Value::Text(s) => {
                out.push(4);
                put_str(out, s);
            }
            Value::Id(a) => {
                out.push(5);
                a.encode(out);
            }
        }
    }
}

impl BinDecode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            0 => Value::Null,
            1 => Value::Bool(match r.u8()? {
                0 => false,
                1 => true,
                b => {
                    return Err(MadError::Codec {
                        detail: format!("invalid bool byte {b}"),
                    })
                }
            }),
            2 => Value::Int(r.i64()?),
            3 => Value::Float(r.f64()?),
            4 => Value::Text(r.str()?),
            5 => Value::Id(AtomId::decode(r)?),
            t => {
                return Err(MadError::Codec {
                    detail: format!("unknown Value tag {t}"),
                })
            }
        })
    }
}

impl BinEncode for AttrDef {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        self.ty.encode(out);
    }
}

impl BinDecode for AttrDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AttrDef {
            name: r.str()?,
            ty: AttrType::decode(r)?,
        })
    }
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn opt_str(r: &mut Reader<'_>) -> Result<Option<String>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.str()?)),
        t => Err(MadError::Codec {
            detail: format!("invalid Option tag {t}"),
        }),
    }
}

impl BinEncode for AtomTypeDef {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        self.attrs.encode(out);
        put_opt_str(out, &self.derived_from);
    }
}

impl BinDecode for AtomTypeDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AtomTypeDef {
            name: r.str()?,
            attrs: Vec::decode(r)?,
            derived_from: opt_str(r)?,
        })
    }
}

impl BinEncode for Cardinality {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.min);
        match self.max {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                put_u32(out, m);
            }
        }
    }
}

impl BinDecode for Cardinality {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let min = r.u32()?;
        let max = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            t => {
                return Err(MadError::Codec {
                    detail: format!("invalid Option tag {t}"),
                })
            }
        };
        Ok(Cardinality { min, max })
    }
}

impl BinEncode for LinkTypeDef {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        self.ends[0].encode(out);
        self.ends[1].encode(out);
        self.cards[0].encode(out);
        self.cards[1].encode(out);
        put_opt_str(out, &self.derived_from);
    }
}

impl BinDecode for LinkTypeDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(LinkTypeDef {
            name: r.str()?,
            ends: [AtomTypeId::decode(r)?, AtomTypeId::decode(r)?],
            cards: [Cardinality::decode(r)?, Cardinality::decode(r)?],
            derived_from: opt_str(r)?,
        })
    }
}

impl BinEncode for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        // only the two type lists travel; the lookup maps are derived state
        put_u32(out, len_u32(self.atom_type_count()));
        for (_, at) in self.atom_types() {
            at.encode(out);
        }
        put_u32(out, len_u32(self.link_type_count()));
        for (_, lt) in self.link_types() {
            lt.encode(out);
        }
    }
}

impl BinDecode for Schema {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        // rebuild through the validating API, so name collisions and bad
        // endpoint ids in corrupt input surface as errors, not panics
        let mut schema = Schema::new();
        for _ in 0..r.seq_len()? {
            schema.add_atom_type(AtomTypeDef::decode(r)?)?;
        }
        for _ in 0..r.seq_len()? {
            schema.add_link_type(LinkTypeDef::decode(r)?)?;
        }
        Ok(schema)
    }
}

// ---------------------------------------------------------------------
// Binary statement results (the network wire's `BinResult` frame payload)
// ---------------------------------------------------------------------

/// One node of a binary-encoded result structure: alias, atom-type name
/// and the attribute schema its tuples decode against. Self-describing —
/// a client needs no schema handshake to interpret the tuples.
#[derive(Clone, Debug, PartialEq)]
pub struct BinNode {
    /// The node's alias in the defining structure.
    pub alias: String,
    /// The underlying atom-type name.
    pub atom_type: String,
    /// Attribute definitions, in tuple order.
    pub attrs: Vec<AttrDef>,
}

impl BinEncode for BinNode {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.alias);
        put_str(out, &self.atom_type);
        self.attrs.encode(out);
    }
}

impl BinDecode for BinNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(BinNode {
            alias: r.str()?,
            atom_type: r.str()?,
            attrs: Vec::decode(r)?,
        })
    }
}

/// One atom occurrence inside a binary-encoded molecule: which structure
/// node it instantiates, its id, and its attribute tuple.
#[derive(Clone, Debug, PartialEq)]
pub struct BinAtom {
    /// Index into [`BinMolecules::nodes`].
    pub node: u32,
    /// The atom's id.
    pub id: AtomId,
    /// The attribute values, in [`BinNode::attrs`] order.
    pub tuple: Vec<Value>,
}

impl BinEncode for BinAtom {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.node);
        self.id.encode(out);
        self.tuple.encode(out);
    }
}

impl BinDecode for BinAtom {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(BinAtom {
            node: r.u32()?,
            id: AtomId::decode(r)?,
            tuple: Vec::decode(r)?,
        })
    }
}

/// A molecule set in wire form: the derived type's name, its structure
/// nodes, and each molecule as a pre-order list of atoms.
#[derive(Clone, Debug, PartialEq)]
pub struct BinMolecules {
    /// The molecule-type name.
    pub name: String,
    /// The structure's nodes.
    pub nodes: Vec<BinNode>,
    /// Each molecule: atoms in structure pre-order.
    pub molecules: Vec<Vec<BinAtom>>,
}

impl BinEncode for BinMolecules {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        self.nodes.encode(out);
        self.molecules.encode(out);
    }
}

impl BinDecode for BinMolecules {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = BinMolecules {
            name: r.str()?,
            nodes: Vec::decode(r)?,
            molecules: Vec::decode(r)?,
        };
        let node_count = len_u32(v.nodes.len());
        for m in &v.molecules {
            for a in m {
                if a.node >= node_count {
                    return Err(MadError::Codec {
                        detail: format!(
                            "atom references node {} of {} in binary molecule set",
                            a.node, node_count
                        ),
                    });
                }
            }
        }
        Ok(v)
    }
}

/// A statement result in wire form. Molecule sets travel structurally
/// (tag 1); every other result kind is forwarded as its rendered text
/// (tag 0) — new tags may be appended, never renumbered.
#[derive(Clone, Debug, PartialEq)]
pub enum BinResult {
    /// A pre-rendered text result.
    Text(String),
    /// A structurally-encoded molecule set.
    Molecules(BinMolecules),
}

impl BinEncode for BinResult {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BinResult::Text(s) => {
                out.push(0);
                put_str(out, s);
            }
            BinResult::Molecules(m) => {
                out.push(1);
                m.encode(out);
            }
        }
    }
}

impl BinDecode for BinResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            0 => BinResult::Text(r.str()?),
            1 => BinResult::Molecules(BinMolecules::decode(r)?),
            t => {
                return Err(MadError::Codec {
                    detail: format!("unknown BinResult tag {t}"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn roundtrip<T: BinEncode + BinDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Float(-0.0));
        roundtrip(Value::Text("ﬀ — unicode".to_owned()));
        roundtrip(Value::Id(AtomId::new(AtomTypeId(7), u32::MAX)));
    }

    #[test]
    fn nan_survives_bit_identically() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = Value::Float(weird).to_bytes();
        let Value::Float(back) = Value::from_bytes(&bytes).unwrap() else {
            panic!()
        };
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn tuples_and_vecs_roundtrip() {
        roundtrip(vec![Value::Int(1), Value::Null, Value::Text("x".into())]);
        roundtrip((AtomId::new(AtomTypeId(1), 2), "pair".to_owned()));
    }

    #[test]
    fn schema_roundtrip_rebuilds_lookups() {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type_card(
                "state-area",
                "state",
                Cardinality::MANY,
                "area",
                Cardinality::AT_MOST_ONE,
            )
            .build()
            .unwrap();
        let back = Schema::from_bytes(&schema.to_bytes()).unwrap();
        assert!(back.atom_type_id("state").is_ok());
        let sa = back.link_type_id("state-area").unwrap();
        assert_eq!(back.link_type(sa).cards[1], Cardinality::AT_MOST_ONE);
        assert_eq!(back.link_types_of(back.atom_type_id("area").unwrap()), &[sa]);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = Value::Text("hello".into()).to_bytes();
        for cut in 0..bytes.len() {
            let err = Value::from_bytes(&bytes[..cut]).err();
            assert!(err.is_some(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Value::Int(5).to_bytes();
        bytes.push(0);
        assert!(matches!(
            Value::from_bytes(&bytes),
            Err(MadError::Codec { .. })
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        // a Vec claiming u32::MAX elements with a 4-byte body
        let bytes = u32::MAX.to_le_bytes().to_vec();
        assert!(Vec::<Value>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Value::from_bytes(&[9]).is_err());
        assert!(AttrType::from_bytes(&[200]).is_err());
    }

    #[test]
    fn oversized_declared_lengths_rejected_before_allocation() {
        // a string prefix claiming u32::MAX bytes over a 2-byte body must
        // fail in the bounds check, not allocate 4 GiB
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"hi");
        assert!(matches!(
            String::from_bytes(&bytes),
            Err(MadError::Codec { .. })
        ));
        // same for a sequence count (seq_len's plausibility cap)
        let bytes = 0x1000_0000u32.to_le_bytes().to_vec();
        assert!(matches!(
            Vec::<Value>::from_bytes(&bytes),
            Err(MadError::Codec { .. })
        ));
    }

    #[test]
    fn bin_result_roundtrip() {
        roundtrip(BinResult::Text("updated 1 atom(s)\n".to_owned()));
        roundtrip(BinResult::Molecules(BinMolecules {
            name: "result".to_owned(),
            nodes: vec![BinNode {
                alias: "state".to_owned(),
                atom_type: "state".to_owned(),
                attrs: vec![AttrDef {
                    name: "sname".to_owned(),
                    ty: AttrType::Text,
                }],
            }],
            molecules: vec![vec![BinAtom {
                node: 0,
                id: AtomId::new(AtomTypeId(0), 3),
                tuple: vec![Value::Text("SP".to_owned())],
            }]],
        }));
    }

    #[test]
    fn bin_result_rejects_out_of_range_node_index() {
        let bad = BinResult::Molecules(BinMolecules {
            name: "r".to_owned(),
            nodes: vec![],
            molecules: vec![vec![BinAtom {
                node: 7,
                id: AtomId::new(AtomTypeId(0), 0),
                tuple: vec![],
            }]],
        });
        assert!(matches!(
            BinResult::from_bytes(&bad.to_bytes()),
            Err(MadError::Codec { .. })
        ));
    }

    #[test]
    fn checked_width_helpers() {
        assert_eq!(len_u32(0), 0);
        assert_eq!(len_u32(4096), 4096);
        assert_eq!(usize_of_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(u64_of_usize(17), 17);
        assert_eq!(usize_of_u64(42).unwrap(), 42);
        #[cfg(target_pointer_width = "64")]
        assert_eq!(usize_of_u64(u64::MAX).unwrap(), u64::MAX as usize);
    }
}
