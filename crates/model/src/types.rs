//! Atom-type and link-type descriptions (Def. 1 and Def. 2).
//!
//! A *description* is the schema-level half of a type; the occurrence half
//! (the atom and link sets) is managed by `mad-storage`. Keeping the two
//! apart mirrors the paper's `<aname, ad, av>` triples, where `ad` is the
//! description and `av` the occurrence.

use crate::error::{MadError, Result};
use crate::ids::AtomTypeId;
use crate::value::{AttrType, Value};
use std::fmt;

/// An attribute description: name plus domain.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrDef {
    /// Attribute name, unique within its atom-type description.
    pub name: String,
    /// The attribute domain.
    pub ty: AttrType,
}

impl AttrDef {
    /// Build an attribute description.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        AttrDef {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for AttrDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// An atom-type description: `<aname, ad>` of Def. 1 (without occurrence).
///
/// `derived_from` records provenance when the type was produced by an
/// atom-type operation or by the propagation function `prop` — such types
/// live in the *enlarged* database DB′ of Def. 9 and Theorem 1/3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomTypeDef {
    /// The atom-type name `aname ∈ N`; unique within a database.
    pub name: String,
    /// The set of attribute descriptions `ad` (ordered for tuple layout).
    pub attrs: Vec<AttrDef>,
    /// Provenance: `None` for base types defined in the schema, `Some(expr)`
    /// with a textual derivation expression for derived/propagated types.
    pub derived_from: Option<String>,
}

impl AtomTypeDef {
    /// Build a base atom-type description.
    pub fn new(name: impl Into<String>, attrs: Vec<AttrDef>) -> Self {
        AtomTypeDef {
            name: name.into(),
            attrs,
            derived_from: None,
        }
    }

    /// Build a derived atom-type description with provenance text.
    pub fn derived(name: impl Into<String>, attrs: Vec<AttrDef>, from: impl Into<String>) -> Self {
        AtomTypeDef {
            name: name.into(),
            attrs,
            derived_from: Some(from.into()),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of attribute `name`, if present.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Look up an attribute description by name.
    pub fn attr(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Validate a tuple against this description: arity must match and every
    /// value must conform to its attribute's domain. Returns the (possibly
    /// coerced) tuple.
    pub fn check_tuple(&self, mut tuple: Vec<Value>) -> Result<Vec<Value>> {
        if tuple.len() != self.attrs.len() {
            return Err(MadError::ArityMismatch {
                context: format!("atom type `{}`", self.name),
                expected: self.attrs.len(),
                found: tuple.len(),
            });
        }
        for (i, attr) in self.attrs.iter().enumerate() {
            if !tuple[i].conforms_to(attr.ty) {
                return Err(MadError::TypeMismatch {
                    context: format!("atom type `{}`, attribute `{}`", self.name, attr.name),
                    expected: attr.ty.name().to_owned(),
                    found: tuple[i]
                        .attr_type()
                        .map(|t| t.name().to_owned())
                        .unwrap_or_else(|| "NULL".to_owned()),
                });
            }
            let v = std::mem::replace(&mut tuple[i], Value::Null);
            tuple[i] = v.coerce(attr.ty);
        }
        Ok(tuple)
    }

    /// Descriptions are *disjoint* when they share no attribute name — the
    /// precondition Def. 4 places on the cartesian product (`ad1`, `ad2`
    /// pairwise disjoint).
    pub fn disjoint_with(&self, other: &AtomTypeDef) -> bool {
        self.attrs
            .iter()
            .all(|a| other.attr_index(&a.name).is_none())
    }

    /// Same attribute list (names and domains, in order) — the compatibility
    /// requirement of ω and δ (`ad1 = ad2`).
    pub fn same_description(&self, other: &AtomTypeDef) -> bool {
        self.attrs == other.attrs
    }
}

impl fmt::Display for AtomTypeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// Cardinality restriction for one side of an extended link-type definition.
///
/// §3.1: "it is even possible to control cardinality restrictions specified
/// in an extended link-type definition". `max = None` means unbounded (the
/// `n`/`m` side of 1:n or n:m).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cardinality {
    /// Minimum number of partners an atom must have (checked on demand via
    /// `Database::check_min_cardinalities`, since links are inserted one at a
    /// time).
    pub min: u32,
    /// Maximum number of partners an atom may have (checked eagerly on link
    /// insertion); `None` = unbounded.
    pub max: Option<u32>,
}

impl Cardinality {
    /// Unrestricted side (the default): `[0, *]`.
    pub const MANY: Cardinality = Cardinality { min: 0, max: None };
    /// At most one partner: `[0, 1]`.
    pub const AT_MOST_ONE: Cardinality = Cardinality {
        min: 0,
        max: Some(1),
    };
    /// Exactly one partner: `[1, 1]`.
    pub const EXACTLY_ONE: Cardinality = Cardinality {
        min: 1,
        max: Some(1),
    };
    /// At least one partner: `[1, *]`.
    pub const AT_LEAST_ONE: Cardinality = Cardinality { min: 1, max: None };

    /// Build an arbitrary range.
    pub fn range(min: u32, max: Option<u32>) -> Self {
        Cardinality { min, max }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "[{},{}]", self.min, max),
            None => write!(f, "[{},*]", self.min),
        }
    }
}

/// A link-type description: `<lname, {aname1, aname2}>` of Def. 2, extended
/// with per-side cardinality restrictions.
///
/// Link types are **nondirectional** (symmetric); the two endpoints are kept
/// in a fixed order only so that cardinalities can be attributed to a side.
/// A *reflexive* link type has `ends[0] == ends[1]` (e.g. the `composition`
/// link type on `parts` in the bill-of-material example of §3.1/§5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkTypeDef {
    /// The link-type name `lname ∈ N`; unique within a database.
    pub name: String,
    /// The two endpoint atom types (may be equal: reflexive link type).
    pub ends: [AtomTypeId; 2],
    /// Cardinality restriction per endpoint side: `cards[i]` bounds how many
    /// partners an atom of `ends[i]` may/must have through this link type.
    pub cards: [Cardinality; 2],
    /// Provenance: `Some(text)` when inherited by an atom-type operation or
    /// propagated by `prop` (Def. 9).
    pub derived_from: Option<String>,
}

impl LinkTypeDef {
    /// Build an unrestricted (n:m) link-type description.
    pub fn new(name: impl Into<String>, a: AtomTypeId, b: AtomTypeId) -> Self {
        LinkTypeDef {
            name: name.into(),
            ends: [a, b],
            cards: [Cardinality::MANY, Cardinality::MANY],
            derived_from: None,
        }
    }

    /// Build a link-type description with explicit cardinalities.
    pub fn with_cards(
        name: impl Into<String>,
        a: AtomTypeId,
        ca: Cardinality,
        b: AtomTypeId,
        cb: Cardinality,
    ) -> Self {
        LinkTypeDef {
            name: name.into(),
            ends: [a, b],
            cards: [ca, cb],
            derived_from: None,
        }
    }

    /// Is this a reflexive link type (both endpoints the same atom type)?
    pub fn is_reflexive(&self) -> bool {
        self.ends[0] == self.ends[1]
    }

    /// Does this link type connect atom type `ty` (on either side)?
    pub fn touches(&self, ty: AtomTypeId) -> bool {
        self.ends[0] == ty || self.ends[1] == ty
    }

    /// Given one endpoint type, the other endpoint type; `None` if `ty` is
    /// not an endpoint. For reflexive types returns `ty` itself.
    pub fn other_end(&self, ty: AtomTypeId) -> Option<AtomTypeId> {
        if self.ends[0] == ty {
            Some(self.ends[1])
        } else if self.ends[1] == ty {
            Some(self.ends[0])
        } else {
            None
        }
    }

    /// Which side (0 or 1) is atom type `ty` on? Reflexive types report side
    /// 0. `None` if `ty` is not an endpoint.
    pub fn side_of(&self, ty: AtomTypeId) -> Option<usize> {
        if self.ends[0] == ty {
            Some(0)
        } else if self.ends[1] == ty {
            Some(1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city_def() -> AtomTypeDef {
        AtomTypeDef::new(
            "city",
            vec![
                AttrDef::new("name", AttrType::Text),
                AttrDef::new("population", AttrType::Int),
            ],
        )
    }

    #[test]
    fn check_tuple_ok_and_coerces() {
        let def = AtomTypeDef::new(
            "area",
            vec![
                AttrDef::new("name", AttrType::Text),
                AttrDef::new("hectare", AttrType::Float),
            ],
        );
        let t = def
            .check_tuple(vec![Value::from("MG"), Value::from(900i64)])
            .unwrap();
        assert_eq!(t[1], Value::Float(900.0));
    }

    #[test]
    fn check_tuple_arity_error() {
        let def = city_def();
        let err = def.check_tuple(vec![Value::from("x")]).unwrap_err();
        assert!(matches!(err, MadError::ArityMismatch { expected: 2, found: 1, .. }));
    }

    #[test]
    fn check_tuple_type_error() {
        let def = city_def();
        let err = def
            .check_tuple(vec![Value::from("x"), Value::from("not a number")])
            .unwrap_err();
        assert!(matches!(err, MadError::TypeMismatch { .. }));
    }

    #[test]
    fn check_tuple_null_allowed() {
        let def = city_def();
        let t = def
            .check_tuple(vec![Value::Null, Value::Null])
            .unwrap();
        assert!(t[0].is_null() && t[1].is_null());
    }

    #[test]
    fn disjoint_and_same_description() {
        let a = city_def();
        let b = AtomTypeDef::new("river", vec![AttrDef::new("rname", AttrType::Text)]);
        let c = AtomTypeDef::new("town", a.attrs.clone());
        assert!(a.disjoint_with(&b));
        assert!(!a.disjoint_with(&c));
        assert!(a.same_description(&c));
        assert!(!a.same_description(&b));
    }

    #[test]
    fn attr_lookup() {
        let def = city_def();
        assert_eq!(def.attr_index("population"), Some(1));
        assert_eq!(def.attr_index("missing"), None);
        assert_eq!(def.attr("name").unwrap().ty, AttrType::Text);
        assert_eq!(def.arity(), 2);
    }

    #[test]
    fn link_type_endpoints() {
        let lt = LinkTypeDef::new("state-area", AtomTypeId(0), AtomTypeId(1));
        assert!(!lt.is_reflexive());
        assert!(lt.touches(AtomTypeId(0)));
        assert!(!lt.touches(AtomTypeId(2)));
        assert_eq!(lt.other_end(AtomTypeId(0)), Some(AtomTypeId(1)));
        assert_eq!(lt.other_end(AtomTypeId(1)), Some(AtomTypeId(0)));
        assert_eq!(lt.other_end(AtomTypeId(2)), None);
        assert_eq!(lt.side_of(AtomTypeId(1)), Some(1));
    }

    #[test]
    fn reflexive_link_type() {
        let lt = LinkTypeDef::new("composition", AtomTypeId(3), AtomTypeId(3));
        assert!(lt.is_reflexive());
        assert_eq!(lt.other_end(AtomTypeId(3)), Some(AtomTypeId(3)));
        assert_eq!(lt.side_of(AtomTypeId(3)), Some(0));
    }

    #[test]
    fn cardinality_display() {
        assert_eq!(Cardinality::MANY.to_string(), "[0,*]");
        assert_eq!(Cardinality::EXACTLY_ONE.to_string(), "[1,1]");
        assert_eq!(Cardinality::range(2, Some(5)).to_string(), "[2,5]");
    }

    #[test]
    fn display_atom_type() {
        assert_eq!(
            city_def().to_string(),
            "city (name: TEXT, population: INT)"
        );
    }
}
