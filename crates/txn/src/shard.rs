//! The sharded halves of the commit pipeline: the first-committer-wins
//! conflict index and the active-transaction registry.
//!
//! Both structures used to live inside one publication mutex; the commit
//! pipeline splits them into `N` independently locked shards so validation
//! of disjoint write-sets and begin/finish bookkeeping proceed
//! concurrently. This module is the **one blessed home of indexed lock
//! acquisitions** in the workspace (`shards[i].lock()` — see the
//! `mad-check` shard lint): every acquisition here follows the two
//! normative shard rules from ARCHITECTURE.md:
//!
//! 1. **Ascending order** — when more than one shard of a family is
//!    locked without releasing the previous one, the indices are strictly
//!    ascending (the only such site is [`ActiveRegistry::oldest_begin`],
//!    which folds over all registry shards in index order).
//! 2. **No blocking** — nothing blocking (condvars, channels, I/O, joins)
//!    runs while a shard guard is held; shard critical sections are pure
//!    map probes and inserts.
//!
//! Shard mutexes recover from poisoning (`PoisonError::into_inner`)
//! instead of erroring: the protected values are plain maps whose methods
//! keep them coherent even if a panic escapes mid-call, and the commit
//! pipeline must be able to update the index *after* a WAL record is
//! already appended, where refusing would desynchronize log and index.

use crate::txn::WriteKey;
use mad_model::fxhash::FxHasher;
use mad_model::FxHashMap;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Conflict-index shard count. A power of two so the shard of a key is a
/// mask of its hash; 16 shards keep the per-shard maps small and let up
/// to 16 disjoint write-sets validate concurrently.
pub(crate) const CONFLICT_SHARDS: usize = 16;

/// Registry shard count. Begins/finishes are cheaper than validation, so
/// fewer shards suffice to take them off any shared line.
pub(crate) const REGISTRY_SHARDS: usize = 8;

/// The sharded first-committer-wins conflict index: write key → sequence
/// of the last commit that published it, covering exactly the keys of the
/// retained commit-log records. Keys are distributed over
/// [`CONFLICT_SHARDS`] independently locked maps by write-key hash.
#[derive(Debug)]
pub(crate) struct ConflictIndex {
    cshard: Vec<Mutex<FxHashMap<WriteKey, u64>>>,
}

/// Which conflict shard owns `key`.
fn conflict_shard_of(key: &WriteKey) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() as usize) & (CONFLICT_SHARDS - 1)
}

/// `keys` annotated with their shard and sorted by it — the canonical
/// ascending visit order shared by probing and publishing.
fn by_shard<'a>(
    keys: impl IntoIterator<Item = &'a WriteKey>,
) -> Vec<(usize, &'a WriteKey)> {
    let mut order: Vec<(usize, &WriteKey)> =
        keys.into_iter().map(|k| (conflict_shard_of(k), k)).collect();
    order.sort_unstable_by_key(|e| e.0);
    order
}

impl ConflictIndex {
    pub(crate) fn new() -> Self {
        ConflictIndex {
            cshard: (0..CONFLICT_SHARDS).map(|_| Mutex::new(FxHashMap::default())).collect(),
        }
    }

    /// Lock one conflict shard (the module-audited indexed acquisition).
    fn shard_guard(&self, idx: usize) -> MutexGuard<'_, FxHashMap<WriteKey, u64>> {
        self.cshard[idx].lock().unwrap_or_else(PoisonError::into_inner) // check: allow(panic, "idx is a hash masked by CONFLICT_SHARDS - 1, always in range")
    }

    /// First-committer-wins probe: the first key of `keys` last published
    /// at a sequence newer than `begin_seq`, if any. Shards are visited in
    /// ascending order, **one guard at a time** — a publication that slips
    /// between two probes also swaps the published image, which the commit
    /// ticket's staleness check catches before anything is published.
    pub(crate) fn find_conflict<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a WriteKey>,
        begin_seq: u64,
    ) -> Option<(WriteKey, u64)> {
        let order = by_shard(keys);
        let mut it = order.iter().peekable();
        while let Some(&&(idx, _)) = it.peek() {
            let shard = self.shard_guard(idx);
            while let Some(&&(i, key)) = it.peek() {
                if i != idx {
                    break;
                }
                it.next();
                if let Some(&seq) = shard.get(key) {
                    if seq > begin_seq {
                        return Some((key.clone(), seq));
                    }
                }
            }
        }
        None
    }

    /// Record that the commit at `seq` published every key of `keys`.
    /// Called under the commit ticket after the WAL append succeeded;
    /// shards are updated in ascending order, one guard at a time.
    pub(crate) fn publish_keys<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a WriteKey>,
        seq: u64,
    ) {
        let order = by_shard(keys);
        let mut it = order.iter().peekable();
        while let Some(&&(idx, _)) = it.peek() {
            let mut shard = self.shard_guard(idx);
            while let Some(&&(i, key)) = it.peek() {
                if i != idx {
                    break;
                }
                it.next();
                shard.insert(key.clone(), seq);
            }
        }
    }

    /// Drop the index entries of pruned commit records — unless a newer
    /// retained record re-published the key (then the index points at
    /// that newer sequence and the key dies with *that* record). Runs off
    /// the commit path; entries are checked per (key, seq) pair so
    /// concurrent pruners and publishers never delete a live entry.
    pub(crate) fn remove_dead(&self, dead: &[crate::handle::CommitRecord]) {
        let pairs: Vec<(&WriteKey, u64)> =
            dead.iter().flat_map(|r| r.keys.iter().map(move |k| (k, r.seq))).collect();
        let mut order: Vec<(usize, (&WriteKey, u64))> =
            pairs.into_iter().map(|p| (conflict_shard_of(p.0), p)).collect();
        order.sort_unstable_by_key(|e| e.0);
        let mut it = order.iter().peekable();
        while let Some(&&(idx, _)) = it.peek() {
            let mut shard = self.shard_guard(idx);
            while let Some(&&(i, (key, seq))) = it.peek() {
                if i != idx {
                    break;
                }
                it.next();
                if shard.get(key) == Some(&seq) {
                    shard.remove(key);
                }
            }
        }
    }

    /// Total distinct keys indexed, summed shard by shard (ascending, one
    /// guard at a time) — a monitoring figure, racy by design.
    pub(crate) fn len_total(&self) -> usize {
        (0..CONFLICT_SHARDS).map(|idx| self.shard_guard(idx).len()).sum()
    }
}

/// The sharded active-transaction registry: begin sequence → count of
/// active transactions that began there, spread over [`REGISTRY_SHARDS`]
/// maps. A begin registers in one round-robin-picked shard and remembers
/// which; the pruner computes the oldest begin while holding **all**
/// shards (ascending), which is what makes its cutoff safe against
/// concurrent begins (see [`ActiveRegistry::oldest_begin`]).
#[derive(Debug)]
pub(crate) struct ActiveRegistry {
    rshard: Vec<Mutex<BTreeMap<u64, usize>>>,
    next: AtomicUsize,
}

impl ActiveRegistry {
    pub(crate) fn new() -> Self {
        ActiveRegistry {
            rshard: (0..REGISTRY_SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Lock one registry shard (the module-audited indexed acquisition).
    fn reg_guard(&self, idx: usize) -> MutexGuard<'_, BTreeMap<u64, usize>> {
        self.rshard[idx].lock().unwrap_or_else(PoisonError::into_inner) // check: allow(panic, "idx is always reduced modulo REGISTRY_SHARDS")
    }

    /// Register a begin. `read` is called **inside** the shard's critical
    /// section to observe the published image: because the pruner reads
    /// the current sequence while holding every registry shard, a begin
    /// that registers after the pruner released its shard necessarily
    /// observes a sequence `>=` the pruner's cutoff — no begin can slip
    /// under a prune. Returns `(value, begin_seq, shard index)`; the
    /// caller passes the shard index back to
    /// [`ActiveRegistry::unregister_begin`].
    pub(crate) fn register_begin<T>(
        &self,
        read: impl FnOnce() -> (T, u64),
    ) -> (T, u64, usize) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % REGISTRY_SHARDS;
        let mut shard = self.reg_guard(idx);
        let (value, seq) = read();
        *shard.entry(seq).or_insert(0) += 1;
        drop(shard);
        (value, seq, idx)
    }

    /// Drop a begin's registration from the shard it registered in.
    pub(crate) fn unregister_begin(&self, idx: usize, begin_seq: u64) {
        let mut shard = self.reg_guard(idx);
        if let Some(n) = shard.get_mut(&begin_seq) {
            *n -= 1;
            if *n == 0 {
                shard.remove(&begin_seq);
            }
        }
    }

    /// The prune cutoff: the oldest active begin, or — when nothing is
    /// active — the current commit sequence as read by `read_seq`. All
    /// registry shards are held **simultaneously, acquired in ascending
    /// index order** (the one multi-shard hold in the workspace), and
    /// `read_seq` runs with them held: any begin not observed here will
    /// register afterwards and read a sequence `>=` the one returned, so
    /// commit records at or below the cutoff are invisible to it.
    pub(crate) fn oldest_begin(&self, read_seq: impl FnOnce() -> u64) -> u64 {
        let guards: Vec<MutexGuard<'_, BTreeMap<u64, usize>>> = self
            .rshard
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let seq = read_seq();
        guards.iter().filter_map(|g| g.keys().next().copied()).min().unwrap_or(seq)
    }

    /// Active transactions across all shards (ascending, one guard at a
    /// time) — a monitoring figure, racy by design.
    pub(crate) fn active_total(&self) -> usize {
        (0..REGISTRY_SHARDS).map(|idx| self.reg_guard(idx).values().sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AtomId, AtomTypeId};

    fn key(n: u64) -> WriteKey {
        WriteKey::Atom(AtomId::new(AtomTypeId(0), n as u32))
    }

    #[test]
    fn conflict_probe_matches_publish() {
        let idx = ConflictIndex::new();
        let keys: Vec<WriteKey> = (0..100).map(key).collect();
        idx.publish_keys(keys.iter(), 7);
        assert_eq!(idx.len_total(), 100);
        // an older begin conflicts, a newer one does not
        let hit = idx.find_conflict(keys.iter().take(1), 3);
        assert_eq!(hit, Some((key(0), 7)));
        assert_eq!(idx.find_conflict(keys.iter(), 7), None);
    }

    #[test]
    fn remove_dead_spares_republished_keys() {
        let idx = ConflictIndex::new();
        let keys: Vec<WriteKey> = (0..10).map(key).collect();
        idx.publish_keys(keys.iter(), 1);
        // key 3 re-published at seq 2: pruning the seq-1 record keeps it
        idx.publish_keys(std::iter::once(&key(3)), 2);
        let dead = vec![crate::handle::CommitRecord { seq: 1, keys: keys.clone() }];
        idx.remove_dead(&dead);
        assert_eq!(idx.len_total(), 1);
        assert_eq!(idx.find_conflict(std::iter::once(&key(3)), 1), Some((key(3), 2)));
    }

    #[test]
    fn registry_cutoff_is_oldest_begin_or_current_seq() {
        let reg = ActiveRegistry::new();
        assert_eq!(reg.oldest_begin(|| 42), 42);
        let (_, seq_a, shard_a) = reg.register_begin(|| ((), 5));
        let (_, seq_b, shard_b) = reg.register_begin(|| ((), 9));
        assert_eq!(reg.active_total(), 2);
        assert_eq!(reg.oldest_begin(|| 42), 5);
        reg.unregister_begin(shard_a, seq_a);
        assert_eq!(reg.oldest_begin(|| 42), 9);
        reg.unregister_begin(shard_b, seq_b);
        assert_eq!(reg.oldest_begin(|| 42), 42);
        assert_eq!(reg.active_total(), 0);
    }
}
