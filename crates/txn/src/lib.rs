#![forbid(unsafe_code)]

//! # mad-txn — snapshot-isolated transactions over a shared MAD database
//!
//! PRs 1–2 made molecule *derivation* fast; this crate makes the database
//! **shared**. It turns the single-owner `&mut Database` programming model
//! into a multi-session one:
//!
//! * [`DbHandle`] — the shared handle. The committed state is an immutable
//!   `Arc<Database>` published atomically through an epoch cell (arc-swap
//!   style: readers clone the `Arc` wait-free, without queueing behind
//!   validation, the commit ticket or a WAL fsync, and then run lock-free
//!   against their frozen image for as long as they hold it). Concurrent
//!   readers never observe a partial write-set, and an in-flight
//!   derivation keeps its snapshot even while commits publish new states.
//!   Commits run a staged pipeline — sharded first-committer-wins
//!   validation, a short publication ticket, fsync outside all locks —
//!   with a [`CommitMode`] knob to fall back to the legacy single-lock
//!   protocol (see `DbHandle`'s module docs and ARCHITECTURE.md, "The
//!   commit pipeline").
//! * [`Transaction`] — one writer's view. `begin` forks the committed
//!   image; because `mad_storage::Database` is copy-on-write at store
//!   granularity (every per-type atom/link store and index is
//!   `Arc`-shared, split off on first write), the fork **is** the
//!   transaction's *write overlay*: untouched types remain physically the
//!   committed stores, touched types become private deltas. The
//!   transaction's own queries read through the fork
//!   ([`Transaction::db`]) and therefore see their own uncommitted writes
//!   merged into everything downstream — qualification-pushdown bitsets,
//!   frontier expansion, recursive unfolding — while PR-2's per-link-type
//!   version stamps make the fork's CSR snapshot rebuild *incrementally*:
//!   only link types the overlay touched are re-frozen, the rest stay
//!   `Arc`-shared with the committed adjacency image.
//!
//! ## MVCC design
//!
//! Isolation level: **snapshot isolation** with **first-committer-wins**
//! write-write conflict detection.
//!
//! * *Begin* records the committed `Arc` and the handle's commit sequence
//!   number, and snapshots each atom type's slot horizon (the boundary
//!   between pre-existing and transaction-born atoms).
//! * *DML* applies to the fork immediately (full validation, referential
//!   integrity, cardinality bounds, index maintenance — errors surface at
//!   statement time, not at commit), is appended to an **op log**, and
//!   records a [`WriteKey`] for every write that touches *pre-existing*
//!   state: `Atom(id)` for updates/deletes, `Link(lt, a, b)` for
//!   connect/disconnect between pre-existing atoms. Writes to
//!   transaction-born atoms cannot conflict and record nothing.
//! * *Commit* takes the publication lock and validates the write-set
//!   against the commit log: any record published after this
//!   transaction's begin sequence whose keys intersect ours is a
//!   first-committer-wins conflict ([`mad_model::MadError::TxnConflict`])
//!   and aborts us. If the committed state is still the begin image
//!   (uncontended fast path) the fork is published as-is — O(1). If other
//!   transactions committed disjoint writes meanwhile, the op log is
//!   **re-executed** against a fresh fork of the *current* committed
//!   state — *outside* the publication lock, with an optimistic retry if
//!   yet another commit lands during the replay, so concurrent readers
//!   never wait behind a heavy commit; transaction-born atoms may land on
//!   different slots there, so
//!   provisional [`mad_model::AtomId`]s are remapped op by op (the final
//!   mapping is returned in [`CommitInfo::remap`]). Re-execution re-runs
//!   every integrity check against the latest state, so races the
//!   key-level validation cannot see (e.g. two transactions jointly
//!   exceeding a max-cardinality bound, or connecting to an atom a
//!   committed transaction deleted) abort rather than corrupt.
//! * *Abort* drops the fork — the committed state was never touched, so
//!   there is nothing to undo.
//!
//! The commit log is pruned to the records still visible to the oldest
//! active transaction (begin registers, commit/abort/`Drop` unregister),
//! so it stays bounded by the write-sets of in-flight contention, not by
//! history.
//!
//! Conflict granularity is per atom / per oriented link pair. Two
//! transactions inserting atoms of the same type never conflict. DDL and
//! index creation are deliberately **not** transactional — they remain
//! load-time, single-owner operations (see ROADMAP follow-ons).
//!
//! ## Durability
//!
//! A handle opened with [`DbHandle::create_durable`] /
//! [`DbHandle::open_durable`] (or the [`Durability`] knob on
//! [`DbHandle::with_durability`]) write-ahead-logs every commit: at
//! publication time the validated op log — with provisional ids resolved
//! to their committed slots — is appended to a `mad_wal::Wal` *before*
//! the new state becomes visible, and `commit()` returns only once the
//! record is durable per the [`mad_wal::FsyncPolicy`]
//! (`PerCommit` | `Group` | `Never`; `Group` batches one fsync over every
//! commit that arrives while the previous fsync is in flight). Reopening
//! the log recovers exactly the acknowledged commits:
//! [`DbHandle::open_durable`] truncates any torn tail, restores the
//! bootstrap image and replays the records through the full storage
//! integrity machinery. [`DbHandle::checkpoint`] folds the log back into
//! a bootstrap image of the current committed state.
//!
//! Snapshot reads ([`DbHandle::committed`] / [`DbHandle::fork`]) live on
//! a dedicated read-write cell off the publication mutex, so a commit
//! stalled in `fsync` never blocks readers.
//!
//! ```
//! use mad_model::{AttrType, SchemaBuilder, Value};
//! use mad_storage::Database;
//! use mad_txn::{DbHandle, Transaction};
//!
//! let schema = SchemaBuilder::new()
//!     .atom_type("state", &[("sname", AttrType::Text)])
//!     .build()
//!     .unwrap();
//! let handle = DbHandle::new(Database::new(schema));
//! let state = handle.committed().schema().atom_type_id("state").unwrap();
//!
//! let mut txn = Transaction::begin(&handle);
//! let sp = txn.insert_atom(state, vec![Value::from("SP")]).unwrap();
//! assert!(txn.db().atom_exists(sp));            // read-your-own-writes
//! assert_eq!(handle.committed().total_atoms(), 0); // not yet published
//! txn.commit().unwrap();
//! assert_eq!(handle.committed().total_atoms(), 1);
//! ```

#![warn(missing_docs)]

mod handle;
mod shard;
mod txn;

pub use handle::{
    CheckpointPolicy, CommitMode, CommitRecord, DbHandle, Durability, FeedCommit, ReplAck,
};
pub use txn::{CommitInfo, Transaction, WriteKey};

// the durability knob's vocabulary, so sessions need no direct wal dep
pub use mad_wal::{CheckpointStats, FaultPlan, FsyncPolicy, RecoveryInfo, TailRead, WalOp};
