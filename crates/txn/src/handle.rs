//! The shared database handle: committed state, publication, commit log,
//! durability.
//!
//! # The commit pipeline
//!
//! Publication used to be one mutex-guarded critical section (validation,
//! WAL append, published-cell swap, feed push, log pruning — all under one
//! lock). It is now a staged pipeline (normative description in
//! ARCHITECTURE.md, "The commit pipeline"):
//!
//! * **Validate** — first-committer-wins probes run against the
//!   [`crate::shard::ConflictIndex`], 16 independently locked shards
//!   visited in ascending index order, so disjoint write-sets validate
//!   concurrently with each other *and* with the fsync of earlier commits.
//! * **Publish** — the short commit **ticket** assigns the commit
//!   sequence, appends the WAL record (buffered — no fsync), updates the
//!   conflict shards and commit log, swaps the
//!   [`mad_storage::EpochCell`]-published image and pushes the
//!   replication feed. Feed order therefore *is* commit order.
//! * **Fsync / replication wait** — outside every lock. While commit `k`
//!   sits in the group-commit fsync window, commit `k+1` validates and
//!   publishes: the WAL stays seq-ordered (appends happen under the
//!   ticket) and acknowledgment still waits for durability.
//!
//! Readers never queue behind any of it: [`DbHandle::committed`] /
//! [`DbHandle::fork`] read the epoch cell, which is wait-free against
//! writers. Commit-log pruning runs off the commit path entirely
//! (amortized into transaction finish, see [`DbHandle::prune_commit_log`]).
//!
//! The pre-pipeline behavior — every attempt serialized start to finish —
//! is preserved behind [`CommitMode::SingleLock`] as an A/B arm and as the
//! oracle for the pipeline's equivalence proptests.

use crate::shard::{ActiveRegistry, ConflictIndex};
use crate::txn::WriteKey;
use mad_model::bin::u64_of_usize;
use mad_model::{FxHashMap, FxHashSet, MadError, Result};
use mad_obs::trace::{StageKind, StageTimer};
use mad_obs::{Counter, Registry};
use mad_storage::{Database, EpochCell};
use mad_wal::{CheckpointStats, FaultPlan, FsyncPolicy, Lsn, RecoveryInfo, TailRead, Wal, WalOp};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// A poisoned handle lock means a panic escaped another thread while the
/// shared commit state was mid-update. `Result`-returning paths surface
/// that as a transaction-state error instead of cascading the panic into
/// every client thread; infallible accessors propagate the panic (each
/// such site carries a `check: allow(panic, …)` annotation).
fn poisoned<T>(_: PoisonError<T>) -> MadError {
    MadError::txn_state(
        "handle poisoned: a thread panicked while holding the commit state",
    )
}

/// One published commit: its sequence number and the write-set keys it
/// published. Kept (pruned) for first-committer-wins validation of
/// transactions that began before it.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// The commit sequence number this record was published at.
    pub seq: u64,
    /// The pre-existing state the commit overwrote.
    pub keys: Vec<WriteKey>,
}

/// Does (and how does) the handle persist committed transactions?
#[derive(Clone, Debug, Default)]
pub enum Durability {
    /// In-memory only (the default): committed state dies with the
    /// process.
    #[default]
    None,
    /// Write-ahead logging: every commit appends its resolved op log to
    /// the log at `path` before acknowledging, per `fsync`.
    Wal {
        /// The log file.
        path: PathBuf,
        /// When commits wait for stable storage.
        fsync: FsyncPolicy,
    },
}

/// Which commit protocol the handle runs — the A/B knob for the staged
/// pipeline (see the module docs). Both modes publish identical images,
/// abort identical transaction sets and write identical WAL bytes; only
/// the concurrency of the path differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitMode {
    /// The staged pipeline (the default): sharded validation, short
    /// publication ticket, fsync outside all locks.
    #[default]
    Pipelined,
    /// The legacy protocol: every publication attempt serialized start to
    /// finish under one gate. Kept as the benchmark A/B arm and as the
    /// proptest oracle.
    SingleLock,
}

/// When does a commit acknowledge with respect to **replication** — the
/// knob beside [`FsyncPolicy`], governing standbys instead of disks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplAck {
    /// Acknowledge as soon as the commit is locally durable (the
    /// default); standbys catch up asynchronously. A primary failure can
    /// lose acknowledged commits that no standby had received yet.
    #[default]
    Async,
    /// Acknowledge only after at least `n` registered standbys have
    /// confirmed the commit durably appended to *their* logs — after
    /// promotion of any confirming standby, every acknowledged commit
    /// still exists. Blocks while fewer than `n` standbys are attached;
    /// sealing replication (shutdown, promotion) errors the waiters.
    SyncQuorum(usize),
}

/// One commit as seen by a replication subscriber: the sequence number
/// and the resolved op log exactly as written to the primary's WAL.
#[derive(Clone, Debug)]
pub struct FeedCommit {
    /// The commit sequence number.
    pub seq: u64,
    /// The resolved op log (provisional ids already remapped).
    pub ops: Vec<WalOp>,
}

/// Size/record-count triggers for automatic [`DbHandle::checkpoint`]s, so
/// the log — and with it recovery time and replication-bootstrap images —
/// stays bounded without anyone typing `CHECKPOINT`. Both triggers unset
/// (the default) disables auto-checkpointing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once the log exceeds this many bytes.
    pub max_bytes: Option<u64>,
    /// Checkpoint once this many commits accumulated since the last one.
    pub max_commits: Option<u64>,
}

impl CheckpointPolicy {
    /// Is any trigger armed?
    pub fn is_enabled(&self) -> bool {
        self.max_bytes.is_some() || self.max_commits.is_some()
    }
}

/// Replication bookkeeping: the ack mode, each registered standby's
/// durably-acknowledged sequence, and the seal.
#[derive(Debug, Default)]
struct ReplState {
    mode: ReplAck,
    /// Standby token → highest sequence that standby confirmed durable.
    standbys: FxHashMap<u64, u64>,
    next_token: u64,
    /// Sealed: no further acknowledgment can arrive (shutdown or
    /// promotion); quorum waiters error instead of blocking forever.
    sealed: bool,
}

/// The commit **ticket**: the one short critical section of the pipeline.
/// Holding it assigns the next commit sequence, orders the WAL append,
/// swaps the epoch cell and pushes the feed — nothing else. It is never
/// held across an fsync, a replay, validation probes or pruning.
#[derive(Debug)]
struct TicketState {
    /// Monotone commit sequence number (0 = the initial load).
    seq: u64,
    /// Live replication subscribers. Commits are pushed here under the
    /// ticket, so feed order **is** commit order; a subscriber whose
    /// receiver is gone is dropped on the next push.
    feeds: Vec<mpsc::Sender<FeedCommit>>,
}

/// The committed image plus the sequence it was published at — the value
/// inside the epoch cell. Cloned out atomically on every read, so the
/// `(db, seq)` pair is always consistent.
#[derive(Clone, Debug)]
struct PublishedImage {
    /// The committed image. Immutable once published; replaced wholesale.
    db: Arc<Database>,
    /// The sequence number `db` was published at.
    seq: u64,
}

#[derive(Debug)]
struct Inner {
    /// The [`CommitMode::SingleLock`] gate: wraps a whole publication
    /// attempt, restoring the pre-pipeline one-at-a-time protocol. Under
    /// [`CommitMode::Pipelined`] it doubles as the straggler contention
    /// gate (see [`DbHandle::contention_gate`]).
    legacy_gate: Mutex<()>,
    /// The commit ticket (see [`TicketState`]).
    ticket: Mutex<TicketState>,
    /// The published image: readers are wait-free against publications.
    published: EpochCell<PublishedImage>,
    /// Active-transaction registry, sharded (see [`ActiveRegistry`]).
    registry: ActiveRegistry,
    /// First-committer-wins conflict index, sharded (see
    /// [`ConflictIndex`]).
    conflict: ConflictIndex,
    /// Commit records newer than the oldest active transaction's begin
    /// (ordered by `seq`, since publication pushes under the ticket).
    /// Pruned off the commit path — see [`DbHandle::prune_commit_log`].
    commit_log: Mutex<Vec<CommitRecord>>,
    /// Mirror of `commit_log.len()` (maintained under the `commit_log`
    /// lock) so finish-path pruning can skip an empty log without
    /// locking it.
    log_records: AtomicUsize,
    /// True when the handle runs [`CommitMode::SingleLock`].
    single_lock: AtomicBool,
    /// The write-ahead log, when the handle is durable.
    wal: Option<Wal>,
    durability: Durability,
    /// What recovery found, when this handle was opened from a log.
    recovery: Option<RecoveryInfo>,
    /// A standby's serving handle: writes are refused at publication (the
    /// replication replayer installs state through
    /// [`DbHandle::install_replicated`] instead).
    read_only: bool,
    /// Replication ack bookkeeping, with its condvar for quorum waits.
    repl: Mutex<ReplState>,
    repl_cv: Condvar,
    /// Auto-checkpoint knob and counters (interior-mutable so the policy
    /// can be set on a running handle).
    ckpt_policy: Mutex<CheckpointPolicy>,
    /// Fast-path gate: true only when a policy is armed on a durable
    /// handle, so undurable/unconfigured commits pay one relaxed load.
    ckpt_armed: AtomicBool,
    /// Commits since the last checkpoint (any kind).
    commits_since_ckpt: AtomicU64,
    /// Claimed by the one committer running an auto-checkpoint, so a
    /// burst of over-threshold commits triggers one rewrite, not many.
    ckpt_claimed: AtomicBool,
    /// Auto-checkpoints completed (monitoring/tests).
    auto_ckpts: AtomicU64,
    /// The deployment-wide metrics registry (see [`mad_obs`]): the WAL,
    /// replication endpoints, sessions and servers over this handle all
    /// register here; `SHOW STATS` renders a snapshot.
    obs: Registry,
    /// Hot-path commit counters (handles into `obs` — increments never
    /// touch the registry map).
    metrics: TxnMetrics,
}

/// Counter handles the commit protocol bumps inline.
#[derive(Debug)]
struct TxnMetrics {
    /// Commits published (`txn.commits`).
    commits: Counter,
    /// First-committer-wins validation failures (`txn.conflicts`).
    conflicts: Counter,
    /// Op-log replays after a stale publication attempt (`txn.replays`).
    replays: Counter,
    /// Commits that lost the publication race repeatedly and escalated to
    /// the contention gate (`txn.escalations`).
    escalations: Counter,
}

/// A cloneable, thread-safe handle to one shared MAD database.
///
/// All sessions of a deployment hold clones of one `DbHandle`. Readers take
/// a consistent frozen image with [`DbHandle::committed`]; writers go
/// through [`crate::Transaction`]. Publication is atomic: the committed
/// `Arc<Database>` is swapped through an [`EpochCell`], in-flight readers
/// keep whatever image they already cloned, and new readers are never
/// blocked behind commit validation or a WAL fsync — not even behind the
/// publication ticket itself.
///
/// A durable handle ([`DbHandle::create_durable`] /
/// [`DbHandle::open_durable`] / [`DbHandle::with_durability`]) additionally
/// appends every commit's resolved op log to a [`Wal`] before
/// acknowledging it, and can [`DbHandle::checkpoint`] the log back down to
/// a bootstrap image.
#[derive(Clone, Debug)]
pub struct DbHandle {
    inner: Arc<Inner>,
}

impl DbHandle {
    /// Wrap a loaded database as commit 0 of a shared, **non-durable**
    /// handle.
    pub fn new(db: Database) -> Self {
        Self::build(db, 0, None, Durability::None, None, false)
    }

    /// Wrap `db` — replicated state at commit sequence `seq` — as a
    /// **read-only** serving handle: sessions read ordinary snapshots,
    /// but any write is refused at publication with
    /// [`mad_model::MadError::TxnState`]. The replication replayer
    /// advances the handle through [`DbHandle::install_replicated`];
    /// durability of the replicated stream is the replayer's own local
    /// WAL, not this handle's.
    pub fn new_read_only(db: Database, seq: u64) -> Self {
        Self::build(db, seq, None, Durability::None, None, true)
    }

    /// Wrap `db` as the bootstrap image of a **new** write-ahead log at
    /// `path` (error if the log already exists — recover with
    /// [`DbHandle::open_durable`] instead).
    pub fn create_durable(
        db: Database,
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let wal = Wal::create(&path, &db, fsync)?;
        Ok(Self::build(db, 0, Some(wal), Durability::Wal { path, fsync }, None, false))
    }

    /// Recover the committed state from the write-ahead log at `path`
    /// (error if it does not exist): torn tail truncated, bootstrap image
    /// restored, every complete commit record replayed.
    pub fn open_durable(path: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let (wal, db, info) = Wal::recover(&path, fsync)?;
        Ok(Self::build(
            db,
            info.last_seq,
            Some(wal),
            Durability::Wal { path, fsync },
            Some(info),
            false,
        ))
    }

    /// The `Durability` knob as one constructor: [`Durability::None`]
    /// behaves like [`DbHandle::new`]; [`Durability::Wal`] opens the log
    /// if it exists (recovering from it — `db` is then **ignored** in
    /// favor of the logged state) and otherwise creates it with `db` as
    /// the bootstrap image.
    pub fn with_durability(db: Database, durability: Durability) -> Result<Self> {
        match durability {
            Durability::None => Ok(Self::new(db)),
            Durability::Wal { path, fsync } => {
                if path.exists() {
                    Self::open_durable(path, fsync)
                } else {
                    Self::create_durable(db, path, fsync)
                }
            }
        }
    }

    fn build(
        db: Database,
        seq: u64,
        wal: Option<Wal>,
        durability: Durability,
        recovery: Option<RecoveryInfo>,
        read_only: bool,
    ) -> Self {
        let obs = Registry::new();
        let metrics = TxnMetrics {
            commits: obs.counter("txn.commits"),
            conflicts: obs.counter("txn.conflicts"),
            replays: obs.counter("txn.replays"),
            escalations: obs.counter("txn.escalations"),
        };
        let handle = DbHandle {
            inner: Arc::new(Inner {
                legacy_gate: Mutex::new(()),
                ticket: Mutex::new(TicketState { seq, feeds: Vec::new() }),
                published: EpochCell::new(PublishedImage { db: Arc::new(db), seq }),
                registry: ActiveRegistry::new(),
                conflict: ConflictIndex::new(),
                commit_log: Mutex::new(Vec::new()),
                log_records: AtomicUsize::new(0),
                single_lock: AtomicBool::new(false),
                wal,
                durability,
                recovery,
                read_only,
                repl: Mutex::new(ReplState::default()),
                repl_cv: Condvar::new(),
                ckpt_policy: Mutex::new(CheckpointPolicy::default()),
                ckpt_armed: AtomicBool::new(false),
                commits_since_ckpt: AtomicU64::new(0),
                ckpt_claimed: AtomicBool::new(false),
                auto_ckpts: AtomicU64::new(0),
                obs,
                metrics,
            }),
        };
        handle.register_gauges();
        handle
    }

    /// Register the handle's poll-gauges: the one surface `SHOW STATS`
    /// reads, folding what used to be ad-hoc accessors
    /// ([`DbHandle::commit_log_len`], [`DbHandle::conflict_index_len`],
    /// the WAL stats accessors…) into the registry. Closures capture a
    /// `Weak` so a handle (and its WAL file handles) can still drop
    /// while a server-side registry clone outlives it; each closure
    /// takes at most one ranked lock at a time and nests nothing inside
    /// it (shard sums lock one shard at a time; epoch-cell reads take no
    /// ranked lock at all).
    fn register_gauges(&self) {
        let obs = &self.inner.obs;
        let weak = {
            let w = Arc::downgrade(&self.inner);
            move || w.clone()
        };
        {
            let w = weak();
            obs.gauge("txn.seq", move || w.upgrade().map(|i| i.published.read().seq));
        }
        {
            let w = weak();
            obs.gauge("txn.commit_log", move || {
                w.upgrade().map(|i| u64_of_usize(i.log_records.load(Ordering::Relaxed)))
            });
        }
        {
            let w = weak();
            obs.gauge("txn.conflict_index", move || {
                w.upgrade().map(|i| u64_of_usize(i.conflict.len_total()))
            });
        }
        {
            let w = weak();
            obs.gauge("txn.active", move || {
                w.upgrade().map(|i| u64_of_usize(i.registry.active_total()))
            });
        }
        {
            let w = weak();
            obs.gauge("txn.auto_checkpoints", move || {
                w.upgrade().map(|i| i.auto_ckpts.load(Ordering::Relaxed))
            });
        }
        {
            // pairs re-frozen by the published image's last CSR rebuild
            // (the registry face of `Database::csr_rebuild_stats`).
            // `None` would reap the gauge, so "no rebuild yet" reads 0.
            let w = weak();
            obs.gauge("storage.csr_rebuilt_pairs", move || {
                w.upgrade().map(|i| {
                    let img = i.published.read();
                    let (rebuilt, _) = img.db.csr_rebuild_stats().unwrap_or((0, 0));
                    u64_of_usize(rebuilt)
                })
            });
        }
        {
            let w = weak();
            obs.gauge("storage.csr_pairs", move || {
                w.upgrade().map(|i| {
                    let img = i.published.read();
                    let (_, total) = img.db.csr_rebuild_stats().unwrap_or((0, 0));
                    u64_of_usize(total)
                })
            });
        }
        if self.is_durable() {
            {
                let w = weak();
                obs.gauge("wal.len_bytes", move || {
                    w.upgrade().and_then(|i| i.wal.as_ref().map(Wal::len_bytes))
                });
            }
            {
                let w = weak();
                obs.gauge("wal.fsyncs", move || {
                    w.upgrade().and_then(|i| i.wal.as_ref().map(Wal::fsync_count))
                });
            }
            {
                let w = weak();
                obs.gauge("wal.group_batches", move || {
                    w.upgrade()
                        .and_then(|i| i.wal.as_ref().map(|wal| wal.group_commit_stats().0))
                });
            }
            {
                let w = weak();
                obs.gauge("wal.group_records", move || {
                    w.upgrade()
                        .and_then(|i| i.wal.as_ref().map(|wal| wal.group_commit_stats().1))
                });
            }
        }
        {
            let w = weak();
            obs.text("repl.mode", move || {
                w.upgrade().and_then(|i| {
                    i.repl.lock().ok().map(|r| match r.mode {
                        ReplAck::Async => "async".to_owned(),
                        ReplAck::SyncQuorum(n) => format!("sync_quorum({n})"),
                    })
                })
            });
        }
        {
            let w = weak();
            obs.gauge("repl.sealed", move || {
                w.upgrade().and_then(|i| i.repl.lock().ok().map(|r| u64::from(r.sealed)))
            });
        }
        {
            let w = weak();
            obs.gauge("repl.standbys", move || {
                w.upgrade()
                    .and_then(|i| i.repl.lock().ok().map(|r| u64_of_usize(r.standbys.len())))
            });
        }
        {
            // per-standby replication cursor and lag-in-records — one
            // `repl.standby.<token>.{acked_seq,lag}` row pair per
            // attached standby. The committed seq is read first (epoch
            // cell, no lock) and the repl lock taken after.
            let w = weak();
            obs.multi("repl.standby", move || {
                w.upgrade().and_then(|i| {
                    let seq = i.published.read().seq;
                    let r = i.repl.lock().ok()?;
                    let mut rows = Vec::with_capacity(r.standbys.len() * 2);
                    for (token, &acked) in &r.standbys {
                        rows.push((format!("{token}.acked_seq"), acked));
                        rows.push((format!("{token}.lag"), seq.saturating_sub(acked)));
                    }
                    Some(rows)
                })
            });
        }
    }

    /// The deployment-wide metrics registry. Sessions, servers and
    /// replication endpoints over this handle register their metrics
    /// here; `SHOW STATS` renders a [`Registry::snapshot`]. Snapshots
    /// poll gauges that take the handle's ranked locks, so never call
    /// [`Registry::snapshot`] while holding one.
    pub fn obs(&self) -> &Registry {
        &self.inner.obs
    }

    /// Bump the op-log-replay counter (`txn.replays`) — called by the
    /// contended commit path in [`crate::Transaction`].
    pub(crate) fn count_replay(&self) {
        self.inner.metrics.replays.inc();
    }

    /// The contention gate for straggler commits (ARCHITECTURE.md, "The
    /// commit pipeline"): a pipelined committer that keeps losing the
    /// publication race takes this gate and holds it across its remaining
    /// replay attempts, so stragglers rebuild one at a time instead of
    /// racing each other into O(writers) wasted replays apiece. The mutex
    /// is the [`CommitMode::SingleLock`] whole-pipeline gate; under that
    /// mode [`DbHandle::publish_if`] acquires it itself, so this returns
    /// `None` to keep the non-reentrant lock single-entry (the gate's
    /// serialization already applies to every attempt there). Callers
    /// that got `Some` must pass `gate_held = true` to `publish_if` and
    /// drop the guard *before* any durability or replication wait.
    pub(crate) fn contention_gate(&self) -> Result<Option<MutexGuard<'_, ()>>> {
        if self.inner.single_lock.load(Ordering::Relaxed) {
            return Ok(None);
        }
        self.inner.metrics.escalations.inc();
        self.inner.legacy_gate.lock().map(Some).map_err(poisoned)
    }

    /// How this handle persists commits.
    pub fn durability(&self) -> &Durability {
        &self.inner.durability
    }

    /// Does this handle refuse writes (a standby's serving handle)?
    pub fn is_read_only(&self) -> bool {
        self.inner.read_only
    }

    /// Switch the commit protocol (see [`CommitMode`]). Takes effect for
    /// publication attempts that start afterwards; attempts already in
    /// flight finish under the mode they started with. Both modes are
    /// always safe to mix — the pipeline's ticket and shard locks are
    /// acquired in [`CommitMode::SingleLock`] too, the gate merely
    /// serializes whole attempts on top.
    pub fn set_commit_mode(&self, mode: CommitMode) {
        self.inner
            .single_lock
            .store(mode == CommitMode::SingleLock, Ordering::Relaxed);
    }

    /// The commit protocol currently in effect.
    pub fn commit_mode(&self) -> CommitMode {
        if self.inner.single_lock.load(Ordering::Relaxed) {
            CommitMode::SingleLock
        } else {
            CommitMode::Pipelined
        }
    }

    // ------------------------------------------------------------------
    // replication
    // ------------------------------------------------------------------

    /// Set the replication acknowledgment mode (see [`ReplAck`]). Takes
    /// effect for commits that reach their replication wait afterwards;
    /// loosening to [`ReplAck::Async`] releases current quorum waiters.
    pub fn set_repl_ack(&self, mode: ReplAck) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        repl.mode = mode;
        self.inner.repl_cv.notify_all();
    }

    /// The current replication acknowledgment mode.
    pub fn repl_ack(&self) -> ReplAck {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.repl.lock().unwrap().mode
    }

    /// Subscribe to the commit feed: every commit published from now on
    /// is delivered as a [`FeedCommit`], in exact commit order (the push
    /// happens under the commit ticket, which is what orders
    /// publication). Only durable handles feed subscribers — the stream
    /// *is* the WAL record stream — so a subscription on a non-durable
    /// handle never receives anything. Dropping the receiver
    /// unsubscribes on the next push.
    pub fn subscribe_commits(&self) -> mpsc::Receiver<FeedCommit> {
        let (tx, rx) = mpsc::channel();
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.ticket.lock().unwrap().feeds.push(tx);
        rx
    }

    /// Read committed records newer than `from_seq` back out of the WAL
    /// — the replication catch-up source (`None` on non-durable handles).
    /// [`TailRead::SnapshotNeeded`] means a checkpoint folded the
    /// requested records away and the subscriber needs a full snapshot.
    pub fn wal_tail_commits(&self, from_seq: u64) -> Result<Option<TailRead>> {
        match &self.inner.wal {
            Some(wal) => wal.tail_commits(from_seq).map(Some),
            None => Ok(None),
        }
    }

    /// Register a standby for quorum accounting; returns its token.
    pub fn register_standby(&self) -> u64 {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        let token = repl.next_token;
        repl.next_token += 1;
        repl.standbys.insert(token, 0);
        token
    }

    /// Record that the standby behind `token` has durably appended every
    /// record up to and including `seq`, waking quorum waiters.
    pub fn standby_ack(&self, token: u64, seq: u64) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        if let Some(have) = repl.standbys.get_mut(&token) {
            *have = (*have).max(seq);
            self.inner.repl_cv.notify_all();
        }
    }

    /// Deregister a standby (its connection died). Its acknowledgments no
    /// longer count toward quorums.
    pub fn standby_gone(&self, token: u64) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        repl.standbys.remove(&token);
        self.inner.repl_cv.notify_all();
    }

    /// Seal replication: no further acknowledgment can arrive (server
    /// shutdown, primary demotion). Current and future quorum waiters
    /// error instead of blocking forever — their commits are published
    /// and locally durable, but replication is unknown, the same
    /// post-publication indeterminacy as a failed fsync wait.
    pub fn seal_replication(&self) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        repl.sealed = true;
        self.inner.repl_cv.notify_all();
    }

    /// Block until `seq` satisfies the [`ReplAck`] mode: immediately for
    /// [`ReplAck::Async`], else until `n` standbys acknowledged `seq` (or
    /// the seal errors the wait).
    pub(crate) fn wait_replicated(&self, seq: u64) -> Result<()> {
        let mut repl = self.inner.repl.lock().map_err(poisoned)?;
        loop {
            let need = match repl.mode {
                ReplAck::Async => return Ok(()),
                ReplAck::SyncQuorum(n) => n,
            };
            if repl.standbys.values().filter(|&&have| have >= seq).count() >= need {
                return Ok(());
            }
            if repl.sealed {
                return Err(MadError::txn_state(format!(
                    "replication sealed before {need} standby(s) acknowledged sequence \
                     {seq}; the commit is published and locally durable but its \
                     replication is unknown"
                )));
            }
            repl = self.inner.repl_cv.wait(repl).map_err(poisoned)?;
        }
    }

    /// Install the next replicated commit's state — the standby
    /// replayer's publication path, valid only on
    /// [`DbHandle::new_read_only`] handles. `seq` must be exactly the
    /// successor of the current sequence: replication replays the commit
    /// history gap-free or not at all.
    pub fn install_replicated(&self, db: Database, seq: u64) -> Result<()> {
        if !self.inner.read_only {
            return Err(MadError::txn_state(
                "install_replicated is the standby path; this handle takes writes \
                 through transactions",
            ));
        }
        let mut t = self.inner.ticket.lock().map_err(poisoned)?;
        if seq != t.seq + 1 {
            return Err(MadError::txn_state(format!(
                "replication gap: handle is at sequence {}, install asked for {seq}",
                t.seq
            )));
        }
        t.seq = seq;
        self.inner.published.publish(PublishedImage { db: Arc::new(db), seq });
        Ok(())
    }

    /// Install a **full replicated snapshot** at `seq` — the standby's
    /// resynchronization path, used when the primary's log no longer
    /// holds the records after the standby's cursor (a checkpoint folded
    /// them away) and replication restarts from a bootstrap image.
    /// Unlike [`DbHandle::install_replicated`] this may jump forward over
    /// a gap — the snapshot *is* the missing history — but never
    /// backwards. Valid only on [`DbHandle::new_read_only`] handles.
    pub fn install_snapshot(&self, db: Database, seq: u64) -> Result<()> {
        if !self.inner.read_only {
            return Err(MadError::txn_state(
                "install_snapshot is the standby path; this handle takes writes \
                 through transactions",
            ));
        }
        let mut t = self.inner.ticket.lock().map_err(poisoned)?;
        if seq < t.seq {
            return Err(MadError::txn_state(format!(
                "replication regression: handle is at sequence {}, snapshot install \
                 asked for {seq}",
                t.seq
            )));
        }
        t.seq = seq;
        self.inner.published.publish(PublishedImage { db: Arc::new(db), seq });
        Ok(())
    }

    // ------------------------------------------------------------------
    // auto-checkpoint
    // ------------------------------------------------------------------

    /// Arm (or, with an empty policy, disarm) automatic checkpointing.
    /// Commits that push the log over a trigger fold it down inline —
    /// one committer at a time — so log size stays bounded without a
    /// manual `CHECKPOINT`. No effect on non-durable handles.
    pub fn set_checkpoint_policy(&self, policy: CheckpointPolicy) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        *self.inner.ckpt_policy.lock().unwrap() = policy;
        self.inner
            .ckpt_armed
            .store(policy.is_enabled() && self.is_durable(), Ordering::SeqCst);
    }

    /// The current auto-checkpoint policy.
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        *self.inner.ckpt_policy.lock().unwrap()
    }

    /// Auto-checkpoints completed since open.
    pub fn auto_checkpoint_count(&self) -> u64 {
        self.inner.auto_ckpts.load(Ordering::Relaxed)
    }

    /// Post-commit trigger check: fold the log if the armed policy says
    /// so. At most one committer runs the rewrite; the rest skip. An
    /// auto-checkpoint failure is **not** the commit's failure (the
    /// commit is already durable) — a genuinely sick log poisons itself
    /// and surfaces on the next commit.
    pub(crate) fn maybe_auto_checkpoint(&self) {
        if !self.inner.ckpt_armed.load(Ordering::Relaxed) {
            return;
        }
        let policy = self.checkpoint_policy();
        let over_bytes = policy
            .max_bytes
            .is_some_and(|m| self.wal_len_bytes().unwrap_or(0) > m);
        let over_commits = policy
            .max_commits
            .is_some_and(|m| self.inner.commits_since_ckpt.load(Ordering::Relaxed) >= m);
        if !(over_bytes || over_commits) {
            return;
        }
        if self.inner.ckpt_claimed.swap(true, Ordering::SeqCst) {
            return; // another committer is already rewriting
        }
        if self.checkpoint().is_ok() {
            self.inner.auto_ckpts.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.ckpt_claimed.store(false, Ordering::SeqCst);
    }

    /// Arm (or, with `None`, clear) deterministic WAL fault injection —
    /// the crash/failover scenarios' hook (see [`FaultPlan`]). Returns
    /// whether a log was armed (`false` on non-durable handles).
    pub fn set_wal_fault_plan(&self, plan: Option<FaultPlan>) -> bool {
        match &self.inner.wal {
            Some(wal) => {
                wal.set_fault_plan(plan);
                true
            }
            None => false,
        }
    }

    /// Is every commit written ahead to a log?
    pub fn is_durable(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// What recovery found when this handle was opened from an existing
    /// log (`None` for fresh or non-durable handles).
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.inner.recovery
    }

    /// Current write-ahead-log size in bytes, summed over its segments
    /// (`None` when not durable).
    pub fn wal_len_bytes(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(Wal::len_bytes)
    }

    /// Fsyncs the log has performed since open (`None` when not durable).
    /// Group commit shows up as `fsyncs ≪ commits`.
    pub fn wal_fsync_count(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(Wal::fsync_count)
    }

    /// Fold the log into a fresh bootstrap image of the current committed
    /// state and drop every commit record, bounding log size and recovery
    /// time. Commits (and replicated installs) are held off for the whole
    /// rewrite by the commit ticket; snapshot readers and transaction
    /// begins are not. Errors on a non-durable handle.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        let Some(wal) = &self.inner.wal else {
            return Err(MadError::wal(
                "CHECKPOINT requires a durable handle (no write-ahead log attached)",
            ));
        };
        // hold the commit ticket so no commit appends mid-rewrite; the
        // epoch cell is read under it, so (db, seq) is the final word
        let _t = self.inner.ticket.lock().map_err(poisoned)?;
        let img = self.inner.published.read();
        // check: allow(lock, "resolves to Wal::checkpoint (sync/files), not DbHandle::checkpoint; the name-keyed call graph conflates them")
        let stats = wal.checkpoint(&img.db, img.seq)?;
        self.inner.commits_since_ckpt.store(0, Ordering::Relaxed);
        Ok(stats)
    }

    /// The current committed image. The returned `Arc` is a consistent
    /// snapshot: it never changes, no matter what commits afterwards.
    ///
    /// This is an epoch-cell read off the publication fast path: it holds
    /// no ranked lock at all, so a reader is never blocked behind commit
    /// validation, the publication ticket, op-log replay or a WAL fsync.
    pub fn committed(&self) -> Arc<Database> {
        self.inner.published.read().db
    }

    /// The current commit sequence number (how many commits have been
    /// published). Sessions use it to detect that their cached fork of the
    /// committed state is stale.
    pub fn commit_seq(&self) -> u64 {
        self.inner.published.read().seq
    }

    /// A copy-on-write fork of the committed image plus the sequence number
    /// it was taken at — the cheap way for a session to get a *mutable*
    /// working copy (e.g. for autocommit query scratch space).
    pub fn fork(&self) -> (Database, u64) {
        let img = self.inner.published.read();
        ((*img.db).clone(), img.seq)
    }

    /// How many commit records the first-committer-wins log currently
    /// retains (bounded by in-flight contention; exposed for tests and
    /// monitoring).
    pub fn commit_log_len(&self) -> usize {
        // check: allow(panic, "monitoring accessor; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.commit_log.lock().unwrap().len()
    }

    /// How many distinct write keys the commit-validation hash index
    /// currently covers (pruned together with the commit log; exposed for
    /// tests and monitoring).
    pub fn conflict_index_len(&self) -> usize {
        self.inner.conflict.len_total()
    }

    /// Begin bookkeeping: returns `(committed image, begin_seq, registry
    /// shard)` — the transaction registers as active in one registry
    /// shard and the image is read inside that shard's critical section
    /// (what makes pruning's cutoff sound; see
    /// [`ActiveRegistry::register_begin`]).
    pub(crate) fn begin_txn(&self) -> (Arc<Database>, u64, usize) {
        self.inner.registry.register_begin(|| {
            let img = self.inner.published.read();
            (img.db, img.seq)
        })
    }

    /// Drop an active transaction's registration (abort, or the cleanup
    /// half of commit) and prune the commit log. Idempotence lives one
    /// level up: [`crate::Transaction`] releases its registration exactly
    /// once (its `finish` is called on commit, abort **and** plain drop —
    /// early return, panic, a disconnected client), so a leaked
    /// registration can never pin the log forever.
    pub(crate) fn finish_txn(&self, begin_seq: u64, reg_shard: usize) {
        self.inner.registry.unregister_begin(reg_shard, begin_seq);
        self.prune();
    }

    /// Prune dead commit records and their conflict-index entries — the
    /// amortized cleanup the commit critical path no longer carries. Runs
    /// automatically on every transaction finish; public so operators and
    /// tests can force it. Touches the registry shards, the commit log
    /// and the conflict shards, but **never** the commit ticket: a pinned
    /// 10k-record log costs committers nothing beyond their own probes.
    pub fn prune_commit_log(&self) {
        self.prune();
    }

    fn prune(&self) {
        if self.inner.log_records.load(Ordering::Relaxed) == 0 {
            return;
        }
        // every active transaction with begin b validates against records
        // with seq > b, so records at or below the oldest begin are dead;
        // with no active transactions everything up to the current
        // sequence is (see `ActiveRegistry::oldest_begin` for why no
        // concurrent begin can observe a sequence below the cutoff)
        let cutoff = self.inner.registry.oldest_begin(|| self.inner.published.read().seq);
        let dead = {
            // check: allow(panic, "infallible cleanup; poison means a panic already escaped mid-update and propagating it is the honest outcome")
            let mut log = self.inner.commit_log.lock().unwrap();
            // the log is seq-ordered (pushes happen under the ticket):
            // split off the dead prefix — O(log n) and no allocation when
            // a pinned transaction keeps everything alive
            let keep_from = log.partition_point(|r| r.seq <= cutoff);
            if keep_from == 0 {
                return;
            }
            let mut dead = std::mem::take(&mut *log);
            let live = dead.split_off(keep_from);
            *log = live;
            self.inner.log_records.store(log.len(), Ordering::Relaxed);
            dead
        };
        // index entries die outside the log lock; per-(key, seq) checks
        // keep this safe against concurrent publications of the same key
        self.inner.conflict.remove_dead(&dead);
    }

    /// One optimistic publication attempt — the **Validate** and
    /// **Publish** stages of the pipeline (module docs). Validation
    /// probes the sharded conflict index without any global lock; the
    /// ticket is then held only for sequence assignment, the buffered WAL
    /// append, the index/log updates and the epoch-cell swap. Fsync
    /// waiting and op-log replay happen in the caller, outside
    /// everything, which is what lets commit `k+1` validate while commit
    /// `k` fsyncs.
    ///
    /// The transaction's registration is **not** touched here: on every
    /// outcome the caller still owns it and releases it through
    /// [`DbHandle::finish_txn`] (commit success/failure, abort, or drop).
    ///
    /// * `Err(TxnConflict)` — first-committer-wins validation failed;
    ///   nothing was published. A WAL append failure reports the same way
    ///   (as its own error): nothing was published.
    /// * `Ok(Published { .. })` — `candidate` was built against `expected`
    ///   and `expected` is still the committed state: record logged (when
    ///   durable) and published. The caller must still await `lsn` per the
    ///   fsync policy before acknowledging.
    /// * `Ok(Stale(current))` — another commit landed since `expected` was
    ///   observed; the caller must replay against `current` and try again.
    ///   (A conflicting commit that lands between our shard probes and the
    ///   ticket also lands here: it necessarily swapped the published
    ///   image, so the retry re-validates against its index entries.)
    ///
    /// `gate_held` — the caller already holds the contention gate (see
    /// [`DbHandle::contention_gate`]); skip acquiring it here even if the
    /// handle switched to [`CommitMode::SingleLock`] mid-commit, since the
    /// gate and the single-lock gate are the same (non-reentrant) mutex.
    pub(crate) fn publish_if(
        &self,
        begin_seq: u64,
        expected: &Arc<Database>,
        keys: &FxHashSet<WriteKey>,
        candidate: Database,
        wal_ops: Option<&[WalOp]>,
        gate_held: bool,
    ) -> Result<PublishOutcome> {
        if self.inner.read_only {
            // the hard guarantee under the Session-level nicety: nothing
            // publishes through a standby's serving handle
            return Err(MadError::txn_state(
                "this handle serves a read-only standby; writes must go to the primary",
            ));
        }
        if self.inner.wal.is_some() && wal_ops.is_none() {
            // a durable handle was handed no ops — a caller bug, and
            // publishing would silently lose the commit on restart
            return Err(MadError::wal(
                "durable publication without a serialized op log",
            ));
        }
        let _legacy = if self.inner.single_lock.load(Ordering::Relaxed) && !gate_held {
            Some(self.inner.legacy_gate.lock().map_err(poisoned)?)
        } else {
            None
        };
        // Validate: first-committer-wins — any committed write since our
        // begin that overlaps our write-set aborts us. One hash probe per
        // key of OUR write-set against its conflict shard; disjoint
        // write-sets never serialize here.
        let vt = StageTimer::start(StageKind::Validate);
        let probes = u64_of_usize(keys.len());
        if let Some((key, seq)) = self.inner.conflict.find_conflict(keys.iter(), begin_seq) {
            self.inner.metrics.conflicts.inc();
            vt.finish_info(&[("probes", probes), ("conflict", 1)]);
            return Err(MadError::txn_conflict(format!(
                "write-write conflict on {key} with the transaction committed at sequence {seq}"
            )));
        }
        vt.finish_info(&[("probes", probes)]);
        // Publish: the short ticket. Publication is ordered here, so the
        // staleness check under it is the final word on `expected`.
        let mut t = self.inner.ticket.lock().map_err(poisoned)?;
        let current = self.inner.published.read();
        if !Arc::ptr_eq(&current.db, expected) {
            return Ok(PublishOutcome::Stale(current.db));
        }
        let seq = t.seq + 1;
        // write-ahead: the record must be in the log (buffered) before the
        // state becomes visible; an append failure publishes nothing —
        // the conflict index and commit log are untouched at this point
        let lsn = match (&self.inner.wal, wal_ops) {
            (Some(wal), Some(ops)) => Some(wal.append_commit(seq, ops)?),
            _ => None,
        };
        let pt = StageTimer::start(StageKind::Publish);
        self.inner.conflict.publish_keys(keys.iter(), seq);
        {
            // check: allow(panic, "infallible once the record is appended; poison means a panic already escaped mid-update and propagating it is the honest outcome")
            let mut log = self.inner.commit_log.lock().unwrap();
            log.push(CommitRecord { seq, keys: keys.iter().cloned().collect() });
            self.inner.log_records.store(log.len(), Ordering::Relaxed);
        }
        t.seq = seq;
        self.inner.published.publish(PublishedImage { db: Arc::new(candidate), seq });
        // feed replication subscribers under the same ticket that ordered
        // the publication, so the stream is the commit order, gap-free;
        // only durable commits carry the resolved ops the stream needs
        if !t.feeds.is_empty() {
            if let Some(ops) = wal_ops {
                t.feeds.retain(|tx| {
                    tx.send(FeedCommit {
                        seq,
                        ops: ops.to_vec(),
                    })
                    .is_ok()
                });
            }
        }
        pt.finish_info(&[("keys", probes)]);
        drop(t);
        self.inner.commits_since_ckpt.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.commits.inc();
        Ok(PublishOutcome::Published { seq, lsn })
    }

    /// Wait for the WAL record at `lsn` per the fsync policy (no-op for
    /// non-durable handles).
    pub(crate) fn wait_durable(&self, lsn: Option<Lsn>) -> Result<()> {
        match (&self.inner.wal, lsn) {
            (Some(wal), Some(lsn)) => wal.wait_durable(lsn),
            _ => Ok(()),
        }
    }

    /// Test hook: hold the commit ticket, proving reads stay unblocked
    /// while a commit (or fsync stall) owns the publication path.
    #[cfg(test)]
    pub(crate) fn lock_publication_for_test(&self) -> std::sync::MutexGuard<'_, impl Sized> {
        self.inner.ticket.lock().unwrap()
    }
}

/// Result of one [`DbHandle::publish_if`] attempt.
pub(crate) enum PublishOutcome {
    /// Published at this commit sequence; the transaction is finished.
    /// `lsn` is the WAL position to await (durable handles only).
    Published {
        /// The published commit sequence.
        seq: u64,
        /// WAL position of the record, if the handle is durable.
        lsn: Option<Lsn>,
    },
    /// The committed state moved; replay against the carried image and
    /// retry.
    Stale(Arc<Database>),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poison the commit ticket by panicking a thread that holds it, then
    /// check the fallible standby paths surface the poison as a
    /// transaction-state error instead of cascading the panic.
    #[test]
    fn poisoned_handle_errors_on_fallible_paths() {
        let handle = DbHandle::new_read_only(Database::empty(), 0);
        let poisoner = {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let _guard = handle.lock_publication_for_test();
                panic!("poisoning the commit ticket");
            })
        };
        assert!(poisoner.join().is_err());

        let err = handle
            .install_replicated(Database::empty(), 1)
            .expect_err("install through a poisoned handle must error");
        assert!(
            err.to_string().contains("handle poisoned"),
            "unexpected error: {err}"
        );
        let err = handle
            .install_snapshot(Database::empty(), 1)
            .expect_err("snapshot install through a poisoned handle must error");
        assert!(err.to_string().contains("handle poisoned"), "{err}");
    }

    /// The A/B knob: both modes publish, and the mode reads back.
    #[test]
    fn commit_mode_round_trips() {
        let handle = DbHandle::new(Database::empty());
        assert_eq!(handle.commit_mode(), CommitMode::Pipelined);
        handle.set_commit_mode(CommitMode::SingleLock);
        assert_eq!(handle.commit_mode(), CommitMode::SingleLock);
        handle.set_commit_mode(CommitMode::Pipelined);
        assert_eq!(handle.commit_mode(), CommitMode::Pipelined);
    }
}
