//! The shared database handle: committed state, publication, commit log.

use crate::txn::WriteKey;
use mad_model::{FxHashSet, MadError, Result};
use mad_storage::Database;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One published commit: its sequence number and the write-set keys it
/// published. Kept (pruned) for first-committer-wins validation of
/// transactions that began before it.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// The commit sequence number this record was published at.
    pub seq: u64,
    /// The pre-existing state the commit overwrote.
    pub keys: Vec<WriteKey>,
}

#[derive(Debug)]
struct State {
    /// The committed image. Immutable once published; replaced wholesale.
    db: Arc<Database>,
    /// Monotone commit sequence number (0 = the initial load).
    seq: u64,
    /// Commit records newer than the oldest active transaction's begin.
    log: Vec<CommitRecord>,
    /// begin_seq → number of active transactions that began there.
    active: BTreeMap<u64, usize>,
}

/// A cloneable, thread-safe handle to one shared MAD database.
///
/// All sessions of a deployment hold clones of one `DbHandle`. Readers take
/// a consistent frozen image with [`DbHandle::committed`]; writers go
/// through [`crate::Transaction`]. Publication is atomic: the committed
/// `Arc<Database>` is swapped under the handle's lock, in-flight readers
/// keep whatever image they already cloned.
#[derive(Clone, Debug)]
pub struct DbHandle {
    inner: Arc<Mutex<State>>,
}

impl DbHandle {
    /// Wrap a loaded database as commit 0 of a shared handle.
    pub fn new(db: Database) -> Self {
        DbHandle {
            inner: Arc::new(Mutex::new(State {
                db: Arc::new(db),
                seq: 0,
                log: Vec::new(),
                active: BTreeMap::new(),
            })),
        }
    }

    /// The current committed image. The returned `Arc` is a consistent
    /// snapshot: it never changes, no matter what commits afterwards.
    pub fn committed(&self) -> Arc<Database> {
        Arc::clone(&self.inner.lock().unwrap().db)
    }

    /// The current commit sequence number (how many commits have been
    /// published). Sessions use it to detect that their cached fork of the
    /// committed state is stale.
    pub fn commit_seq(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// A copy-on-write fork of the committed image plus the sequence number
    /// it was taken at — the cheap way for a session to get a *mutable*
    /// working copy (e.g. for autocommit query scratch space).
    pub fn fork(&self) -> (Database, u64) {
        let st = self.inner.lock().unwrap();
        ((*st.db).clone(), st.seq)
    }

    /// How many commit records the first-committer-wins log currently
    /// retains (bounded by in-flight contention; exposed for tests and
    /// monitoring).
    pub fn commit_log_len(&self) -> usize {
        self.inner.lock().unwrap().log.len()
    }

    /// Begin bookkeeping: returns `(committed image, begin_seq)` and
    /// registers the transaction as active at that sequence.
    pub(crate) fn begin_txn(&self) -> (Arc<Database>, u64) {
        let mut st = self.inner.lock().unwrap();
        let seq = st.seq;
        *st.active.entry(seq).or_insert(0) += 1;
        (Arc::clone(&st.db), seq)
    }

    /// Drop an active transaction's registration (abort, or the cleanup
    /// half of commit) and prune the commit log.
    pub(crate) fn finish_txn(&self, begin_seq: u64) {
        let mut st = self.inner.lock().unwrap();
        Self::unregister(&mut st, begin_seq);
    }

    fn unregister(st: &mut State, begin_seq: u64) {
        if let Some(n) = st.active.get_mut(&begin_seq) {
            *n -= 1;
            if *n == 0 {
                st.active.remove(&begin_seq);
            }
        }
        // every surviving active transaction with begin b validates against
        // records with seq > b, so records at or below the oldest begin are
        // dead; with no active transactions the whole log is.
        match st.active.keys().next().copied() {
            Some(oldest) => st.log.retain(|r| r.seq > oldest),
            None => st.log.clear(),
        }
    }

    /// One optimistic publication attempt, entirely under the handle lock
    /// but doing **no heavy work there** (key-set validation and an `Arc`
    /// pointer comparison only — op-log replay happens outside, between
    /// attempts, so readers are never blocked behind a contended commit).
    ///
    /// * `Err(TxnConflict)` — first-committer-wins validation failed; the
    ///   transaction is unregistered (aborted).
    /// * `Ok(Published(seq))` — `candidate` was built against `expected`
    ///   and `expected` is still the committed state: published, record
    ///   appended, transaction unregistered.
    /// * `Ok(Stale(current))` — another commit landed since `expected` was
    ///   observed; the caller must replay against `current` and try again
    ///   (the transaction stays registered).
    pub(crate) fn publish_if(
        &self,
        begin_seq: u64,
        expected: &Arc<Database>,
        keys: &FxHashSet<WriteKey>,
        candidate: Database,
    ) -> Result<PublishOutcome> {
        let mut st = self.inner.lock().unwrap();
        // first-committer-wins: any committed write since our begin that
        // overlaps our write-set aborts us.
        let conflict = st
            .log
            .iter()
            .filter(|r| r.seq > begin_seq)
            .find_map(|rec| {
                rec.keys
                    .iter()
                    .find(|k| keys.contains(k))
                    .map(|k| (k.clone(), rec.seq))
            });
        if let Some((key, seq)) = conflict {
            Self::unregister(&mut st, begin_seq);
            return Err(MadError::txn_conflict(format!(
                "write-write conflict on {key} with the transaction committed at sequence {seq}"
            )));
        }
        if !Arc::ptr_eq(&st.db, expected) {
            return Ok(PublishOutcome::Stale(Arc::clone(&st.db)));
        }
        st.seq += 1;
        let seq = st.seq;
        st.log.push(CommitRecord {
            seq,
            keys: keys.iter().cloned().collect(),
        });
        st.db = Arc::new(candidate);
        Self::unregister(&mut st, begin_seq);
        Ok(PublishOutcome::Published(seq))
    }
}

/// Result of one [`DbHandle::publish_if`] attempt.
pub(crate) enum PublishOutcome {
    /// Published at this commit sequence; the transaction is finished.
    Published(u64),
    /// The committed state moved; replay against the carried image and
    /// retry.
    Stale(Arc<Database>),
}
