//! The shared database handle: committed state, publication, commit log,
//! durability.

use crate::txn::WriteKey;
use mad_model::bin::u64_of_usize;
use mad_model::{FxHashMap, FxHashSet, MadError, Result};
use mad_obs::trace::{StageKind, StageTimer};
use mad_obs::{Counter, Registry};
use mad_storage::Database;
use mad_wal::{CheckpointStats, FaultPlan, FsyncPolicy, Lsn, RecoveryInfo, TailRead, Wal, WalOp};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock};

/// A poisoned handle lock means a panic escaped another thread while the
/// shared commit state was mid-update. `Result`-returning paths surface
/// that as a transaction-state error instead of cascading the panic into
/// every client thread; infallible accessors propagate the panic (each
/// such site carries a `check: allow(panic, …)` annotation).
fn poisoned<T>(_: PoisonError<T>) -> MadError {
    MadError::txn_state(
        "handle poisoned: a thread panicked while holding the commit state",
    )
}

/// One published commit: its sequence number and the write-set keys it
/// published. Kept (pruned) for first-committer-wins validation of
/// transactions that began before it.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// The commit sequence number this record was published at.
    pub seq: u64,
    /// The pre-existing state the commit overwrote.
    pub keys: Vec<WriteKey>,
}

/// Does (and how does) the handle persist committed transactions?
#[derive(Clone, Debug, Default)]
pub enum Durability {
    /// In-memory only (the default): committed state dies with the
    /// process.
    #[default]
    None,
    /// Write-ahead logging: every commit appends its resolved op log to
    /// the file at `path` before acknowledging, per `fsync`.
    Wal {
        /// The log file.
        path: PathBuf,
        /// When commits wait for stable storage.
        fsync: FsyncPolicy,
    },
}

/// When does a commit acknowledge with respect to **replication** — the
/// knob beside [`FsyncPolicy`], governing standbys instead of disks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplAck {
    /// Acknowledge as soon as the commit is locally durable (the
    /// default); standbys catch up asynchronously. A primary failure can
    /// lose acknowledged commits that no standby had received yet.
    #[default]
    Async,
    /// Acknowledge only after at least `n` registered standbys have
    /// confirmed the commit durably appended to *their* logs — after
    /// promotion of any confirming standby, every acknowledged commit
    /// still exists. Blocks while fewer than `n` standbys are attached;
    /// sealing replication (shutdown, promotion) errors the waiters.
    SyncQuorum(usize),
}

/// One commit as seen by a replication subscriber: the sequence number
/// and the resolved op log exactly as written to the primary's WAL.
#[derive(Clone, Debug)]
pub struct FeedCommit {
    /// The commit sequence number.
    pub seq: u64,
    /// The resolved op log (provisional ids already remapped).
    pub ops: Vec<WalOp>,
}

/// Size/record-count triggers for automatic [`DbHandle::checkpoint`]s, so
/// the log — and with it recovery time and replication-bootstrap images —
/// stays bounded without anyone typing `CHECKPOINT`. Both triggers unset
/// (the default) disables auto-checkpointing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once the log exceeds this many bytes.
    pub max_bytes: Option<u64>,
    /// Checkpoint once this many commits accumulated since the last one.
    pub max_commits: Option<u64>,
}

impl CheckpointPolicy {
    /// Is any trigger armed?
    pub fn is_enabled(&self) -> bool {
        self.max_bytes.is_some() || self.max_commits.is_some()
    }
}

/// Replication bookkeeping: the ack mode, each registered standby's
/// durably-acknowledged sequence, and the seal.
#[derive(Debug, Default)]
struct ReplState {
    mode: ReplAck,
    /// Standby token → highest sequence that standby confirmed durable.
    standbys: FxHashMap<u64, u64>,
    next_token: u64,
    /// Sealed: no further acknowledgment can arrive (shutdown or
    /// promotion); quorum waiters error instead of blocking forever.
    sealed: bool,
}

/// The publication state: everything commit validation needs, guarded by
/// one mutex. The commit path never holds it across an fsync or an
/// op-log replay; [`DbHandle::checkpoint`] is the one deliberate
/// exception — it holds the mutex for the whole log rewrite to fence out
/// concurrent appends (blocking writers, never snapshot readers).
#[derive(Debug)]
struct State {
    /// Monotone commit sequence number (0 = the initial load).
    seq: u64,
    /// Commit records newer than the oldest active transaction's begin
    /// (ordered by `seq`, since publication pushes monotonically).
    log: Vec<CommitRecord>,
    /// begin_seq → number of active transactions that began there.
    active: BTreeMap<u64, usize>,
    /// Write key → the sequence of the *last* commit that published it,
    /// covering exactly the keys of the retained `log` records. Conflict
    /// validation is one hash probe per key of the committing write-set —
    /// O(|write-set|) — instead of a scan over every logged record's key
    /// vector; commits therefore contend only on true overlaps.
    last_write: FxHashMap<WriteKey, u64>,
    /// Live replication subscribers. Commits are pushed here under the
    /// publication lock, so feed order **is** commit order; a subscriber
    /// whose receiver is gone is dropped on the next push.
    feeds: Vec<mpsc::Sender<FeedCommit>>,
}

/// The committed image plus the sequence it was published at, behind its
/// own reader-writer lock so snapshot reads are a lock-clone-unlock pair
/// that never contends with commit validation or WAL fsync stalls (the
/// write half is held only for the pointer swap inside publication).
#[derive(Debug)]
struct Published {
    /// The committed image. Immutable once published; replaced wholesale.
    db: Arc<Database>,
    /// The sequence number `db` was published at.
    seq: u64,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    published: RwLock<Published>,
    /// The write-ahead log, when the handle is durable.
    wal: Option<Wal>,
    durability: Durability,
    /// What recovery found, when this handle was opened from a log.
    recovery: Option<RecoveryInfo>,
    /// A standby's serving handle: writes are refused at publication (the
    /// replication replayer installs state through
    /// [`DbHandle::install_replicated`] instead).
    read_only: bool,
    /// Replication ack bookkeeping, with its condvar for quorum waits.
    repl: Mutex<ReplState>,
    repl_cv: Condvar,
    /// Auto-checkpoint knob and counters (interior-mutable so the policy
    /// can be set on a running handle).
    ckpt_policy: Mutex<CheckpointPolicy>,
    /// Fast-path gate: true only when a policy is armed on a durable
    /// handle, so undurable/unconfigured commits pay one relaxed load.
    ckpt_armed: AtomicBool,
    /// Commits since the last checkpoint (any kind).
    commits_since_ckpt: AtomicU64,
    /// Claimed by the one committer running an auto-checkpoint, so a
    /// burst of over-threshold commits triggers one rewrite, not many.
    ckpt_claimed: AtomicBool,
    /// Auto-checkpoints completed (monitoring/tests).
    auto_ckpts: AtomicU64,
    /// The deployment-wide metrics registry (see [`mad_obs`]): the WAL,
    /// replication endpoints, sessions and servers over this handle all
    /// register here; `SHOW STATS` renders a snapshot.
    obs: Registry,
    /// Hot-path commit counters (handles into `obs` — increments never
    /// touch the registry map).
    metrics: TxnMetrics,
}

/// Counter handles the commit protocol bumps inline.
#[derive(Debug)]
struct TxnMetrics {
    /// Commits published (`txn.commits`).
    commits: Counter,
    /// First-committer-wins validation failures (`txn.conflicts`).
    conflicts: Counter,
    /// Op-log replays after a stale publication attempt (`txn.replays`).
    replays: Counter,
}

/// A cloneable, thread-safe handle to one shared MAD database.
///
/// All sessions of a deployment hold clones of one `DbHandle`. Readers take
/// a consistent frozen image with [`DbHandle::committed`]; writers go
/// through [`crate::Transaction`]. Publication is atomic: the committed
/// `Arc<Database>` is swapped under a dedicated read-write lock, in-flight
/// readers keep whatever image they already cloned, and new readers are
/// never blocked behind commit validation or a WAL fsync.
///
/// A durable handle ([`DbHandle::create_durable`] /
/// [`DbHandle::open_durable`] / [`DbHandle::with_durability`]) additionally
/// appends every commit's resolved op log to a [`Wal`] before
/// acknowledging it, and can [`DbHandle::checkpoint`] the log back down to
/// a bootstrap image.
#[derive(Clone, Debug)]
pub struct DbHandle {
    inner: Arc<Inner>,
}

impl DbHandle {
    /// Wrap a loaded database as commit 0 of a shared, **non-durable**
    /// handle.
    pub fn new(db: Database) -> Self {
        Self::build(db, 0, None, Durability::None, None, false)
    }

    /// Wrap `db` — replicated state at commit sequence `seq` — as a
    /// **read-only** serving handle: sessions read ordinary snapshots,
    /// but any write is refused at publication with
    /// [`mad_model::MadError::TxnState`]. The replication replayer
    /// advances the handle through [`DbHandle::install_replicated`];
    /// durability of the replicated stream is the replayer's own local
    /// WAL, not this handle's.
    pub fn new_read_only(db: Database, seq: u64) -> Self {
        Self::build(db, seq, None, Durability::None, None, true)
    }

    /// Wrap `db` as the bootstrap image of a **new** write-ahead log at
    /// `path` (error if the file already exists — recover with
    /// [`DbHandle::open_durable`] instead).
    pub fn create_durable(
        db: Database,
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let wal = Wal::create(&path, &db, fsync)?;
        Ok(Self::build(db, 0, Some(wal), Durability::Wal { path, fsync }, None, false))
    }

    /// Recover the committed state from the write-ahead log at `path`
    /// (error if it does not exist): torn tail truncated, bootstrap image
    /// restored, every complete commit record replayed.
    pub fn open_durable(path: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let (wal, db, info) = Wal::recover(&path, fsync)?;
        Ok(Self::build(
            db,
            info.last_seq,
            Some(wal),
            Durability::Wal { path, fsync },
            Some(info),
            false,
        ))
    }

    /// The `Durability` knob as one constructor: [`Durability::None`]
    /// behaves like [`DbHandle::new`]; [`Durability::Wal`] opens the log
    /// if it exists (recovering from it — `db` is then **ignored** in
    /// favor of the logged state) and otherwise creates it with `db` as
    /// the bootstrap image.
    pub fn with_durability(db: Database, durability: Durability) -> Result<Self> {
        match durability {
            Durability::None => Ok(Self::new(db)),
            Durability::Wal { path, fsync } => {
                if path.exists() {
                    Self::open_durable(path, fsync)
                } else {
                    Self::create_durable(db, path, fsync)
                }
            }
        }
    }

    fn build(
        db: Database,
        seq: u64,
        wal: Option<Wal>,
        durability: Durability,
        recovery: Option<RecoveryInfo>,
        read_only: bool,
    ) -> Self {
        let obs = Registry::new();
        let metrics = TxnMetrics {
            commits: obs.counter("txn.commits"),
            conflicts: obs.counter("txn.conflicts"),
            replays: obs.counter("txn.replays"),
        };
        let handle = DbHandle {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    seq,
                    log: Vec::new(),
                    active: BTreeMap::new(),
                    last_write: FxHashMap::default(),
                    feeds: Vec::new(),
                }),
                published: RwLock::new(Published {
                    db: Arc::new(db),
                    seq,
                }),
                wal,
                durability,
                recovery,
                read_only,
                repl: Mutex::new(ReplState::default()),
                repl_cv: Condvar::new(),
                ckpt_policy: Mutex::new(CheckpointPolicy::default()),
                ckpt_armed: AtomicBool::new(false),
                commits_since_ckpt: AtomicU64::new(0),
                ckpt_claimed: AtomicBool::new(false),
                auto_ckpts: AtomicU64::new(0),
                obs,
                metrics,
            }),
        };
        handle.register_gauges();
        handle
    }

    /// Register the handle's poll-gauges: the one surface `SHOW STATS`
    /// reads, folding what used to be ad-hoc accessors
    /// ([`DbHandle::commit_log_len`], [`DbHandle::conflict_index_len`],
    /// the WAL stats accessors…) into the registry. Closures capture a
    /// `Weak` so a handle (and its WAL file handles) can still drop
    /// while a server-side registry clone outlives it; each closure
    /// takes at most one ranked lock and nests nothing inside it.
    fn register_gauges(&self) {
        let obs = &self.inner.obs;
        let weak = {
            let w = Arc::downgrade(&self.inner);
            move || w.clone()
        };
        {
            let w = weak();
            obs.gauge("txn.seq", move || {
                w.upgrade().and_then(|i| i.published.read().ok().map(|p| p.seq))
            });
        }
        {
            let w = weak();
            obs.gauge("txn.commit_log", move || {
                w.upgrade()
                    .and_then(|i| i.state.lock().ok().map(|st| u64_of_usize(st.log.len())))
            });
        }
        {
            let w = weak();
            obs.gauge("txn.conflict_index", move || {
                w.upgrade()
                    .and_then(|i| i.state.lock().ok().map(|st| u64_of_usize(st.last_write.len())))
            });
        }
        {
            let w = weak();
            obs.gauge("txn.active", move || {
                w.upgrade().and_then(|i| {
                    i.state
                        .lock()
                        .ok()
                        .map(|st| u64_of_usize(st.active.values().sum::<usize>()))
                })
            });
        }
        {
            let w = weak();
            obs.gauge("txn.auto_checkpoints", move || {
                w.upgrade().map(|i| i.auto_ckpts.load(Ordering::Relaxed))
            });
        }
        {
            // pairs re-frozen by the published image's last CSR rebuild
            // (the registry face of `Database::csr_rebuild_stats`).
            // `None` would reap the gauge, so "no rebuild yet" reads 0.
            let w = weak();
            obs.gauge("storage.csr_rebuilt_pairs", move || {
                w.upgrade().and_then(|i| {
                    let p = i.published.read().ok()?;
                    let (rebuilt, _) = p.db.csr_rebuild_stats().unwrap_or((0, 0));
                    Some(u64_of_usize(rebuilt))
                })
            });
        }
        {
            let w = weak();
            obs.gauge("storage.csr_pairs", move || {
                w.upgrade().and_then(|i| {
                    let p = i.published.read().ok()?;
                    let (_, total) = p.db.csr_rebuild_stats().unwrap_or((0, 0));
                    Some(u64_of_usize(total))
                })
            });
        }
        if self.is_durable() {
            {
                let w = weak();
                obs.gauge("wal.len_bytes", move || {
                    w.upgrade().and_then(|i| i.wal.as_ref().map(Wal::len_bytes))
                });
            }
            {
                let w = weak();
                obs.gauge("wal.fsyncs", move || {
                    w.upgrade().and_then(|i| i.wal.as_ref().map(Wal::fsync_count))
                });
            }
            {
                let w = weak();
                obs.gauge("wal.group_batches", move || {
                    w.upgrade()
                        .and_then(|i| i.wal.as_ref().map(|wal| wal.group_commit_stats().0))
                });
            }
            {
                let w = weak();
                obs.gauge("wal.group_records", move || {
                    w.upgrade()
                        .and_then(|i| i.wal.as_ref().map(|wal| wal.group_commit_stats().1))
                });
            }
        }
        {
            let w = weak();
            obs.text("repl.mode", move || {
                w.upgrade().and_then(|i| {
                    i.repl.lock().ok().map(|r| match r.mode {
                        ReplAck::Async => "async".to_owned(),
                        ReplAck::SyncQuorum(n) => format!("sync_quorum({n})"),
                    })
                })
            });
        }
        {
            let w = weak();
            obs.gauge("repl.sealed", move || {
                w.upgrade().and_then(|i| i.repl.lock().ok().map(|r| u64::from(r.sealed)))
            });
        }
        {
            let w = weak();
            obs.gauge("repl.standbys", move || {
                w.upgrade()
                    .and_then(|i| i.repl.lock().ok().map(|r| u64_of_usize(r.standbys.len())))
            });
        }
        {
            // per-standby replication cursor and lag-in-records — one
            // `repl.standby.<token>.{acked_seq,lag}` row pair per
            // attached standby. The committed seq is read first and the
            // repl lock taken after (sequentially, never nested).
            let w = weak();
            obs.multi("repl.standby", move || {
                w.upgrade().and_then(|i| {
                    let seq = i.published.read().ok().map(|p| p.seq)?;
                    let r = i.repl.lock().ok()?;
                    let mut rows = Vec::with_capacity(r.standbys.len() * 2);
                    for (token, &acked) in &r.standbys {
                        rows.push((format!("{token}.acked_seq"), acked));
                        rows.push((format!("{token}.lag"), seq.saturating_sub(acked)));
                    }
                    Some(rows)
                })
            });
        }
    }

    /// The deployment-wide metrics registry. Sessions, servers and
    /// replication endpoints over this handle register their metrics
    /// here; `SHOW STATS` renders a [`Registry::snapshot`]. Snapshots
    /// poll gauges that take the handle's ranked locks, so never call
    /// [`Registry::snapshot`] while holding one.
    pub fn obs(&self) -> &Registry {
        &self.inner.obs
    }

    /// Bump the op-log-replay counter (`txn.replays`) — called by the
    /// contended commit path in [`crate::Transaction`].
    pub(crate) fn count_replay(&self) {
        self.inner.metrics.replays.inc();
    }

    /// How this handle persists commits.
    pub fn durability(&self) -> &Durability {
        &self.inner.durability
    }

    /// Does this handle refuse writes (a standby's serving handle)?
    pub fn is_read_only(&self) -> bool {
        self.inner.read_only
    }

    // ------------------------------------------------------------------
    // replication
    // ------------------------------------------------------------------

    /// Set the replication acknowledgment mode (see [`ReplAck`]). Takes
    /// effect for commits that reach their replication wait afterwards;
    /// loosening to [`ReplAck::Async`] releases current quorum waiters.
    pub fn set_repl_ack(&self, mode: ReplAck) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        repl.mode = mode;
        self.inner.repl_cv.notify_all();
    }

    /// The current replication acknowledgment mode.
    pub fn repl_ack(&self) -> ReplAck {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.repl.lock().unwrap().mode
    }

    /// Subscribe to the commit feed: every commit published from now on
    /// is delivered as a [`FeedCommit`], in exact commit order (the push
    /// happens under the publication lock). Only durable handles feed
    /// subscribers — the stream *is* the WAL record stream — so a
    /// subscription on a non-durable handle never receives anything.
    /// Dropping the receiver unsubscribes on the next push.
    pub fn subscribe_commits(&self) -> mpsc::Receiver<FeedCommit> {
        let (tx, rx) = mpsc::channel();
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.state.lock().unwrap().feeds.push(tx);
        rx
    }

    /// Read committed records newer than `from_seq` back out of the WAL
    /// — the replication catch-up source (`None` on non-durable handles).
    /// [`TailRead::SnapshotNeeded`] means a checkpoint folded the
    /// requested records away and the subscriber needs a full snapshot.
    pub fn wal_tail_commits(&self, from_seq: u64) -> Result<Option<TailRead>> {
        match &self.inner.wal {
            Some(wal) => wal.tail_commits(from_seq).map(Some),
            None => Ok(None),
        }
    }

    /// Register a standby for quorum accounting; returns its token.
    pub fn register_standby(&self) -> u64 {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        let token = repl.next_token;
        repl.next_token += 1;
        repl.standbys.insert(token, 0);
        token
    }

    /// Record that the standby behind `token` has durably appended every
    /// record up to and including `seq`, waking quorum waiters.
    pub fn standby_ack(&self, token: u64, seq: u64) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        if let Some(have) = repl.standbys.get_mut(&token) {
            *have = (*have).max(seq);
            self.inner.repl_cv.notify_all();
        }
    }

    /// Deregister a standby (its connection died). Its acknowledgments no
    /// longer count toward quorums.
    pub fn standby_gone(&self, token: u64) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        repl.standbys.remove(&token);
        self.inner.repl_cv.notify_all();
    }

    /// Seal replication: no further acknowledgment can arrive (server
    /// shutdown, primary demotion). Current and future quorum waiters
    /// error instead of blocking forever — their commits are published
    /// and locally durable, but replication is unknown, the same
    /// post-publication indeterminacy as a failed fsync wait.
    pub fn seal_replication(&self) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut repl = self.inner.repl.lock().unwrap();
        repl.sealed = true;
        self.inner.repl_cv.notify_all();
    }

    /// Block until `seq` satisfies the [`ReplAck`] mode: immediately for
    /// [`ReplAck::Async`], else until `n` standbys acknowledged `seq` (or
    /// the seal errors the wait).
    pub(crate) fn wait_replicated(&self, seq: u64) -> Result<()> {
        let mut repl = self.inner.repl.lock().map_err(poisoned)?;
        loop {
            let need = match repl.mode {
                ReplAck::Async => return Ok(()),
                ReplAck::SyncQuorum(n) => n,
            };
            if repl.standbys.values().filter(|&&have| have >= seq).count() >= need {
                return Ok(());
            }
            if repl.sealed {
                return Err(MadError::txn_state(format!(
                    "replication sealed before {need} standby(s) acknowledged sequence \
                     {seq}; the commit is published and locally durable but its \
                     replication is unknown"
                )));
            }
            repl = self.inner.repl_cv.wait(repl).map_err(poisoned)?;
        }
    }

    /// Install the next replicated commit's state — the standby
    /// replayer's publication path, valid only on
    /// [`DbHandle::new_read_only`] handles. `seq` must be exactly the
    /// successor of the current sequence: replication replays the commit
    /// history gap-free or not at all.
    pub fn install_replicated(&self, db: Database, seq: u64) -> Result<()> {
        if !self.inner.read_only {
            return Err(MadError::txn_state(
                "install_replicated is the standby path; this handle takes writes \
                 through transactions",
            ));
        }
        let mut st = self.inner.state.lock().map_err(poisoned)?;
        if seq != st.seq + 1 {
            return Err(MadError::txn_state(format!(
                "replication gap: handle is at sequence {}, install asked for {seq}",
                st.seq
            )));
        }
        st.seq = seq;
        let mut p = self.inner.published.write().map_err(poisoned)?;
        p.db = Arc::new(db);
        p.seq = seq;
        Ok(())
    }

    /// Install a **full replicated snapshot** at `seq` — the standby's
    /// resynchronization path, used when the primary's log no longer
    /// holds the records after the standby's cursor (a checkpoint folded
    /// them away) and replication restarts from a bootstrap image.
    /// Unlike [`DbHandle::install_replicated`] this may jump forward over
    /// a gap — the snapshot *is* the missing history — but never
    /// backwards. Valid only on [`DbHandle::new_read_only`] handles.
    pub fn install_snapshot(&self, db: Database, seq: u64) -> Result<()> {
        if !self.inner.read_only {
            return Err(MadError::txn_state(
                "install_snapshot is the standby path; this handle takes writes \
                 through transactions",
            ));
        }
        let mut st = self.inner.state.lock().map_err(poisoned)?;
        if seq < st.seq {
            return Err(MadError::txn_state(format!(
                "replication regression: handle is at sequence {}, snapshot install \
                 asked for {seq}",
                st.seq
            )));
        }
        st.seq = seq;
        let mut p = self.inner.published.write().map_err(poisoned)?;
        p.db = Arc::new(db);
        p.seq = seq;
        Ok(())
    }

    // ------------------------------------------------------------------
    // auto-checkpoint
    // ------------------------------------------------------------------

    /// Arm (or, with an empty policy, disarm) automatic checkpointing.
    /// Commits that push the log over a trigger fold it down inline —
    /// one committer at a time — so log size stays bounded without a
    /// manual `CHECKPOINT`. No effect on non-durable handles.
    pub fn set_checkpoint_policy(&self, policy: CheckpointPolicy) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        *self.inner.ckpt_policy.lock().unwrap() = policy;
        self.inner
            .ckpt_armed
            .store(policy.is_enabled() && self.is_durable(), Ordering::SeqCst);
    }

    /// The current auto-checkpoint policy.
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        *self.inner.ckpt_policy.lock().unwrap()
    }

    /// Auto-checkpoints completed since open.
    pub fn auto_checkpoint_count(&self) -> u64 {
        self.inner.auto_ckpts.load(Ordering::Relaxed)
    }

    /// Post-commit trigger check: fold the log if the armed policy says
    /// so. At most one committer runs the rewrite; the rest skip. An
    /// auto-checkpoint failure is **not** the commit's failure (the
    /// commit is already durable) — a genuinely sick log poisons itself
    /// and surfaces on the next commit.
    pub(crate) fn maybe_auto_checkpoint(&self) {
        if !self.inner.ckpt_armed.load(Ordering::Relaxed) {
            return;
        }
        let policy = self.checkpoint_policy();
        let over_bytes = policy
            .max_bytes
            .is_some_and(|m| self.wal_len_bytes().unwrap_or(0) > m);
        let over_commits = policy
            .max_commits
            .is_some_and(|m| self.inner.commits_since_ckpt.load(Ordering::Relaxed) >= m);
        if !(over_bytes || over_commits) {
            return;
        }
        if self.inner.ckpt_claimed.swap(true, Ordering::SeqCst) {
            return; // another committer is already rewriting
        }
        if self.checkpoint().is_ok() {
            self.inner.auto_ckpts.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.ckpt_claimed.store(false, Ordering::SeqCst);
    }

    /// Arm (or, with `None`, clear) deterministic WAL fault injection —
    /// the crash/failover scenarios' hook (see [`FaultPlan`]). Returns
    /// whether a log was armed (`false` on non-durable handles).
    pub fn set_wal_fault_plan(&self, plan: Option<FaultPlan>) -> bool {
        match &self.inner.wal {
            Some(wal) => {
                wal.set_fault_plan(plan);
                true
            }
            None => false,
        }
    }

    /// Is every commit written ahead to a log?
    pub fn is_durable(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// What recovery found when this handle was opened from an existing
    /// log (`None` for fresh or non-durable handles).
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.inner.recovery
    }

    /// Current write-ahead-log size in bytes (`None` when not durable).
    pub fn wal_len_bytes(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(Wal::len_bytes)
    }

    /// Fsyncs the log has performed since open (`None` when not durable).
    /// Group commit shows up as `fsyncs ≪ commits`.
    pub fn wal_fsync_count(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(Wal::fsync_count)
    }

    /// Fold the log into a fresh bootstrap image of the current committed
    /// state and drop every commit record, bounding log size and recovery
    /// time. Writers — commits *and* new transaction begins — are held
    /// off for the whole rewrite (snapshot capture, write, fsync, atomic
    /// rename); snapshot readers are not. Errors on a non-durable handle.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        let Some(wal) = &self.inner.wal else {
            return Err(MadError::wal(
                "CHECKPOINT requires a durable handle (no write-ahead log attached)",
            ));
        };
        // hold the publication mutex so no commit appends mid-rewrite
        let _st = self.inner.state.lock().map_err(poisoned)?;
        let (db, seq) = {
            let p = self.inner.published.read().map_err(poisoned)?;
            (Arc::clone(&p.db), p.seq)
        };
        // check: allow(lock, "resolves to Wal::checkpoint (sync/files, ranks 5-6), not DbHandle::checkpoint; the name-keyed call graph conflates them")
        let stats = wal.checkpoint(&db, seq)?;
        self.inner.commits_since_ckpt.store(0, Ordering::Relaxed);
        Ok(stats)
    }

    /// The current committed image. The returned `Arc` is a consistent
    /// snapshot: it never changes, no matter what commits afterwards.
    ///
    /// This is an atomic load off the publication fast path: it touches
    /// only the published cell, so a reader is never blocked behind
    /// commit validation, op-log replay or a WAL fsync.
    pub fn committed(&self) -> Arc<Database> {
        // check: allow(panic, "infallible read fast path; poison means a publication panicked and every snapshot is suspect")
        Arc::clone(&self.inner.published.read().unwrap().db)
    }

    /// The current commit sequence number (how many commits have been
    /// published). Sessions use it to detect that their cached fork of the
    /// committed state is stale.
    pub fn commit_seq(&self) -> u64 {
        // check: allow(panic, "infallible read fast path; poison means a publication panicked and every snapshot is suspect")
        self.inner.published.read().unwrap().seq
    }

    /// A copy-on-write fork of the committed image plus the sequence number
    /// it was taken at — the cheap way for a session to get a *mutable*
    /// working copy (e.g. for autocommit query scratch space).
    pub fn fork(&self) -> (Database, u64) {
        // check: allow(panic, "infallible read fast path; poison means a publication panicked and every snapshot is suspect")
        let p = self.inner.published.read().unwrap();
        ((*p.db).clone(), p.seq)
    }

    /// How many commit records the first-committer-wins log currently
    /// retains (bounded by in-flight contention; exposed for tests and
    /// monitoring).
    pub fn commit_log_len(&self) -> usize {
        // check: allow(panic, "monitoring accessor; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.state.lock().unwrap().log.len()
    }

    /// How many distinct write keys the commit-validation hash index
    /// currently covers (pruned together with the commit log; exposed for
    /// tests and monitoring).
    pub fn conflict_index_len(&self) -> usize {
        // check: allow(panic, "monitoring accessor; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        self.inner.state.lock().unwrap().last_write.len()
    }

    /// Begin bookkeeping: returns `(committed image, begin_seq)` and
    /// registers the transaction as active at that sequence.
    pub(crate) fn begin_txn(&self) -> (Arc<Database>, u64) {
        // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
        let mut st = self.inner.state.lock().unwrap();
        let (db, seq) = {
            // check: allow(panic, "infallible signature; poison means a panic already escaped mid-update and propagating it is the honest outcome")
            let p = self.inner.published.read().unwrap();
            (Arc::clone(&p.db), p.seq)
        };
        debug_assert_eq!(seq, st.seq);
        *st.active.entry(seq).or_insert(0) += 1;
        (db, seq)
    }

    /// Drop an active transaction's registration (abort, or the cleanup
    /// half of commit) and prune the commit log. Idempotence lives one
    /// level up: [`crate::Transaction`] releases its registration exactly
    /// once (its `finish` is called on commit, abort **and** plain drop —
    /// early return, panic, a disconnected client), so a leaked
    /// registration can never pin the log forever.
    pub(crate) fn finish_txn(&self, begin_seq: u64) {
        // check: allow(panic, "drop-path cleanup must not return an error; poison means a panic already escaped mid-update")
        let mut st = self.inner.state.lock().unwrap();
        Self::unregister(&mut st, begin_seq);
    }

    fn unregister(st: &mut State, begin_seq: u64) {
        if let Some(n) = st.active.get_mut(&begin_seq) {
            *n -= 1;
            if *n == 0 {
                st.active.remove(&begin_seq);
            }
        }
        // every surviving active transaction with begin b validates against
        // records with seq > b, so records at or below the oldest begin are
        // dead; with no active transactions the whole log is.
        let cutoff = st.active.keys().next().copied().unwrap_or(u64::MAX);
        // the log is seq-ordered: drain the dead prefix, dropping each dead
        // record's keys from the hash index unless a newer retained record
        // re-published the key (then the index points at that newer seq and
        // the key is removed when *that* record dies)
        let keep_from = st.log.partition_point(|r| r.seq <= cutoff);
        if keep_from == 0 {
            return;
        }
        let log = std::mem::take(&mut st.log);
        let mut dead = log;
        let live = dead.split_off(keep_from);
        for rec in &dead {
            for key in &rec.keys {
                if st.last_write.get(key) == Some(&rec.seq) {
                    st.last_write.remove(key);
                }
            }
        }
        st.log = live;
    }

    /// One optimistic publication attempt, entirely under the publication
    /// mutex but doing **no heavy work there** (per-key hash-index
    /// validation, an `Arc` pointer comparison and — on a durable handle —
    /// the buffered WAL append; fsync waiting and op-log replay happen
    /// outside, so readers and other committers are never blocked behind
    /// them).
    ///
    /// The transaction's registration is **not** touched here: on every
    /// outcome the caller still owns it and releases it through
    /// [`DbHandle::finish_txn`] (commit success/failure, abort, or drop).
    ///
    /// * `Err(TxnConflict)` — first-committer-wins validation failed;
    ///   nothing was published. A WAL append failure reports the same way
    ///   (as its own error): nothing was published.
    /// * `Ok(Published { .. })` — `candidate` was built against `expected`
    ///   and `expected` is still the committed state: record logged (when
    ///   durable) and published. The caller must still await `lsn` per the
    ///   fsync policy before acknowledging.
    /// * `Ok(Stale(current))` — another commit landed since `expected` was
    ///   observed; the caller must replay against `current` and try again.
    pub(crate) fn publish_if(
        &self,
        begin_seq: u64,
        expected: &Arc<Database>,
        keys: &FxHashSet<WriteKey>,
        candidate: Database,
        wal_ops: Option<&[WalOp]>,
    ) -> Result<PublishOutcome> {
        if self.inner.read_only {
            // the hard guarantee under the Session-level nicety: nothing
            // publishes through a standby's serving handle
            return Err(MadError::txn_state(
                "this handle serves a read-only standby; writes must go to the primary",
            ));
        }
        let mut st = self.inner.state.lock().map_err(poisoned)?;
        // first-committer-wins: any committed write since our begin that
        // overlaps our write-set aborts us — one hash probe per key of OUR
        // write-set, independent of how many keys other commits logged
        let vt = StageTimer::start(StageKind::Validate);
        let probes = u64_of_usize(keys.len());
        let conflict = keys.iter().find_map(|key| {
            st.last_write
                .get(key)
                .copied()
                .filter(|&seq| seq > begin_seq)
                .map(|seq| (key, seq))
        });
        if let Some((key, seq)) = conflict {
            self.inner.metrics.conflicts.inc();
            vt.finish_info(&[("probes", probes), ("conflict", 1)]);
            return Err(MadError::txn_conflict(format!(
                "write-write conflict on {key} with the transaction committed at sequence {seq}"
            )));
        }
        if !Arc::ptr_eq(&self.inner.published.read().map_err(poisoned)?.db, expected) {
            vt.finish_info(&[("probes", probes), ("stale", 1)]);
            return Ok(PublishOutcome::Stale(self.committed()));
        }
        vt.finish_info(&[("probes", probes)]);
        let seq = st.seq + 1;
        // write-ahead: the record must be in the log (buffered) before the
        // state becomes visible; an append failure publishes nothing
        let lsn = match (&self.inner.wal, wal_ops) {
            (Some(wal), Some(ops)) => Some(wal.append_commit(seq, ops)?),
            (None, _) => None,
            (Some(_), None) => {
                // a durable handle was handed no ops — a caller bug, and
                // publishing would silently lose the commit on restart
                return Err(MadError::wal(
                    "durable publication without a serialized op log",
                ));
            }
        };
        st.seq = seq;
        st.log.push(CommitRecord {
            seq,
            keys: keys.iter().cloned().collect(),
        });
        for key in keys {
            st.last_write.insert(key.clone(), seq);
        }
        {
            let mut p = self.inner.published.write().map_err(poisoned)?;
            p.db = Arc::new(candidate);
            p.seq = seq;
        }
        // feed replication subscribers under the same lock that ordered
        // the publication, so the stream is the commit order, gap-free;
        // only durable commits carry the resolved ops the stream needs
        if !st.feeds.is_empty() {
            if let Some(ops) = wal_ops {
                st.feeds.retain(|tx| {
                    tx.send(FeedCommit {
                        seq,
                        ops: ops.to_vec(),
                    })
                    .is_ok()
                });
            }
        }
        self.inner.commits_since_ckpt.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.commits.inc();
        Ok(PublishOutcome::Published { seq, lsn })
    }

    /// Wait for the WAL record at `lsn` per the fsync policy (no-op for
    /// non-durable handles).
    pub(crate) fn wait_durable(&self, lsn: Option<Lsn>) -> Result<()> {
        match (&self.inner.wal, lsn) {
            (Some(wal), Some(lsn)) => wal.wait_durable(lsn),
            _ => Ok(()),
        }
    }

    /// Test hook: hold the publication mutex, proving reads stay
    /// unblocked while a commit (or fsync stall) owns it.
    #[cfg(test)]
    pub(crate) fn lock_publication_for_test(&self) -> std::sync::MutexGuard<'_, impl Sized> {
        self.inner.state.lock().unwrap()
    }
}

/// Result of one [`DbHandle::publish_if`] attempt.
pub(crate) enum PublishOutcome {
    /// Published at this commit sequence; the transaction is finished.
    /// `lsn` is the WAL position to await (durable handles only).
    Published {
        /// The published commit sequence.
        seq: u64,
        /// WAL position of the record, if the handle is durable.
        lsn: Option<Lsn>,
    },
    /// The committed state moved; replay against the carried image and
    /// retry.
    Stale(Arc<Database>),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poison the publication mutex by panicking a thread that holds it,
    /// then check the fallible standby paths surface the poison as a
    /// transaction-state error instead of cascading the panic.
    #[test]
    fn poisoned_handle_errors_on_fallible_paths() {
        let handle = DbHandle::new_read_only(Database::empty(), 0);
        let poisoner = {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let _guard = handle.lock_publication_for_test();
                panic!("poisoning the publication mutex");
            })
        };
        assert!(poisoner.join().is_err());

        let err = handle
            .install_replicated(Database::empty(), 1)
            .expect_err("install through a poisoned handle must error");
        assert!(
            err.to_string().contains("handle poisoned"),
            "unexpected error: {err}"
        );
        let err = handle
            .install_snapshot(Database::empty(), 1)
            .expect_err("snapshot install through a poisoned handle must error");
        assert!(err.to_string().contains("handle poisoned"), "{err}");
    }
}
