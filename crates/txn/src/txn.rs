//! The transaction: write overlay, op log, write-set, commit/abort.

use crate::handle::{DbHandle, PublishOutcome};
use mad_model::{AtomId, AtomTypeId, FxHashMap, FxHashSet, LinkTypeId, MadError, Result, Value};
use mad_obs::trace::{StageKind, StageTimer};
use mad_storage::Database;
use mad_wal::WalOp;
use std::fmt;
use std::sync::Arc;

/// A key in a transaction's write-set: the piece of **pre-existing**
/// committed state the transaction overwrote. Used for first-committer-wins
/// validation — two committed transactions may not overlap on any key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WriteKey {
    /// An atom updated or deleted (conflicts with any other update/delete
    /// of the same atom).
    Atom(AtomId),
    /// An oriented link pair connected or disconnected between two
    /// pre-existing atoms.
    Link(LinkTypeId, AtomId, AtomId),
}

impl fmt::Display for WriteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteKey::Atom(id) => write!(f, "atom {id}"),
            WriteKey::Link(lt, a, b) => write!(f, "link lt{}({a}, {b})", lt.0),
        }
    }
}

/// One logged DML operation, replayable against a fresh fork at commit.
#[derive(Clone, Debug)]
enum TxnOp {
    Insert {
        ty: AtomTypeId,
        tuple: Vec<Value>,
        provisional: AtomId,
    },
    InsertBatch {
        ty: AtomTypeId,
        tuples: Vec<Vec<Value>>,
        provisional: Vec<AtomId>,
    },
    Delete {
        id: AtomId,
    },
    UpdateAttr {
        id: AtomId,
        attr: usize,
        value: Value,
    },
    Connect {
        lt: LinkTypeId,
        side0: AtomId,
        side1: AtomId,
    },
    Disconnect {
        lt: LinkTypeId,
        side0: AtomId,
        side1: AtomId,
    },
}

/// What a successful [`Transaction::commit`] published.
#[derive(Clone, Debug, Default)]
pub struct CommitInfo {
    /// The commit sequence number the write-set was published at (0 for a
    /// read-only transaction, which publishes nothing).
    pub seq: u64,
    /// Number of logged DML operations replayed/published.
    pub ops: usize,
    /// Transaction-born atoms whose committed id differs from the
    /// provisional id handed out inside the transaction (only possible when
    /// other transactions committed inserts of the same atom type
    /// concurrently; empty on the uncontended fast path).
    pub remap: FxHashMap<AtomId, AtomId>,
}

impl CommitInfo {
    /// The committed id of `id`: remapped if `id` was a provisional
    /// transaction-born atom that landed elsewhere, otherwise unchanged.
    pub fn resolve(&self, id: AtomId) -> AtomId {
        self.remap.get(&id).copied().unwrap_or(id)
    }
}

/// A snapshot-isolated transaction over a [`DbHandle`].
///
/// See the crate docs for the full MVCC design. The fork behind
/// [`Transaction::db`] is the write overlay: queries against it observe the
/// transaction's own uncommitted DML merged into derivation (pushdown
/// bitsets, frontier expansion) while untouched stores and CSR pairs remain
/// physically shared with the committed image.
#[derive(Debug)]
pub struct Transaction {
    handle: DbHandle,
    begin: Arc<Database>,
    begin_seq: u64,
    /// The registry shard this transaction registered its begin in
    /// (passed back on finish — see `ActiveRegistry`).
    reg_shard: usize,
    /// Per atom type: the slot horizon at begin. Atoms at or beyond it are
    /// transaction-born (provisional ids, no conflict keys).
    base_slots: Vec<u32>,
    local: Database,
    ops: Vec<TxnOp>,
    writes: FxHashSet<WriteKey>,
    finished: bool,
}

impl Transaction {
    /// Begin a transaction against the current committed state of `handle`.
    pub fn begin(handle: &DbHandle) -> Self {
        let (begin, begin_seq, reg_shard) = handle.begin_txn();
        let base_slots = (0..begin.schema().atom_type_count())
            .map(|i| begin.atom_slot_count(AtomTypeId(i as u32)) as u32)
            .collect();
        let local = (*begin).clone();
        Transaction {
            handle: handle.clone(),
            begin,
            begin_seq,
            reg_shard,
            base_slots,
            local,
            ops: Vec::new(),
            writes: FxHashSet::default(),
            finished: false,
        }
    }

    /// The transaction's consistent view: the begin snapshot plus every
    /// write this transaction performed (read-your-own-writes). Run any
    /// read — point lookups, molecule derivation, recursive unfolding —
    /// against this database.
    pub fn db(&self) -> &Database {
        &self.local
    }

    /// The commit sequence number of the begin snapshot.
    pub fn begin_seq(&self) -> u64 {
        self.begin_seq
    }

    /// Number of DML operations logged so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Was `id` created inside this transaction (provisional id, subject to
    /// remapping at commit)?
    pub fn is_provisional(&self, id: AtomId) -> bool {
        match self.base_slots.get(id.ty.0 as usize) {
            Some(&horizon) => id.slot >= horizon,
            // a type the begin snapshot did not know cannot pre-exist
            None => true,
        }
    }

    fn record_write(&mut self, key: WriteKey) {
        self.writes.insert(key);
    }

    // ------------------------------------------------------------------
    // DML (mirrors the Database interface)
    // ------------------------------------------------------------------

    /// Insert an atom (validated against the schema immediately). The
    /// returned id is provisional: inside the transaction it is fully
    /// usable; at commit it may be remapped (see [`CommitInfo::remap`]).
    pub fn insert_atom(&mut self, ty: AtomTypeId, tuple: Vec<Value>) -> Result<AtomId> {
        let id = self.local.insert_atom(ty, tuple.clone())?;
        self.ops.push(TxnOp::Insert {
            ty,
            tuple,
            provisional: id,
        });
        Ok(id)
    }

    /// Insert a batch of atoms of one type (one version stamp on the fork,
    /// one logged op).
    pub fn insert_atoms(&mut self, ty: AtomTypeId, tuples: Vec<Vec<Value>>) -> Result<Vec<AtomId>> {
        let ids = self.local.insert_atoms(ty, tuples.iter().cloned())?;
        self.ops.push(TxnOp::InsertBatch {
            ty,
            tuples,
            provisional: ids.clone(),
        });
        Ok(ids)
    }

    /// Delete an atom, cascading into incident links. Returns the number of
    /// links removed *in this transaction's view*.
    pub fn delete_atom(&mut self, id: AtomId) -> Result<usize> {
        let removed = self.local.delete_atom(id)?;
        self.ops.push(TxnOp::Delete { id });
        if !self.is_provisional(id) {
            self.record_write(WriteKey::Atom(id));
        }
        Ok(removed)
    }

    /// Update one attribute of an atom.
    pub fn update_attr(&mut self, id: AtomId, attr: usize, value: Value) -> Result<()> {
        self.local.update_attr(id, attr, value.clone())?;
        self.ops.push(TxnOp::UpdateAttr { id, attr, value });
        if !self.is_provisional(id) {
            self.record_write(WriteKey::Atom(id));
        }
        Ok(())
    }

    /// Connect two atoms with explicit orientation (see
    /// [`Database::connect`]).
    pub fn connect(&mut self, lt: LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool> {
        let added = self.local.connect(lt, side0, side1)?;
        if added {
            self.ops.push(TxnOp::Connect { lt, side0, side1 });
            if !self.is_provisional(side0) && !self.is_provisional(side1) {
                self.record_write(WriteKey::Link(lt, side0, side1));
            }
        }
        Ok(added)
    }

    /// Connect two atoms, inferring the orientation from their types
    /// (errors for reflexive link types, like [`Database::connect_sym`]).
    pub fn connect_sym(&mut self, lt: LinkTypeId, a: AtomId, b: AtomId) -> Result<bool> {
        let def = self.local.schema().link_type(lt);
        if def.is_reflexive() {
            return Err(MadError::integrity(format!(
                "link type `{}` is reflexive; orientation must be explicit",
                def.name
            )));
        }
        if a.ty == def.ends[0] && b.ty == def.ends[1] { // check: allow(panic, "ends is a fixed two-element array")
            self.connect(lt, a, b)
        } else if a.ty == def.ends[1] && b.ty == def.ends[0] { // check: allow(panic, "ends is a fixed two-element array")
            self.connect(lt, b, a)
        } else {
            Err(MadError::integrity(format!(
                "atoms {a} and {b} do not match the endpoints of link type `{}`",
                def.name
            )))
        }
    }

    /// Remove an oriented link. Returns `false` if it did not exist in the
    /// transaction's view.
    pub fn disconnect(&mut self, lt: LinkTypeId, side0: AtomId, side1: AtomId) -> Result<bool> {
        let removed = self.local.disconnect(lt, side0, side1)?;
        if removed {
            self.ops.push(TxnOp::Disconnect { lt, side0, side1 });
            if !self.is_provisional(side0) && !self.is_provisional(side1) {
                self.record_write(WriteKey::Link(lt, side0, side1));
            }
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Validate and publish. On success every other transaction beginning
    /// afterwards sees this write-set in full; on
    /// [`MadError::TxnConflict`] (or a re-execution failure) the
    /// transaction is aborted and the committed state is untouched.
    ///
    /// Publication is **optimistic**: each attempt holds the handle lock
    /// only for key-set validation, an `Arc` pointer check and the swap —
    /// never for op-log replay. On the uncontended path the transaction's
    /// fork publishes as-is (O(1)); when other commits landed since begin,
    /// the op log is replayed against the newest state *outside* the lock
    /// and the attempt repeats, so concurrent readers are never blocked
    /// behind a heavy commit.
    ///
    /// **Durability caveat**: on a durable handle, a [`MadError::Wal`]
    /// error from the post-publication fsync wait means the commit **was
    /// published** (all sessions see it) but its durability is unknown —
    /// it is not a failed transaction and must not be retried. The same
    /// indeterminacy applies to a [`MadError::TxnState`] error from the
    /// replication wait under [`crate::ReplAck::SyncQuorum`] (replication
    /// sealed mid-wait): published and locally durable, replication
    /// unknown. The
    /// handle's log is poisoned: further durable commits fail until a
    /// successful `checkpoint()` rebuilds the log or the database is
    /// reopened. Errors *before* publication (validation conflicts,
    /// replay failures, the WAL append itself) keep the guarantee that
    /// nothing was published.
    pub fn commit(mut self) -> Result<CommitInfo> {
        if self.ops.is_empty() {
            // read-only: nothing to validate or publish
            self.finish();
            return Ok(CommitInfo::default());
        }
        let handle = self.handle.clone();
        let begin_seq = self.begin_seq;
        let keys = std::mem::take(&mut self.writes);
        let ops = std::mem::take(&mut self.ops);
        let base_slots = std::mem::take(&mut self.base_slots);
        let op_count = ops.len();
        // first candidate: the fork itself (valid while the committed
        // state is still the begin snapshot — no replay, no remapping)
        let mut candidate = std::mem::take(&mut self.local);
        let mut observed = Arc::clone(&self.begin);
        let mut remap: FxHashMap<AtomId, AtomId> = FxHashMap::default();
        let durable = handle.is_durable();
        // Straggler escalation: after this many stale publication
        // attempts, take the contention gate and hold it across the
        // remaining replay/publish attempts. Unbounded optimistic retry
        // is quadratic under racing writers — every publication
        // invalidates every in-flight candidate, so each commit rebuilds
        // O(writers) times; the gate bounds the wasted rebuilds per
        // commit to this constant (ARCHITECTURE.md, "The commit
        // pipeline").
        const ESCALATE_AFTER: usize = 2;
        let mut stales = 0usize;
        let mut gate = None;
        loop {
            // the WAL record carries the op log with every provisional id
            // resolved to where this candidate actually placed it, so
            // recovery replay is deterministic; rebuilt per attempt since
            // a replayed attempt maps ids differently
            let wal_ops = durable.then(|| resolve_ops(&ops, &remap));
            // any Err — validation conflict, WAL append failure, replay
            // failure below, even a panic — releases the registration via
            // `finish` (the `?` drops `self`, whose Drop runs it), so a
            // failed commit can never pin the commit log
            match handle.publish_if(
                begin_seq,
                &observed,
                &keys,
                candidate,
                wal_ops.as_deref(),
                gate.is_some(),
            )? {
                PublishOutcome::Published { seq, lsn } => {
                    // published: drop the contention gate (if escalated)
                    // and release the registration *before* the
                    // durability wait, so an fsync stall never pins the
                    // commit log behind this transaction — or the gate
                    // behind this fsync
                    drop(gate.take());
                    self.finish();
                    // the commit is acknowledged only once its record is
                    // durable per the handle's fsync policy (group commit
                    // batches this wait with concurrent committers)...
                    handle.wait_durable(lsn)?;
                    // ...and, under ReplAck::SyncQuorum, once enough
                    // standbys confirmed it durable on their side too
                    let rt = StageTimer::start(StageKind::ReplWait);
                    handle.wait_replicated(seq)?;
                    rt.finish();
                    // the log may now be over its auto-checkpoint
                    // threshold; fold it before acknowledging
                    handle.maybe_auto_checkpoint();
                    // identity mappings (the replayed insert landed on its
                    // provisional slot anyway) are not remappings the
                    // caller needs to see
                    remap.retain(|pid, aid| pid != aid);
                    return Ok(CommitInfo {
                        seq,
                        ops: op_count,
                        remap,
                    });
                }
                PublishOutcome::Stale(current) => {
                    // another commit landed: rebuild the candidate against
                    // it (outside the pipeline's locks — unless this
                    // commit has lost enough races to escalate, in which
                    // case the gate serializes the rebuild against the
                    // other stragglers), dropping any mapping from the
                    // discarded attempt
                    stales += 1;
                    if stales >= ESCALATE_AFTER && gate.is_none() {
                        gate = handle.contention_gate()?;
                    }
                    // the image from the failed attempt may be stale
                    // again after the gate wait; rebuild against the
                    // freshest one
                    let current = if gate.is_some() { handle.committed() } else { current };
                    remap.clear();
                    handle.count_replay();
                    let rt = StageTimer::start(StageKind::Replay);
                    let mut fresh = (*current).clone();
                    replay(&mut fresh, &ops, &base_slots, &mut remap)?;
                    rt.finish_info(&[("ops", mad_model::bin::u64_of_usize(ops.len()))]);
                    observed = current;
                    candidate = fresh;
                }
            }
        }
    }

    /// Drop the overlay; the committed state was never touched.
    pub fn abort(mut self) {
        self.finish();
    }

    /// Release the handle registration exactly once. Every exit path of a
    /// transaction funnels here — commit (success or failure), abort, and
    /// plain drop (early return, panic unwind, a client disconnecting
    /// mid-transaction) — so an abandoned transaction can never keep the
    /// commit log pinned at its begin sequence.
    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.handle.finish_txn(self.begin_seq, self.reg_shard);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Serialize the op log for the write-ahead log, resolving every
/// provisional id through `remap` (empty on the fast path, where
/// provisional ids *are* the committed ids). Later ops referencing a
/// transaction-born atom always find it in `remap` after a replay, because
/// the replay mapped its insert first.
fn resolve_ops(ops: &[TxnOp], remap: &FxHashMap<AtomId, AtomId>) -> Vec<WalOp> {
    let res = |id: AtomId| remap.get(&id).copied().unwrap_or(id);
    ops.iter()
        .map(|op| match op {
            TxnOp::Insert {
                ty,
                tuple,
                provisional,
            } => WalOp::Insert {
                ty: *ty,
                tuple: tuple.clone(),
                id: res(*provisional),
            },
            TxnOp::InsertBatch {
                ty,
                tuples,
                provisional,
            } => WalOp::InsertBatch {
                ty: *ty,
                tuples: tuples.clone(),
                ids: provisional.iter().map(|&p| res(p)).collect(),
            },
            TxnOp::Delete { id } => WalOp::Delete { id: res(*id) },
            TxnOp::UpdateAttr { id, attr, value } => WalOp::UpdateAttr {
                id: res(*id),
                attr: *attr as u32,
                value: value.clone(),
            },
            TxnOp::Connect { lt, side0, side1 } => WalOp::Connect {
                lt: *lt,
                side0: res(*side0),
                side1: res(*side1),
            },
            TxnOp::Disconnect { lt, side0, side1 } => WalOp::Disconnect {
                lt: *lt,
                side0: res(*side0),
                side1: res(*side1),
            },
        })
        .collect()
}

/// Replay the op log against a fork of the *current* committed state,
/// remapping transaction-born atom ids that land on different slots.
fn replay(
    db: &mut Database,
    ops: &[TxnOp],
    base_slots: &[u32],
    remap: &mut FxHashMap<AtomId, AtomId>,
) -> Result<()> {
    let provisional = |id: AtomId| match base_slots.get(id.ty.0 as usize) {
        Some(&horizon) => id.slot >= horizon,
        None => true,
    };
    let resolve = |remap: &FxHashMap<AtomId, AtomId>, id: AtomId| -> Result<AtomId> {
        if provisional(id) {
            remap.get(&id).copied().ok_or_else(|| {
                MadError::integrity(format!(
                    "transaction replay references unmapped provisional atom {id}"
                ))
            })
        } else {
            Ok(id)
        }
    };
    for op in ops {
        match op {
            TxnOp::Insert {
                ty,
                tuple,
                provisional: pid,
            } => {
                let actual = db.insert_atom(*ty, tuple.clone())?;
                remap.insert(*pid, actual);
            }
            TxnOp::InsertBatch {
                ty,
                tuples,
                provisional: pids,
            } => {
                let actual = db.insert_atoms(*ty, tuples.iter().cloned())?;
                for (pid, aid) in pids.iter().zip(actual) {
                    remap.insert(*pid, aid);
                }
            }
            TxnOp::Delete { id } => {
                db.delete_atom(resolve(remap, *id)?)?;
            }
            TxnOp::UpdateAttr { id, attr, value } => {
                db.update_attr(resolve(remap, *id)?, *attr, value.clone())?;
            }
            TxnOp::Connect { lt, side0, side1 } => {
                db.connect(*lt, resolve(remap, *side0)?, resolve(remap, *side1)?)?;
            }
            TxnOp::Disconnect { lt, side0, side1 } => {
                db.disconnect(*lt, resolve(remap, *side0)?, resolve(remap, *side1)?)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder};
    use mad_storage::DatabaseSnapshot;

    fn geo_handle() -> DbHandle {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let s = db.insert_atom(state, vec![Value::from("SP"), Value::from(10)]).unwrap();
        let a = db.insert_atom(area, vec![Value::from(1)]).unwrap();
        db.connect(sa, s, a).unwrap();
        DbHandle::new(db)
    }

    fn ty(handle: &DbHandle, n: &str) -> AtomTypeId {
        handle.committed().schema().atom_type_id(n).unwrap()
    }

    fn lt(handle: &DbHandle, n: &str) -> LinkTypeId {
        handle.committed().schema().link_type_id(n).unwrap()
    }

    #[test]
    fn read_your_own_writes_and_isolation() {
        let h = geo_handle();
        let state = ty(&h, "state");
        let before = h.committed();
        let mut txn = Transaction::begin(&h);
        let rj = txn.insert_atom(state, vec![Value::from("RJ"), Value::from(7)]).unwrap();
        assert!(txn.db().atom_exists(rj), "transaction sees its own insert");
        assert!(!before.atom_exists(rj), "committed snapshot does not");
        assert_eq!(h.committed().atom_count(state), 1, "nothing published yet");
        txn.commit().unwrap();
        assert_eq!(h.committed().atom_count(state), 2);
        // the reader's old Arc still shows the old state
        assert_eq!(before.atom_count(state), 1);
    }

    #[test]
    fn abort_leaves_no_trace() {
        let h = geo_handle();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let before = DatabaseSnapshot::capture(&h.committed()).to_json_string();
        let mut txn = Transaction::begin(&h);
        let rj = txn.insert_atom(state, vec![Value::from("RJ"), Value::from(7)]).unwrap();
        let a9 = txn.insert_atom(area, vec![Value::from(9)]).unwrap();
        txn.connect(sa, rj, a9).unwrap();
        txn.update_attr(AtomId::new(state, 0), 1, Value::from(11)).unwrap();
        txn.delete_atom(AtomId::new(area, 0)).unwrap();
        txn.abort();
        let after = DatabaseSnapshot::capture(&h.committed()).to_json_string();
        assert_eq!(before, after, "abort must be byte-identical");
        assert_eq!(h.commit_log_len(), 0);
    }

    #[test]
    fn first_committer_wins_on_update_update() {
        let h = geo_handle();
        let state = ty(&h, "state");
        let sp = AtomId::new(state, 0);
        let mut t1 = Transaction::begin(&h);
        let mut t2 = Transaction::begin(&h);
        t1.update_attr(sp, 1, Value::from(100)).unwrap();
        t2.update_attr(sp, 1, Value::from(200)).unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, MadError::TxnConflict { .. }), "got {err}");
        assert_eq!(
            h.committed().atom(sp).unwrap()[1],
            Value::from(100),
            "the first committer's write survives"
        );
    }

    #[test]
    fn disjoint_writers_both_commit_with_id_remap() {
        let h = geo_handle();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let mut t1 = Transaction::begin(&h);
        let mut t2 = Transaction::begin(&h);
        let rj1 = t1.insert_atom(state, vec![Value::from("RJ"), Value::from(7)]).unwrap();
        let mg2 = t2.insert_atom(state, vec![Value::from("MG"), Value::from(9)]).unwrap();
        let a2 = t2.insert_atom(area, vec![Value::from(2)]).unwrap();
        t2.connect(sa, mg2, a2).unwrap();
        // both inserted into the same type: t1's slot 1, t2's slot 1 — the
        // second committer's provisional ids must be remapped, never lost
        assert_eq!(rj1.slot, mg2.slot, "both forks allocated the same provisional slot");
        let i1 = t1.commit().unwrap();
        assert!(i1.remap.is_empty(), "fast path: no remapping");
        let i2 = t2.commit().unwrap();
        let mg_final = i2.resolve(mg2);
        assert_ne!(mg_final, mg2, "second committer's insert was remapped");
        let db = h.committed();
        assert_eq!(db.atom_count(state), 3);
        assert_eq!(db.atom(mg_final).unwrap()[0], Value::from("MG"));
        // the connect followed the remapped id
        assert!(db.linked(sa, mg_final, i2.resolve(a2)));
        assert!(db.audit_referential_integrity().is_empty());
    }

    #[test]
    fn replay_revalidates_against_latest_state() {
        // t1 deletes the area; t2 connects a transaction-born state to it.
        // t2's connect records no write key (one endpoint is txn-born), so
        // key validation alone cannot see the race — replay against the
        // latest state must catch the dangling reference instead.
        let h = geo_handle();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let a0 = AtomId::new(area, 0);
        let mut t1 = Transaction::begin(&h);
        let mut t2 = Transaction::begin(&h);
        t1.delete_atom(a0).unwrap();
        let rj = t2.insert_atom(state, vec![Value::from("RJ"), Value::from(7)]).unwrap();
        t2.connect(sa, rj, a0).unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, MadError::IntegrityViolation { .. }), "got {err}");
        assert!(h.committed().audit_referential_integrity().is_empty());
    }

    #[test]
    fn connect_disconnect_same_pair_conflicts() {
        let h = geo_handle();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let (s0, a0) = (AtomId::new(state, 0), AtomId::new(area, 0));
        let mut t1 = Transaction::begin(&h);
        let mut t2 = Transaction::begin(&h);
        t1.disconnect(sa, s0, a0).unwrap();
        t2.disconnect(sa, s0, a0).unwrap();
        t1.commit().unwrap();
        assert!(t2.commit().unwrap_err().is_conflict());
    }

    #[test]
    fn read_only_commit_publishes_nothing() {
        let h = geo_handle();
        let seq = h.commit_seq();
        let before = h.committed();
        let txn = Transaction::begin(&h);
        let _ = txn.db().total_atoms();
        let info = txn.commit().unwrap();
        assert_eq!(info.ops, 0);
        assert_eq!(h.commit_seq(), seq);
        assert!(Arc::ptr_eq(&before, &h.committed()), "no new Arc published");
    }

    #[test]
    fn commit_log_is_pruned() {
        let h = geo_handle();
        let state = ty(&h, "state");
        for i in 0..10 {
            let mut t = Transaction::begin(&h);
            t.update_attr(AtomId::new(state, 0), 1, Value::from(i)).unwrap();
            t.commit().unwrap();
        }
        assert_eq!(
            h.commit_log_len(),
            0,
            "no active transactions → empty log"
        );
        let pinned = Transaction::begin(&h);
        for i in 0..5 {
            let mut t = Transaction::begin(&h);
            t.update_attr(AtomId::new(state, 0), 1, Value::from(100 + i)).unwrap();
            t.commit().unwrap();
        }
        assert_eq!(h.commit_log_len(), 5, "records pinned by the old reader");
        drop(pinned); // Drop unregisters and prunes
        let mut t = Transaction::begin(&h);
        t.update_attr(AtomId::new(state, 0), 1, Value::from(999)).unwrap();
        t.commit().unwrap();
        assert_eq!(h.commit_log_len(), 0);
    }

    #[test]
    fn leaked_and_panicked_transactions_drain_the_commit_log() {
        // the registry-leak regression: a transaction abandoned without
        // commit()/abort() — early return, panic, a client disconnecting
        // mid-transaction — must unregister on drop, or its begin_seq pins
        // the commit log (and the conflict index) forever
        let h = geo_handle();
        let state = ty(&h, "state");
        let sp = AtomId::new(state, 0);
        // records only prune when something is registered to prune *for*:
        // pin an old reader so leaked registrations would be observable
        let commit_one = |h: &DbHandle, v: i64| {
            let mut t = Transaction::begin(h);
            t.update_attr(sp, 1, Value::from(v)).unwrap();
            t.commit().unwrap();
        };
        // 1. leaked by early return (plain drop without commit/abort)
        {
            let mut t = Transaction::begin(&h);
            t.update_attr(sp, 1, Value::from(-1)).unwrap();
        }
        // 2. leaked by a panicking thread (unwind runs Drop)
        let h2 = h.clone();
        let panicked = std::thread::spawn(move || {
            let state = h2.committed().schema().atom_type_id("state").unwrap();
            let mut t = Transaction::begin(&h2);
            t.update_attr(AtomId::new(state, 0), 1, Value::from(-2)).unwrap();
            panic!("client vanished mid-transaction");
        })
        .join();
        assert!(panicked.is_err(), "the thread must have panicked");
        // 3. a commit that *fails* (conflict) must release its registration
        let mut loser = Transaction::begin(&h);
        loser.update_attr(sp, 1, Value::from(-3)).unwrap();
        commit_one(&h, 10);
        assert!(loser.commit().unwrap_err().is_conflict());
        // with every abandoned registration released, the next commit
        // prunes the log back to empty — nothing is pinned
        commit_one(&h, 11);
        assert_eq!(h.commit_log_len(), 0, "a leaked registration pins the log");
        assert_eq!(h.conflict_index_len(), 0, "the conflict index must prune too");
    }

    #[test]
    fn conflict_index_prunes_with_the_log() {
        let h = geo_handle();
        let state = ty(&h, "state");
        let sp = AtomId::new(state, 0);
        let pinned = Transaction::begin(&h);
        for i in 0..5 {
            let mut t = Transaction::begin(&h);
            t.update_attr(sp, 1, Value::from(i)).unwrap();
            // a disjoint insert too, so records carry >1 key
            t.insert_atom(state, vec![Value::from(format!("s{i}")), Value::from(i)])
                .unwrap();
            t.commit().unwrap();
        }
        assert_eq!(h.commit_log_len(), 5, "records pinned by the old reader");
        // all 5 records overwrite the same contended key; the index holds
        // the *last* committing seq per key, so exactly one entry covers it
        assert_eq!(h.conflict_index_len(), 1);
        drop(pinned);
        let mut t = Transaction::begin(&h);
        t.update_attr(sp, 1, Value::from(99)).unwrap();
        t.commit().unwrap();
        assert_eq!(h.commit_log_len(), 0);
        assert_eq!(h.conflict_index_len(), 0);
    }

    #[test]
    fn overlay_csr_rebuild_is_incremental() {
        // the fork's first snapshot after overlay DML re-freezes only the
        // touched link types — the overlay "merged into frontier expansion"
        let schema = SchemaBuilder::new()
            .atom_type("a", &[("x", AttrType::Int)])
            .atom_type("b", &[("y", AttrType::Int)])
            .atom_type("c", &[("z", AttrType::Int)])
            .link_type("ab", "a", "b")
            .link_type("bc", "b", "c")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let (a, b, c) = (
            db.schema().atom_type_id("a").unwrap(),
            db.schema().atom_type_id("b").unwrap(),
            db.schema().atom_type_id("c").unwrap(),
        );
        let (ab, bc) = (
            db.schema().link_type_id("ab").unwrap(),
            db.schema().link_type_id("bc").unwrap(),
        );
        let a0 = db.insert_atom(a, vec![Value::from(0)]).unwrap();
        let b0 = db.insert_atom(b, vec![Value::from(0)]).unwrap();
        let c0 = db.insert_atom(c, vec![Value::from(0)]).unwrap();
        db.connect(ab, a0, b0).unwrap();
        db.connect(bc, b0, c0).unwrap();
        let _ = db.csr_snapshot(); // warm the committed cache
        let h = DbHandle::new(db);
        let mut txn = Transaction::begin(&h);
        let b1 = txn.insert_atom(b, vec![Value::from(1)]).unwrap();
        txn.connect(ab, a0, b1).unwrap();
        let snap = txn.db().csr_snapshot();
        assert_eq!(
            txn.db().csr_rebuild_stats(),
            Some((1, 2)),
            "only the overlay-touched link type was re-frozen"
        );
        // the overlay insert + connect are visible to frontier expansion
        use mad_storage::database::Direction;
        assert_eq!(snap.adjacency(ab, Direction::Fwd).partners_of(a0.slot), &[b0.slot, b1.slot]);
        // the untouched pair is Arc-shared with the committed image
        let committed_snap = h.committed().csr_snapshot();
        assert!(std::ptr::eq(
            committed_snap.adjacency(bc, Direction::Fwd),
            snap.adjacency(bc, Direction::Fwd),
        ));
        txn.abort();
    }

    #[test]
    fn committed_reads_bypass_the_publication_mutex() {
        // the lock-free-publication bugfix: a commit stalled inside the
        // publication mutex (e.g. on a WAL fsync) must not block snapshot
        // reads — committed()/fork()/commit_seq() go through the published
        // cell only
        let h = geo_handle();
        let state = ty(&h, "state");
        let guard = h.lock_publication_for_test();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let h2 = h.clone();
        let reader = std::thread::spawn(move || {
            let db = h2.committed();
            let _ = h2.fork();
            let seq = h2.commit_seq();
            done_tx.send((db.atom_count(state), seq)).unwrap();
        });
        let (count, seq) = done_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("reader blocked behind the held publication mutex");
        assert_eq!((count, seq), (1, 0));
        drop(guard);
        reader.join().unwrap();
    }

    fn wal_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mad-txn-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("mad.wal")
    }

    fn geo_db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        Database::new(schema)
    }

    #[test]
    fn durable_commits_survive_reopen() {
        let path = wal_path("reopen");
        let h = DbHandle::create_durable(geo_db(), &path, mad_wal::FsyncPolicy::Group).unwrap();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let mut t = Transaction::begin(&h);
        let s = t.insert_atom(state, vec![Value::from("SP"), Value::from(10)]).unwrap();
        let a = t.insert_atom(area, vec![Value::from(1)]).unwrap();
        t.connect(sa, s, a).unwrap();
        t.commit().unwrap();
        let mut t = Transaction::begin(&h);
        t.update_attr(s, 1, Value::from(11)).unwrap();
        t.commit().unwrap();
        let expected = DatabaseSnapshot::capture(&h.committed()).to_json_string();
        drop(h);

        let h2 = DbHandle::open_durable(&path, mad_wal::FsyncPolicy::Group).unwrap();
        let info = h2.recovery_info().unwrap();
        assert_eq!(info.commits_replayed, 2);
        assert_eq!(h2.commit_seq(), 2, "sequence numbering continues across restart");
        assert_eq!(
            DatabaseSnapshot::capture(&h2.committed()).to_json_string(),
            expected,
            "recovered state must be byte-identical"
        );
        // and the recovered handle keeps committing durably
        let mut t = Transaction::begin(&h2);
        t.update_attr(AtomId::new(state, 0), 1, Value::from(12)).unwrap();
        assert_eq!(t.commit().unwrap().seq, 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn durable_contended_commit_logs_resolved_ids() {
        // the second committer's inserts are remapped during replay; the
        // WAL must carry the *resolved* slots so recovery reproduces the
        // published state exactly
        let path = wal_path("remap");
        let h = DbHandle::create_durable(geo_db(), &path, mad_wal::FsyncPolicy::Group).unwrap();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let mut t1 = Transaction::begin(&h);
        let mut t2 = Transaction::begin(&h);
        t1.insert_atom(state, vec![Value::from("RJ"), Value::from(7)]).unwrap();
        let mg = t2.insert_atom(state, vec![Value::from("MG"), Value::from(9)]).unwrap();
        let a = t2.insert_atom(area, vec![Value::from(2)]).unwrap();
        t2.connect(sa, mg, a).unwrap();
        t1.commit().unwrap();
        let info = t2.commit().unwrap();
        assert!(!info.remap.is_empty(), "the test needs the contended path");
        let expected = DatabaseSnapshot::capture(&h.committed()).to_json_string();
        drop(h);
        let h2 = DbHandle::open_durable(&path, mad_wal::FsyncPolicy::Group).unwrap();
        assert_eq!(
            DatabaseSnapshot::capture(&h2.committed()).to_json_string(),
            expected
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn with_durability_knob_creates_then_recovers() {
        let path = wal_path("knob");
        let d = crate::Durability::Wal {
            path: path.clone(),
            fsync: mad_wal::FsyncPolicy::PerCommit,
        };
        let h = DbHandle::with_durability(geo_db(), d.clone()).unwrap();
        assert!(h.is_durable());
        assert!(h.recovery_info().is_none(), "fresh log, nothing recovered");
        let state = ty(&h, "state");
        let mut t = Transaction::begin(&h);
        t.insert_atom(state, vec![Value::from("SP"), Value::from(1)]).unwrap();
        t.commit().unwrap();
        drop(h);
        // same knob, existing log: the bootstrap argument is ignored,
        // the logged state wins
        let h2 = DbHandle::with_durability(geo_db(), d).unwrap();
        assert!(h2.recovery_info().is_some());
        assert_eq!(h2.committed().atom_count(state), 1);
        // non-durable handles refuse CHECKPOINT
        assert!(DbHandle::new(geo_db()).checkpoint().is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn checkpoint_bounds_log_and_recovery() {
        let path = wal_path("ckpt");
        let h = DbHandle::create_durable(geo_db(), &path, mad_wal::FsyncPolicy::Group).unwrap();
        let state = ty(&h, "state");
        for i in 0..30 {
            let mut t = Transaction::begin(&h);
            t.insert_atom(state, vec![Value::from(format!("s{i}")), Value::from(i)])
                .unwrap();
            t.commit().unwrap();
        }
        let before = h.wal_len_bytes().unwrap();
        let stats = h.checkpoint().unwrap();
        assert_eq!(stats.bytes_before, before);
        assert!(h.wal_len_bytes().unwrap() < before);
        // post-checkpoint commits land in the fresh log
        let mut t = Transaction::begin(&h);
        t.insert_atom(state, vec![Value::from("late"), Value::from(99)]).unwrap();
        t.commit().unwrap();
        let expected = DatabaseSnapshot::capture(&h.committed()).to_json_string();
        drop(h);
        let h2 = DbHandle::open_durable(&path, mad_wal::FsyncPolicy::Group).unwrap();
        let info = h2.recovery_info().unwrap();
        assert_eq!(info.commits_replayed, 1, "only the post-checkpoint commit replays");
        assert_eq!(h2.commit_seq(), 31);
        assert_eq!(
            DatabaseSnapshot::capture(&h2.committed()).to_json_string(),
            expected
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn concurrent_readers_and_writers_smoke() {
        // the in-crate half of the acceptance smoke test (the full MQL one
        // lives in the workspace tests): 2 writers × 2 readers over one
        // handle, every committed state internally consistent.
        let h = geo_handle();
        let state = ty(&h, "state");
        let area = ty(&h, "area");
        let sa = lt(&h, "state-area");
        let writers = 2;
        let per_writer = 20;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..per_writer as i64 {
                        loop {
                            let mut t = Transaction::begin(&h);
                            let s = t
                                .insert_atom(
                                    state,
                                    vec![Value::from(format!("w{w}-{i}")), Value::from(i)],
                                )
                                .unwrap();
                            let a = t.insert_atom(area, vec![Value::from(1000 + i)]).unwrap();
                            t.connect(sa, s, a).unwrap();
                            match t.commit() {
                                Ok(_) => break,
                                Err(e) if e.is_conflict() => continue,
                                Err(e) => panic!("unexpected commit error: {e}"),
                            }
                        }
                    }
                });
            }
            for _ in 0..2 {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let db = h.committed();
                        // atomicity: every committed state+area pair arrives
                        // together, so counts always match and integrity holds
                        assert!(db.audit_referential_integrity().is_empty());
                        assert_eq!(db.atom_count(state), db.atom_count(area));
                        std::thread::yield_now();
                    }
                });
            }
        });
        let db = h.committed();
        assert_eq!(db.atom_count(state), 1 + writers * per_writer);
        assert_eq!(db.link_count(sa), 1 + writers * per_writer);
    }
}
