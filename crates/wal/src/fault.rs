//! Deterministic storage-level fault injection for the write-ahead log.
//!
//! A [`FaultPlan`] armed on a [`crate::Wal`] makes the *n*-th append or the
//! *n*-th fsync after arming fail exactly the way a real I/O failure
//! would, driving the same code paths a sick disk does:
//!
//! * a failed **append** leaves a torn partial frame behind and exercises
//!   the rollback-or-poison path of [`crate::Wal::append_commit`];
//! * a failed **fsync** poisons the log ("fsyncgate": the kernel may have
//!   dropped the dirty pages, so no later fsync can retroactively prove
//!   the record durable) and exercises the acknowledgement-refusal path
//!   of [`crate::Wal::wait_durable`].
//!
//! Counters are ordinal and deterministic — no clocks, no randomness —
//! so a failing scenario replays byte-for-byte. The plan is disarmed by
//! [`crate::Wal::set_fault_plan`]`(None)`; a plan whose trigger has fired
//! stays inert until re-armed. Fault injection exists for the failover
//! and crash scenarios; production code never arms a plan.

/// Which upcoming log operations fail. Ordinals are 1-based and counted
/// from the moment the plan is armed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Fail the n-th [`crate::Wal::append_commit`] after arming, leaving
    /// a torn partial frame for the rollback path to clean up.
    pub fail_append_at: Option<u64>,
    /// Fail the n-th fsync after arming, poisoning the log.
    pub fail_fsync_at: Option<u64>,
}

/// The armed plan plus its ordinal counters (interior state of a
/// [`crate::Wal`]).
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) plan: Option<FaultPlan>,
    pub(crate) appends_seen: u64,
    pub(crate) fsyncs_seen: u64,
}

impl FaultState {
    /// Count one append; `true` if the plan says this one fails.
    pub(crate) fn trip_append(&mut self) -> bool {
        let Some(plan) = &self.plan else { return false };
        self.appends_seen += 1;
        plan.fail_append_at == Some(self.appends_seen)
    }

    /// Count one fsync; `true` if the plan says this one fails.
    pub(crate) fn trip_fsync(&mut self) -> bool {
        let Some(plan) = &self.plan else { return false };
        self.fsyncs_seen += 1;
        plan.fail_fsync_at == Some(self.fsyncs_seen)
    }
}
