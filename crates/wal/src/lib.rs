#![forbid(unsafe_code)]

//! # mad-wal — write-ahead-log durability for the MAD database
//!
//! PR 3 gave the engine snapshot-isolated transactions whose commit path
//! produces exactly the artifact a WAL needs: a validated, replayable op
//! log with provisional atom ids resolved. This crate persists that
//! artifact, turning the in-memory engine into a database that **survives
//! restart**:
//!
//! * [`WalOp`] / [`WalRecord`] ([`record`]) — the stable binary record
//!   format: an append-only sequence of length-prefixed, CRC-32-checksummed
//!   frames; the first frame is a full database **bootstrap image**, every
//!   further frame one committed transaction's resolved op log.
//! * [`Wal`] ([`log`]) — the log itself: a **manifest** file listing
//!   numbered **segment** files (`wal.0001`, `wal.0002`, …). Appends go
//!   to the last segment and rotate to a fresh one past a size
//!   threshold, so checkpoints stop rewriting one ever-growing file;
//!   pre-segmentation single-file logs migrate in place on first
//!   recovery. [`Wal::append_commit`] is a buffered append (called in
//!   commit order by the publisher, under its commit ticket);
//!   [`Wal::wait_durable`] implements the [`FsyncPolicy`]:
//!   - [`FsyncPolicy::PerCommit`] — one fsync per commit (the baseline),
//!   - [`FsyncPolicy::Group`] — **group commit**: records that arrive
//!     while an fsync is in flight are covered together by the next one,
//!     amortizing one fsync over N concurrent commits,
//!   - [`FsyncPolicy::Never`] — acknowledge immediately; the OS flushes.
//! * [`Wal::recover`] — crash recovery: walk the segments in manifest
//!   order, **truncate the torn tail** at the first incomplete or
//!   checksum-failing frame of the *last* segment (a torn frame in an
//!   interior segment is corruption and a hard error), restore the
//!   bootstrap image and replay every complete commit record. Replay
//!   re-runs the full integrity machinery of `mad_storage` and verifies
//!   that every logged insert re-lands on its recorded slot (slot
//!   allocation is deterministic), so a log that does not match its
//!   bootstrap errors instead of silently corrupting.
//! * [`Wal::checkpoint`] — fold the log into a fresh bootstrap image
//!   written into the **next** segment (atomic manifest swap, old
//!   segments deleted), bounding both log size and recovery time without
//!   rewriting already-closed segments.
//! * [`Wal::tail_commits`] — read committed records newer than a cursor
//!   back out of the log, the source of the replication stream (PR 6);
//!   [`FaultPlan`] ([`fault`]) — deterministic append/fsync fault
//!   injection for the crash and failover scenarios.
//!
//! ## Recovery invariants
//!
//! 1. **Prefix property** — the log is appended through a single handle in
//!    commit-sequence order, so the set of complete frames on disk is
//!    always a prefix of the commit history; a crash loses at most a
//!    suffix of unacknowledged (or, under [`FsyncPolicy::Never`],
//!    unflushed) commits, never an interior record.
//! 2. **Torn tail, not torn state** — a partially written final frame
//!    fails its length or CRC check and is physically truncated; recovery
//!    lands exactly on the last fully-logged commit. Only the **last**
//!    segment can be torn: rotation fsyncs a segment before the manifest
//!    grows past it, so interior segments are complete by construction.
//! 3. **Acknowledgement = durability** — a commit only returns to the
//!    caller after [`Wal::wait_durable`] per the policy; under `PerCommit`
//!    and `Group` an acknowledged commit is on stable storage.
//! 4. **Deterministic replay** — recovery produces a state byte-identical
//!    (in snapshot form) to the one the publisher held at the last logged
//!    commit, verified by slot checks and the storage engine's own
//!    referential-integrity and cardinality validation.
//!
//! This crate knows nothing about transactions or validation — it stores
//! and replays what `mad_txn::DbHandle` hands it. The layering is
//! `model → storage → wal → txn → mql` (see `ARCHITECTURE.md`).

#![warn(missing_docs)]

pub mod fault;
pub mod log;
pub mod record;

pub use fault::FaultPlan;
pub use log::{
    active_segment_path, CheckpointStats, FsyncPolicy, Lsn, RecoveryInfo, TailRead, Wal,
    DEFAULT_SEGMENT_BYTES, MANIFEST_MAGIC,
};
pub use record::{apply_op, crc32, frame_boundaries, WalOp, WalRecord};
