//! The append-only log file: create/recover, group-commit fsync,
//! checkpoint-and-truncate.

use crate::fault::{FaultPlan, FaultState};
use crate::record::{
    apply_op, frame, read_frame, FrameRead, WalRecord, MAGIC,
};
use crate::WalOp;
use mad_model::{MadError, Result};
use mad_obs::trace::{StageKind, StageTimer};
use mad_storage::{Database, DatabaseSnapshot};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// When does a committing transaction wait for its record to hit stable
/// storage?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every commit performs its own `fsync` before returning — the
    /// durability baseline, one fsync per commit, serialized.
    PerCommit,
    /// Group commit (the default): a commit whose record is already
    /// appended waits for the in-flight `fsync` (if any) to finish and
    /// checks whether it covered its record; one fsync amortizes over
    /// every record appended while the previous fsync was running.
    Group,
    /// Never wait: records reach the OS on append and stable storage
    /// whenever the kernel flushes. Commits acknowledged under this policy
    /// can be lost in a crash (but the log prefix property still holds —
    /// recovery never sees a gap).
    Never,
}

fn io_err(context: &str, e: std::io::Error) -> MadError {
    MadError::wal(format!("{context}: {e}"))
}

/// A monotone position in the log: the number of records appended before
/// this one, so record `n` is durable once `durable_lsn > n`.
pub type Lsn = u64;

struct Files {
    file: File,
    /// LSN the next append gets.
    next_lsn: Lsn,
    /// Current byte length of the log.
    bytes: u64,
}

struct SyncState {
    /// Every record with `lsn < durable_lsn` is on stable storage.
    durable_lsn: Lsn,
    /// Is an fsync in flight? (Exactly one syncer at a time; followers
    /// wait on the condvar.)
    syncing: bool,
}

/// What [`Wal::recover`] found.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryInfo {
    /// Commit records replayed (after the bootstrap image).
    pub commits_replayed: u64,
    /// The commit sequence number of the recovered state.
    pub last_seq: u64,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

/// What [`Wal::tail_commits`] found.
#[derive(Clone, Debug)]
pub enum TailRead {
    /// Every complete commit record newer than the requested cursor, in
    /// sequence order: `(seq, resolved op log)` pairs.
    Commits(Vec<(u64, Vec<WalOp>)>),
    /// A checkpoint folded the requested records into the bootstrap
    /// image; the subscriber needs a full snapshot to resynchronize.
    SnapshotNeeded {
        /// Commit sequence of the log's current bootstrap image.
        base_seq: u64,
    },
}

/// Result of a [`Wal::checkpoint`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointStats {
    /// Log size before the checkpoint, in bytes.
    pub bytes_before: u64,
    /// Log size after (one bootstrap record), in bytes.
    pub bytes_after: u64,
    /// The commit sequence number the new bootstrap image carries.
    pub base_seq: u64,
}

/// The write-ahead log of one database deployment.
///
/// All methods take `&self`; the log is shared by every committing session
/// of a [`DbHandle`](../mad_txn/struct.DbHandle.html)-style publisher.
/// Callers serialize [`Wal::append_commit`] externally (the publisher's
/// commit order **is** the log order); [`Wal::wait_durable`] is safe to
/// call from any number of threads concurrently and implements the fsync
/// policy.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    policy: FsyncPolicy,
    files: Mutex<Files>,
    sync: Mutex<SyncState>,
    synced: Condvar,
    fsyncs: AtomicU64,
    /// Group-commit fsync batches performed (`wal.group_batches`).
    batches: AtomicU64,
    /// Records those batches covered (`wal.group_records`): the
    /// amortization factor is `batched / batches`.
    batched: AtomicU64,
    /// Set when the on-disk log can no longer be trusted: a partial
    /// append that could not be rolled back, or a failed fsync (the
    /// kernel may have dropped dirty pages — "fsyncgate"). All further
    /// appends and durability waits fail, so no commit is acknowledged
    /// against a log that recovery could silently truncate.
    poisoned: AtomicBool,
    /// Armed fault-injection plan (tests and failure scenarios only; see
    /// [`crate::fault`]).
    fault: Mutex<FaultState>,
}

impl std::fmt::Debug for Files {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Files")
            .field("next_lsn", &self.next_lsn)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl std::fmt::Debug for SyncState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncState")
            .field("durable_lsn", &self.durable_lsn)
            .field("syncing", &self.syncing)
            .finish()
    }
}

impl Wal {
    /// Create a fresh log at `path` holding `db` as its bootstrap image.
    /// Fails if the file already exists (use [`Wal::recover`] then).
    pub fn create(path: impl AsRef<Path>, db: &Database, policy: FsyncPolicy) -> Result<Wal> {
        Self::create_at_seq(path, db, 0, policy)
    }

    /// Create a fresh log at `path` whose bootstrap image of `db` is
    /// stamped at commit sequence `base_seq` — the replication-bootstrap
    /// path: a standby that received a snapshot taken at `base_seq` turns
    /// it into a local log whose next appended commit is `base_seq + 1`,
    /// so recovery and promotion continue the primary's numbering
    /// seamlessly. Fails if the file already exists.
    pub fn create_at_seq(
        path: impl AsRef<Path>,
        db: &Database,
        base_seq: u64,
        policy: FsyncPolicy,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(&format!("create log `{}`", path.display()), e))?;
        let bytes = write_bootstrap(&mut file, db, base_seq)?;
        sync_parent_dir(&path)?;
        Ok(Wal {
            path,
            policy,
            files: Mutex::new(Files {
                file,
                next_lsn: 1,
                bytes,
            }),
            sync: Mutex::new(SyncState {
                durable_lsn: 1,
                syncing: false,
            }),
            synced: Condvar::new(),
            fsyncs: AtomicU64::new(1),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            fault: Mutex::new(FaultState::default()),
        })
    }

    /// Open an existing log: scan it, truncate any torn tail, replay the
    /// bootstrap image plus every complete commit record, and return the
    /// log (positioned for appending) with the recovered database.
    pub fn recover(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(Wal, Database, RecoveryInfo)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&format!("open log `{}`", path.display()), e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| io_err("read log", e))?;
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(MadError::wal(format!(
                "`{}` is not a MAD write-ahead log (bad magic)",
                path.display()
            )));
        }

        // scan: stop at the first incomplete/corrupt frame (the torn tail)
        let mut offset = MAGIC.len();
        let mut records = Vec::new();
        while let FrameRead::Ok(rec, end) = read_frame(&buf, offset) {
            records.push(rec);
            offset = end;
        }
        let truncated = (buf.len() - offset) as u64;
        if truncated > 0 {
            file.set_len(offset as u64)
                .map_err(|e| io_err("truncate torn tail", e))?;
            file.sync_data().map_err(|e| io_err("fsync after truncate", e))?;
        }
        // the cursor sits at the old EOF after read_to_end; reposition it
        // to the (possibly truncated) end so appends continue the log
        // instead of leaving a zero-filled hole past the torn tail
        file.seek(SeekFrom::Start(offset as u64))
            .map_err(|e| io_err("seek to log end", e))?;

        // replay: bootstrap image first, then commits in sequence
        let mut iter = records.into_iter();
        let (base_seq, mut db) = match iter.next() {
            Some(WalRecord::Bootstrap { base_seq, snapshot }) => {
                (base_seq, snapshot.restore()?)
            }
            Some(WalRecord::Commit { .. }) => {
                return Err(MadError::wal("log does not start with a bootstrap record"))
            }
            None => return Err(MadError::wal("log holds no complete record")),
        };
        let mut last_seq = base_seq;
        let mut commits = 0u64;
        for rec in iter {
            match rec {
                WalRecord::Commit { seq, ops } => {
                    if seq != last_seq + 1 {
                        return Err(MadError::wal(format!(
                            "commit sequence gap: expected {}, log has {seq}",
                            last_seq + 1
                        )));
                    }
                    for op in &ops {
                        apply_op(&mut db, op)?;
                    }
                    last_seq = seq;
                    commits += 1;
                }
                WalRecord::Bootstrap { .. } => {
                    return Err(MadError::wal(
                        "unexpected bootstrap record mid-log (checkpoint rewrites, it never appends)",
                    ))
                }
            }
        }

        let lsn = 1 + commits;
        let wal = Wal {
            path,
            policy,
            files: Mutex::new(Files {
                file,
                next_lsn: lsn,
                bytes: offset as u64,
            }),
            sync: Mutex::new(SyncState {
                durable_lsn: lsn,
                syncing: false,
            }),
            synced: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            fault: Mutex::new(FaultState::default()),
        };
        let info = RecoveryInfo {
            commits_replayed: commits,
            last_seq,
            truncated_bytes: truncated,
        };
        Ok((wal, db, info))
    }

    /// The fsync policy this log runs under.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.files.lock().unwrap().bytes
    }

    /// Total fsyncs performed since open (the group-commit amortization
    /// shows up as `fsyncs ≪ commits`).
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// `(batches, records_covered)` of group-commit fsyncs since open —
    /// `records_covered / batches` is the amortization factor commits
    /// are currently enjoying. Both zero under other fsync policies.
    pub fn group_commit_stats(&self) -> (u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.batched.load(Ordering::Relaxed),
        )
    }

    /// Append one committed transaction's record (buffered OS write, no
    /// fsync) and return its [`Lsn`]. Callers must append in commit-seq
    /// order — the publisher's commit path does this under its publication
    /// lock.
    ///
    /// A failed append is rolled back (truncate to the pre-append length)
    /// so later records never sit beyond garbage bytes; if even the
    /// rollback fails, the log is poisoned and every further append
    /// errors.
    pub fn append_commit(&self, seq: u64, ops: &[WalOp]) -> Result<Lsn> {
        self.check_poisoned()?;
        let at = StageTimer::start(StageKind::WalAppend);
        let framed = frame(&WalRecord::Commit {
            seq,
            ops: ops.to_vec(),
        })?;
        let mut files = self.files.lock().unwrap();
        let written = if self.fault.lock().unwrap().trip_append() {
            // injected fault: leave a torn partial frame behind, exactly
            // like a disk dying mid-write, then fail the append
            let cut = framed.len() / 2;
            let _ = files.file.write_all(&framed[..cut]);
            Err(std::io::Error::other("injected append fault"))
        } else {
            files.file.write_all(&framed)
        };
        if let Err(e) = written {
            // a partial frame may be on disk; cut back to the last good
            // byte so an acknowledged later commit is never stranded
            // behind a torn interior record
            let good = files.bytes;
            let restore = files
                .file
                .set_len(good)
                .and_then(|()| files.file.seek(SeekFrom::Start(good)).map(|_| ()));
            if restore.is_err() {
                self.poisoned.store(true, Ordering::SeqCst);
            }
            return Err(io_err("append commit record", e));
        }
        files.bytes += framed.len() as u64;
        let lsn = files.next_lsn;
        files.next_lsn += 1;
        at.finish_info(&[("bytes", mad_model::bin::u64_of_usize(framed.len()))]);
        Ok(lsn)
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(MadError::wal(
                "write-ahead log is poisoned after an unrecoverable I/O failure; \
                 reopen the database to recover from the last durable state",
            ));
        }
        Ok(())
    }

    /// Block until the record at `lsn` is durable per the fsync policy.
    /// See [`FsyncPolicy`] for what each level guarantees.
    ///
    /// An fsync failure poisons the log (see [`Wal::append_commit`]): the
    /// kernel may have dropped the dirty pages, so no later fsync can
    /// retroactively prove this record durable.
    pub fn wait_durable(&self, lsn: Lsn) -> Result<()> {
        self.check_poisoned()?;
        match self.policy {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::PerCommit => {
                let ft = StageTimer::start(StageKind::FsyncWait);
                // baseline: one fsync per commit, no batching, serialized
                // through the sync lock
                let st = self.sync.lock().unwrap();
                let high = self.files.lock().unwrap().next_lsn;
                self.fsync_log()?;
                let mut st = st;
                st.durable_lsn = st.durable_lsn.max(high);
                ft.finish_info(&[("batch", 1)]);
                Ok(())
            }
            FsyncPolicy::Group => {
                let ft = StageTimer::start(StageKind::FsyncWait);
                let batch = self.wait_durable_grouped(lsn)?;
                // `batch` > 0 only when this thread was the elected
                // group-commit syncer; a pure waiter rode along
                ft.finish_info(&[("batch", batch)]);
                Ok(())
            }
        }
    }

    /// Returns the number of records this thread's own fsync batches
    /// covered (0 when the wait was satisfied by another thread's sync).
    fn wait_durable_grouped(&self, lsn: Lsn) -> Result<u64> {
        let mut covered = 0u64;
        let mut st = self.sync.lock().unwrap();
        loop {
            if st.durable_lsn > lsn {
                return Ok(covered);
            }
            if self.poisoned.load(Ordering::SeqCst) {
                drop(st);
                return self.check_poisoned().map(|()| covered);
            }
            if st.syncing {
                // an fsync is in flight; by the time it finishes it may or
                // may not cover our record — loop to re-check
                st = self.synced.wait(st).unwrap();
                continue;
            }
            // become the syncer for everything appended so far — but first
            // let the batch fill: committers that are mid-publication right
            // now would otherwise each trigger their own fsync. Yield while
            // the append stream is still growing (a `commit_delay` in the
            // PostgreSQL sense, but adaptive: a lone writer quiesces after
            // one yield and pays essentially nothing).
            st.syncing = true;
            let durable_before = st.durable_lsn;
            drop(st);
            let mut high = self.files.lock().unwrap().next_lsn;
            let batch_deadline =
                std::time::Instant::now() + std::time::Duration::from_micros(250);
            let mut quiet = 0u32;
            loop {
                std::thread::yield_now();
                let now_high = self.files.lock().unwrap().next_lsn;
                // two consecutive quiet observations, so one committer
                // that merely hasn't been scheduled yet doesn't shrink
                // the batch to a premature lone fsync
                quiet = if now_high == high { quiet + 1 } else { 0 };
                high = now_high;
                if quiet >= 2 || std::time::Instant::now() >= batch_deadline {
                    break;
                }
            }
            let res = self.fsync_log();
            st = self.sync.lock().unwrap();
            st.syncing = false;
            if res.is_ok() {
                st.durable_lsn = st.durable_lsn.max(high);
                let records = high.saturating_sub(durable_before);
                covered += records;
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.batched.fetch_add(records, Ordering::Relaxed);
            }
            // notify while holding the mutex: futex wait-morphing requeues
            // the waiters instead of stampeding them awake
            self.synced.notify_all();
            res?;
        }
    }

    /// One fsync of the current log file. Uses a duplicated handle so the
    /// append path is never blocked behind the flush.
    fn fsync_log(&self) -> Result<()> {
        if self.fault.lock().unwrap().trip_fsync() {
            // injected fault: indistinguishable from a real failed fsync
            // — the log poisons and no covered commit is acknowledged
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(io_err(
                "fsync log",
                std::io::Error::other("injected fsync fault"),
            ));
        }
        let dup = self
            .files
            .lock()
            .unwrap()
            .file
            .try_clone()
            .map_err(|e| io_err("clone log handle", e))?;
        if let Err(e) = dup.sync_data() {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(io_err("fsync log", e));
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Arm (or with `None` disarm) a deterministic [`FaultPlan`]; ordinal
    /// counters restart from zero at every call. See [`crate::fault`].
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.lock().unwrap() = FaultState {
            plan,
            ..FaultState::default()
        };
    }

    /// Read every complete commit record with `seq > from_seq` back out of
    /// the log — the replication-stream source. Returns
    /// [`TailRead::SnapshotNeeded`] when a checkpoint has folded the
    /// requested records into the bootstrap image (the subscriber is
    /// behind the checkpoint horizon and needs a full snapshot instead).
    ///
    /// The scan goes through the file *path*, not the shared append
    /// handle, so tailing never contends with committers: appends are
    /// strictly ordered, a checkpoint swaps files atomically (either
    /// image is a valid log), and a final frame torn by an in-flight
    /// append ends the scan exactly like recovery's torn-tail rule —
    /// the caller picks such records up from the live commit feed.
    pub fn tail_commits(&self, from_seq: u64) -> Result<TailRead> {
        let buf = std::fs::read(&self.path).map_err(|e| io_err("read log for tailing", e))?;
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(MadError::wal("tail of a non-WAL file (bad magic)"));
        }
        let mut offset = MAGIC.len();
        let mut first = true;
        let mut commits = Vec::new();
        while let FrameRead::Ok(rec, end) = read_frame(&buf, offset) {
            match (first, rec) {
                (true, WalRecord::Bootstrap { base_seq, .. }) => {
                    if base_seq > from_seq {
                        return Ok(TailRead::SnapshotNeeded { base_seq });
                    }
                }
                (true, WalRecord::Commit { .. }) => {
                    return Err(MadError::wal("log does not start with a bootstrap record"))
                }
                (false, WalRecord::Commit { seq, ops }) if seq > from_seq => {
                    commits.push((seq, ops));
                }
                (false, WalRecord::Commit { .. }) => {}
                (false, WalRecord::Bootstrap { .. }) => {
                    return Err(MadError::wal("unexpected bootstrap record mid-log"))
                }
            }
            first = false;
            offset = end;
        }
        Ok(TailRead::Commits(commits))
    }

    /// Replace the log with a fresh bootstrap image of `db` (taken at
    /// commit sequence `base_seq`), dropping every commit record — the
    /// checkpoint-and-truncate operation. Atomic: the new log is written
    /// to a temporary file, fsynced, and renamed over the old one, so a
    /// crash mid-checkpoint recovers from either the old or the new log,
    /// never a mix.
    ///
    /// The caller must guarantee no concurrent [`Wal::append_commit`]
    /// (the publisher runs checkpoints under its publication lock).
    pub fn checkpoint(&self, db: &Database, base_seq: u64) -> Result<CheckpointStats> {
        // claim the syncer slot so no fsync races the file swap
        let mut st = self.sync.lock().unwrap();
        while st.syncing {
            st = self.synced.wait(st).unwrap();
        }
        st.syncing = true;
        drop(st);

        let result = self.checkpoint_inner(db, base_seq);

        let mut st = self.sync.lock().unwrap();
        st.syncing = false;
        if result.is_ok() {
            // the fresh log is fully durable — and trustworthy again,
            // even if an earlier fsync failure had poisoned the old file
            st.durable_lsn = self.files.lock().unwrap().next_lsn;
            self.poisoned.store(false, Ordering::SeqCst);
        }
        self.synced.notify_all();
        result
    }

    fn checkpoint_inner(&self, db: &Database, base_seq: u64) -> Result<CheckpointStats> {
        let tmp = self.path.with_extension("tmp");
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err("create checkpoint file", e))?;
        let bytes_after = write_bootstrap(&mut file, db, base_seq)?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("swap checkpoint into place", e))?;
        sync_parent_dir(&self.path)?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let mut files = self.files.lock().unwrap();
        let bytes_before = files.bytes;
        files.file = file;
        files.bytes = bytes_after;
        files.next_lsn += 1; // the bootstrap record occupies one LSN
        Ok(CheckpointStats {
            bytes_before,
            bytes_after,
            base_seq,
        })
    }
}

/// Write magic + bootstrap frame and fsync; returns the file length.
fn write_bootstrap(file: &mut File, db: &Database, base_seq: u64) -> Result<u64> {
    let record = WalRecord::Bootstrap {
        base_seq,
        snapshot: Box::new(DatabaseSnapshot::capture(db)),
    };
    let framed = frame(&record)?;
    file.write_all(MAGIC).map_err(|e| io_err("write magic", e))?;
    file.write_all(&framed)
        .map_err(|e| io_err("write bootstrap record", e))?;
    file.sync_data().map_err(|e| io_err("fsync bootstrap", e))?;
    Ok((MAGIC.len() + framed.len()) as u64)
}

/// Fsync the directory holding `path`, making a create/rename durable.
/// Best-effort on platforms where directories cannot be opened.
fn sync_parent_dir(path: &Path) -> Result<()> {
    let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(dir) {
        Ok(d) => d
            .sync_data()
            .map_err(|e| io_err("fsync log directory", e)),
        Err(_) => Ok(()), // e.g. platforms without O_DIRECTORY semantics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mad-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        db
    }

    #[test]
    fn create_append_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("mad.wal");
        let mut db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();

        // two committed "transactions", applied in parallel to our model db
        for (seq, name) in [(1u64, "MG"), (2, "RJ")] {
            let id = db.insert_atom(state, vec![Value::from(name)]).unwrap();
            let ops = vec![WalOp::Insert {
                ty: state,
                tuple: vec![Value::from(name)],
                id,
            }];
            let lsn = wal.append_commit(seq, &ops).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        drop(wal);

        let (wal2, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 2);
        assert_eq!(info.last_seq, 2);
        assert_eq!(info.truncated_bytes, 0);
        assert_eq!(
            DatabaseSnapshot::capture(&recovered).to_json_string(),
            DatabaseSnapshot::capture(&db).to_json_string()
        );
        // the recovered log accepts further appends
        let lsn = wal2
            .append_commit(
                3,
                &[WalOp::UpdateAttr {
                    id: mad_model::AtomId::new(state, 0),
                    attr: 0,
                    value: Value::from("SP2"),
                }],
            )
            .unwrap();
        wal2.wait_durable(lsn).unwrap();
        drop(wal2);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 3);
        assert_eq!(
            recovered.atom(mad_model::AtomId::new(state, 0)).unwrap()[0],
            Value::from("SP2")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_file() {
        let dir = tmpdir("exists");
        let path = dir.join("mad.wal");
        let db = small_db();
        Wal::create(&path, &db, FsyncPolicy::Never).unwrap();
        assert!(Wal::create(&path, &db, FsyncPolicy::Never).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_truncates_torn_tail() {
        let dir = tmpdir("torn");
        let path = dir.join("mad.wal");
        let db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Never).unwrap();
        let ops = vec![WalOp::Insert {
            ty: state,
            tuple: vec![Value::from("MG")],
            id: mad_model::AtomId::new(state, 1),
        }];
        wal.append_commit(1, &ops).unwrap();
        drop(wal);
        // tear the final record: chop 3 bytes off the file
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.commits_replayed, 0, "the torn commit is gone");
        assert!(info.truncated_bytes > 0);
        assert_eq!(recovered.atom_count(state), 1, "bootstrap state only");
        // the truncation is physical: a second recover sees a clean log
        let (_, _, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_after_torn_recovery_survive_the_next_recovery() {
        // regression: recover() repositions the write cursor after
        // truncating the torn tail — without the seek, post-recovery
        // appends landed past a zero-filled hole and the NEXT recovery
        // silently dropped every acknowledged commit
        let dir = tmpdir("torn-then-append");
        let path = dir.join("mad.wal");
        let db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();
        let ops = vec![WalOp::Insert {
            ty: state,
            tuple: vec![Value::from("MG")],
            id: mad_model::AtomId::new(state, 1),
        }];
        let lsn = wal.append_commit(1, &ops).unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        // tear the final record
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        // recover (truncates the tail), then commit again
        let (wal, _, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert!(info.truncated_bytes > 0);
        let lsn = wal.append_commit(1, &ops).unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        // the re-appended commit must be recoverable — no hole in the log
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.truncated_bytes, 0, "log must be hole-free");
        assert_eq!(info.commits_replayed, 1);
        assert!(recovered.atom_exists(mad_model::AtomId::new(state, 1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_non_wal_files() {
        let dir = tmpdir("badmagic");
        let path = dir.join("mad.wal");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::recover(&path, FsyncPolicy::Never).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_and_survives_recovery() {
        let dir = tmpdir("checkpoint");
        let path = dir.join("mad.wal");
        let mut db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();
        for seq in 1..=20u64 {
            let id = db
                .insert_atom(state, vec![Value::from(format!("s{seq}"))])
                .unwrap();
            let lsn = wal
                .append_commit(
                    seq,
                    &[WalOp::Insert {
                        ty: state,
                        tuple: vec![Value::from(format!("s{seq}"))],
                        id,
                    }],
                )
                .unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        let stats = wal.checkpoint(&db, 20).unwrap();
        assert!(
            stats.bytes_after < stats.bytes_before,
            "checkpoint must shrink the log ({} -> {})",
            stats.bytes_before,
            stats.bytes_after
        );
        drop(wal);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 0, "commits were folded into the image");
        assert_eq!(info.last_seq, 20, "sequence numbering continues");
        assert_eq!(recovered.atom_count(state), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_amortizes_fsyncs_across_threads() {
        let dir = tmpdir("group");
        let path = dir.join("mad.wal");
        let db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();
        // seq allocation + append happen under one lock (mirroring the
        // publisher's publication lock: commit order IS append order);
        // only the durability wait runs concurrently
        let publication = Mutex::new(0u64);
        let writers = 8usize;
        let per_writer = 25u64;
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let wal = &wal;
                let publication = &publication;
                scope.spawn(move || {
                    for _ in 0..per_writer {
                        let lsn = {
                            let mut seq = publication.lock().unwrap();
                            *seq += 1;
                            let ops = vec![WalOp::Insert {
                                ty: state,
                                tuple: vec![Value::from(format!("g{seq}"))],
                                id: mad_model::AtomId::new(state, *seq as u32),
                            }];
                            wal.append_commit(*seq, &ops).unwrap()
                        };
                        wal.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        let commits = writers as u64 * per_writer;
        let fsyncs = wal.fsync_count();
        assert!(
            fsyncs < commits,
            "group commit should need fewer fsyncs than commits ({fsyncs} vs {commits})"
        );
        drop(wal);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, commits);
        assert_eq!(recovered.atom_count(state), 1 + commits as usize);
        std::fs::remove_dir_all(&dir).ok();
    }
}
