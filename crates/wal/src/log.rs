//! The append-only log: create/recover, group-commit fsync, segment
//! rotation, checkpoint-and-truncate.
//!
//! ## Segmented layout
//!
//! A log is a **manifest** file plus one or more **segment** files in the
//! same directory. The manifest (at the path callers hand to
//! [`Wal::create`] / [`Wal::recover`]) starts with its own magic and
//! lists the live segment file names in order, one per line; each segment
//! starts with the WAL magic and holds length-prefixed CRC frames. The
//! first frame of the *first listed* segment is the bootstrap image;
//! every later frame anywhere is one commit record. Appends go to the
//! *last* listed segment; when it exceeds [`Wal::set_max_segment_bytes`]
//! the log **rotates**: the closing segment is fsynced, a fresh segment
//! is created, and the manifest is atomically rewritten (temp + rename +
//! directory fsync). A checkpoint writes the bootstrap into a brand-new
//! segment and shrinks the manifest to just that segment, so it no longer
//! rewrites one ever-growing file.
//!
//! Segment numbers are monotone and never reused, so replication cursors
//! and tailing survive any interleaving of rotation and checkpoint.
//!
//! **Torn-tail rule**: only the *last* segment may end in a torn frame
//! (recovery truncates it, exactly as in the single-file format). A torn
//! frame inside an interior segment is a hard error — interior segments
//! were completed and fsynced before the manifest grew past them, so a
//! tear there is corruption, not a crash artifact.
//!
//! Pre-segmentation logs (a single file starting with the WAL magic) are
//! migrated in place on the first [`Wal::recover`]: the file is renamed
//! to segment `0001` and a manifest is journaled into its place (the
//! journal file makes the two renames crash-safe).

use crate::fault::{FaultPlan, FaultState};
use crate::record::{
    apply_op, frame, read_frame, FrameRead, WalRecord, MAGIC,
};
use crate::WalOp;
use mad_model::{MadError, Result};
use mad_obs::trace::{StageKind, StageTimer};
use mad_storage::{Database, DatabaseSnapshot};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// When does a committing transaction wait for its record to hit stable
/// storage?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every commit performs its own `fsync` before returning — the
    /// durability baseline, one fsync per commit, serialized.
    PerCommit,
    /// Group commit (the default): a commit whose record is already
    /// appended waits for the in-flight `fsync` (if any) to finish and
    /// checks whether it covered its record; one fsync amortizes over
    /// every record appended while the previous fsync was running.
    Group,
    /// Never wait: records reach the OS on append and stable storage
    /// whenever the kernel flushes. Commits acknowledged under this policy
    /// can be lost in a crash (but the log prefix property still holds —
    /// recovery never sees a gap).
    Never,
}

/// First bytes of a log **manifest** file (the segment list). Distinct
/// from [`MAGIC`], which opens every segment (and pre-segmentation
/// single-file logs).
pub const MANIFEST_MAGIC: &[u8] = b"MADWALM1\n";

/// Default rotation threshold: a segment past this size closes at the
/// next append and a fresh one opens.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

fn io_err(context: &str, e: std::io::Error) -> MadError {
    MadError::wal(format!("{context}: {e}"))
}

/// A monotone position in the log: the number of records appended before
/// this one, so record `n` is durable once `durable_lsn > n`.
pub type Lsn = u64;

struct Files {
    /// Open handle to the **active** (last listed) segment.
    file: File,
    /// LSN the next append gets.
    next_lsn: Lsn,
    /// Total byte length of the log across all live segments.
    bytes: u64,
    /// Byte length of the active segment (the rotation trigger).
    seg_bytes: u64,
    /// Live segment numbers, ascending; the last one is active.
    segs: Vec<u64>,
    /// Rotation threshold for the active segment.
    max_seg_bytes: u64,
}

struct SyncState {
    /// Every record with `lsn < durable_lsn` is on stable storage.
    durable_lsn: Lsn,
    /// Is an fsync in flight? (Exactly one syncer at a time; followers
    /// wait on the condvar.)
    syncing: bool,
}

/// What [`Wal::recover`] found.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryInfo {
    /// Commit records replayed (after the bootstrap image).
    pub commits_replayed: u64,
    /// The commit sequence number of the recovered state.
    pub last_seq: u64,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub truncated_bytes: u64,
    /// Log segments the recovery walked (1 for a freshly migrated
    /// pre-segmentation log).
    pub segments: u64,
}

/// What [`Wal::tail_commits`] found.
#[derive(Clone, Debug)]
pub enum TailRead {
    /// Every complete commit record newer than the requested cursor, in
    /// sequence order: `(seq, resolved op log)` pairs.
    Commits(Vec<(u64, Vec<WalOp>)>),
    /// A checkpoint folded the requested records into the bootstrap
    /// image; the subscriber needs a full snapshot to resynchronize.
    SnapshotNeeded {
        /// Commit sequence of the log's current bootstrap image.
        base_seq: u64,
    },
}

/// Result of a [`Wal::checkpoint`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointStats {
    /// Log size before the checkpoint, in bytes (all segments).
    pub bytes_before: u64,
    /// Log size after (one bootstrap segment), in bytes.
    pub bytes_after: u64,
    /// The commit sequence number the new bootstrap image carries.
    pub base_seq: u64,
}

/// The write-ahead log of one database deployment.
///
/// All methods take `&self`; the log is shared by every committing session
/// of a [`DbHandle`](../mad_txn/struct.DbHandle.html)-style publisher.
/// Callers serialize [`Wal::append_commit`] externally (the publisher's
/// commit order **is** the log order); [`Wal::wait_durable`] is safe to
/// call from any number of threads concurrently and implements the fsync
/// policy.
#[derive(Debug)]
pub struct Wal {
    /// The **manifest** path (what callers know as "the log").
    path: PathBuf,
    policy: FsyncPolicy,
    files: Mutex<Files>,
    sync: Mutex<SyncState>,
    synced: Condvar,
    fsyncs: AtomicU64,
    /// Group-commit fsync batches performed (`wal.group_batches`).
    batches: AtomicU64,
    /// Records those batches covered (`wal.group_records`): the
    /// amortization factor is `batched / batches`.
    batched: AtomicU64,
    /// Set when the on-disk log can no longer be trusted: a partial
    /// append that could not be rolled back, or a failed fsync (the
    /// kernel may have dropped dirty pages — "fsyncgate"). All further
    /// appends and durability waits fail, so no commit is acknowledged
    /// against a log that recovery could silently truncate.
    poisoned: AtomicBool,
    /// Armed fault-injection plan (tests and failure scenarios only; see
    /// [`crate::fault`]).
    fault: Mutex<FaultState>,
}

impl std::fmt::Debug for Files {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Files")
            .field("next_lsn", &self.next_lsn)
            .field("bytes", &self.bytes)
            .field("seg_bytes", &self.seg_bytes)
            .field("segs", &self.segs)
            .finish()
    }
}

impl std::fmt::Debug for SyncState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncState")
            .field("durable_lsn", &self.durable_lsn)
            .field("syncing", &self.syncing)
            .finish()
    }
}

/// The file name of segment `n` of the log at `path` (lives beside the
/// manifest): `{manifest_file_name}.{n:04}`.
fn segment_name(path: &Path, n: u64) -> String {
    let stem = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "wal".to_string());
    format!("{stem}.{n:04}")
}

/// Full path of segment `n` of the log at `path`.
fn segment_path(path: &Path, n: u64) -> PathBuf {
    path.with_file_name(segment_name(path, n))
}

/// The segment number encoded in a manifest entry (its final dot-suffix).
fn segment_number(name: &str) -> Result<u64> {
    name.rsplit('.')
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            MadError::wal(format!("malformed segment name `{name}` in log manifest"))
        })
}

/// The manifest-journal path used to make manifest swaps crash-safe.
fn manifest_journal(path: &Path) -> PathBuf {
    path.with_extension("mtmp")
}

/// Parse a manifest body (already verified to start with
/// [`MANIFEST_MAGIC`]) into its segment file names.
fn parse_manifest(buf: &[u8]) -> Result<Vec<String>> {
    let body = std::str::from_utf8(&buf[MANIFEST_MAGIC.len()..])
        .map_err(|_| MadError::wal("log manifest is not valid UTF-8"))?;
    let names: Vec<String> = body
        .lines()
        .filter(|l| !l.is_empty())
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        return Err(MadError::wal("log manifest lists no segments"));
    }
    for name in &names {
        if name.contains('/') || name.contains('\\') {
            return Err(MadError::wal(format!(
                "segment name `{name}` escapes the log directory"
            )));
        }
    }
    Ok(names)
}

/// Atomically (re)write the manifest at `path`: journal file + fsync +
/// rename + directory fsync.
fn write_manifest(path: &Path, names: &[String]) -> Result<()> {
    let tmp = manifest_journal(path);
    let mut buf = Vec::from(MANIFEST_MAGIC);
    for name in names {
        buf.extend_from_slice(name.as_bytes());
        buf.push(b'\n');
    }
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err("create manifest journal", e))?;
    file.write_all(&buf)
        .map_err(|e| io_err("write log manifest", e))?;
    file.sync_data()
        .map_err(|e| io_err("fsync log manifest", e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err("swap log manifest into place", e))?;
    sync_parent_dir(path)
}

/// The segment file the log at `path` is currently appending to — what a
/// crash scenario must cut to simulate a torn tail. Returns `path` itself
/// for a pre-segmentation single-file log.
pub fn active_segment_path(path: impl AsRef<Path>) -> Result<PathBuf> {
    let path = path.as_ref();
    let head = std::fs::read(path).map_err(|e| io_err("read log manifest", e))?;
    if head.starts_with(MAGIC) {
        return Ok(path.to_path_buf());
    }
    if !head.starts_with(MANIFEST_MAGIC) {
        return Err(MadError::wal(format!(
            "`{}` is not a MAD write-ahead log (bad magic)",
            path.display()
        )));
    }
    let names = parse_manifest(&head)?;
    match names.last() {
        Some(name) => Ok(path.with_file_name(name)),
        None => Err(MadError::wal("log manifest lists no segments")),
    }
}

impl Wal {
    /// Create a fresh log at `path` holding `db` as its bootstrap image.
    /// Fails if the file already exists (use [`Wal::recover`] then).
    pub fn create(path: impl AsRef<Path>, db: &Database, policy: FsyncPolicy) -> Result<Wal> {
        Self::create_at_seq(path, db, 0, policy)
    }

    /// Create a fresh log at `path` whose bootstrap image of `db` is
    /// stamped at commit sequence `base_seq` — the replication-bootstrap
    /// path: a standby that received a snapshot taken at `base_seq` turns
    /// it into a local log whose next appended commit is `base_seq + 1`,
    /// so recovery and promotion continue the primary's numbering
    /// seamlessly. Fails if the file already exists.
    pub fn create_at_seq(
        path: impl AsRef<Path>,
        db: &Database,
        base_seq: u64,
        policy: FsyncPolicy,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            return Err(MadError::wal(format!(
                "create log `{}`: file exists (recover it instead)",
                path.display()
            )));
        }
        let spath = segment_path(&path, 1);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&spath)
            .map_err(|e| io_err(&format!("create log segment `{}`", spath.display()), e))?;
        let bytes = write_bootstrap(&mut file, db, base_seq)?;
        write_manifest(&path, &[segment_name(&path, 1)])?;
        Ok(Self::assemble(path, policy, file, bytes, vec![1]))
    }

    /// Replace whatever log lives at `path` (segmented, pre-segmentation,
    /// or nothing) with a fresh one bootstrapped from `db` at `base_seq`,
    /// atomically: the new bootstrap goes into the **next** segment
    /// number and the manifest swap is the commit point, so a crash
    /// leaves either the old or the new log. Old segment files are
    /// deleted best-effort afterwards. This is the standby-resync
    /// operation — the primary's checkpoint horizon passed our cursor and
    /// a snapshot replaces local history.
    pub fn reinitialize(
        path: impl AsRef<Path>,
        db: &Database,
        base_seq: u64,
        policy: FsyncPolicy,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut old_names: Vec<String> = Vec::new();
        let mut next = 1u64;
        if let Ok(head) = std::fs::read(&path) {
            if head.starts_with(MANIFEST_MAGIC) {
                if let Ok(names) = parse_manifest(&head) {
                    if let Some(last) = names.last() {
                        next = segment_number(last).unwrap_or(0) + 1;
                    }
                    old_names = names;
                }
            }
        }
        let spath = segment_path(&path, next);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&spath)
            .map_err(|e| io_err("create resync segment", e))?;
        let bytes = write_bootstrap(&mut file, db, base_seq)?;
        write_manifest(&path, &[segment_name(&path, next)])?;
        for name in &old_names {
            let _ = std::fs::remove_file(path.with_file_name(name));
        }
        Ok(Self::assemble(path, policy, file, bytes, vec![next]))
    }

    /// A freshly bootstrapped `Wal` over one just-written segment.
    fn assemble(path: PathBuf, policy: FsyncPolicy, file: File, bytes: u64, segs: Vec<u64>) -> Wal {
        Wal {
            path,
            policy,
            files: Mutex::new(Files {
                file,
                next_lsn: 1,
                bytes,
                seg_bytes: bytes,
                segs,
                max_seg_bytes: DEFAULT_SEGMENT_BYTES,
            }),
            sync: Mutex::new(SyncState {
                durable_lsn: 1,
                syncing: false,
            }),
            synced: Condvar::new(),
            fsyncs: AtomicU64::new(1),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            fault: Mutex::new(FaultState::default()),
        }
    }

    /// Open an existing log: walk its segments in manifest order,
    /// truncate any torn tail (last segment only — a torn frame in an
    /// interior segment is corruption and a hard error), replay the
    /// bootstrap image plus every complete commit record, and return the
    /// log (positioned for appending) with the recovered database.
    ///
    /// A pre-segmentation single-file log is migrated in place first.
    pub fn recover(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(Wal, Database, RecoveryInfo)> {
        let path = path.as_ref().to_path_buf();
        let journal = manifest_journal(&path);
        if path.exists() {
            // a journal beside a live manifest is a leftover from an
            // interrupted swap that never reached its rename — stale
            let _ = std::fs::remove_file(&journal);
        } else if journal.exists() {
            // the legacy migration crashed between its two renames: the
            // file became segment 0001 but the journaled manifest never
            // landed — finish the swap
            let head = std::fs::read(&journal).map_err(|e| io_err("read manifest journal", e))?;
            if head.starts_with(MANIFEST_MAGIC) {
                std::fs::rename(&journal, &path)
                    .map_err(|e| io_err("complete interrupted manifest swap", e))?;
                sync_parent_dir(&path)?;
            }
        }
        let head = std::fs::read(&path)
            .map_err(|e| io_err(&format!("open log `{}`", path.display()), e))?;
        let names = if head.starts_with(MAGIC) {
            migrate_legacy(&path)?
        } else if head.starts_with(MANIFEST_MAGIC) {
            parse_manifest(&head)?
        } else {
            return Err(MadError::wal(format!(
                "`{}` is not a MAD write-ahead log (bad magic)",
                path.display()
            )));
        };

        let mut segs: Vec<u64> = Vec::with_capacity(names.len());
        for name in &names {
            let n = segment_number(name)?;
            if segs.last().is_some_and(|&p| p >= n) {
                return Err(MadError::wal(
                    "log manifest segment numbers are not strictly ascending",
                ));
            }
            segs.push(n);
        }

        // scan every segment; stop at the first incomplete/corrupt frame
        // of the LAST segment (the torn tail); a torn interior is fatal
        let last_i = names.len() - 1;
        let mut records = Vec::new();
        let mut truncated = 0u64;
        let mut total_bytes = 0u64;
        let mut seg_bytes = 0u64;
        let mut active: Option<File> = None;
        for (i, name) in names.iter().enumerate() {
            let spath = path.with_file_name(name);
            let mut file = OpenOptions::new()
                .read(true)
                .write(i == last_i)
                .open(&spath)
                .map_err(|e| io_err(&format!("open log segment `{name}`"), e))?;
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)
                .map_err(|e| io_err("read log segment", e))?;
            if !buf.starts_with(MAGIC) {
                return Err(MadError::wal(format!(
                    "log segment `{name}` does not start with the WAL magic"
                )));
            }
            let mut offset = MAGIC.len();
            while let FrameRead::Ok(rec, end) = read_frame(&buf, offset) {
                records.push(rec);
                offset = end;
            }
            let leftover = (buf.len() - offset) as u64;
            if leftover > 0 {
                if i != last_i {
                    return Err(MadError::wal(format!(
                        "torn record inside interior log segment `{name}` — \
                         only the last segment may have a torn tail"
                    )));
                }
                truncated = leftover;
                file.set_len(offset as u64)
                    .map_err(|e| io_err("truncate torn tail", e))?;
                file.sync_data()
                    .map_err(|e| io_err("fsync after truncate", e))?;
            }
            if i == last_i {
                // the cursor sits at the old EOF after read_to_end;
                // reposition it to the (possibly truncated) end so appends
                // continue the segment instead of leaving a zero-filled
                // hole past the torn tail
                file.seek(SeekFrom::Start(offset as u64))
                    .map_err(|e| io_err("seek to log end", e))?;
                seg_bytes = offset as u64;
                active = Some(file);
            }
            total_bytes += offset as u64;
        }
        let file = match active {
            Some(f) => f,
            None => return Err(MadError::wal("log manifest lists no segments")),
        };

        // replay: bootstrap image first, then commits in sequence —
        // continuity holds across segment boundaries
        let mut iter = records.into_iter();
        let (base_seq, mut db) = match iter.next() {
            Some(WalRecord::Bootstrap { base_seq, snapshot }) => {
                (base_seq, snapshot.restore()?)
            }
            Some(WalRecord::Commit { .. }) => {
                return Err(MadError::wal("log does not start with a bootstrap record"))
            }
            None => return Err(MadError::wal("log holds no complete record")),
        };
        let mut last_seq = base_seq;
        let mut commits = 0u64;
        for rec in iter {
            match rec {
                WalRecord::Commit { seq, ops } => {
                    if seq != last_seq + 1 {
                        return Err(MadError::wal(format!(
                            "commit sequence gap: expected {}, log has {seq}",
                            last_seq + 1
                        )));
                    }
                    for op in &ops {
                        apply_op(&mut db, op)?;
                    }
                    last_seq = seq;
                    commits += 1;
                }
                WalRecord::Bootstrap { .. } => {
                    return Err(MadError::wal(
                        "unexpected bootstrap record mid-log (checkpoint rewrites, it never appends)",
                    ))
                }
            }
        }

        let lsn = 1 + commits;
        let segments = mad_model::bin::u64_of_usize(segs.len());
        let wal = Wal {
            path,
            policy,
            files: Mutex::new(Files {
                file,
                next_lsn: lsn,
                bytes: total_bytes,
                seg_bytes,
                segs,
                max_seg_bytes: DEFAULT_SEGMENT_BYTES,
            }),
            sync: Mutex::new(SyncState {
                durable_lsn: lsn,
                syncing: false,
            }),
            synced: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            fault: Mutex::new(FaultState::default()),
        };
        let info = RecoveryInfo {
            commits_replayed: commits,
            last_seq,
            truncated_bytes: truncated,
            segments,
        };
        Ok((wal, db, info))
    }

    /// The fsync policy this log runs under.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The log's manifest path (what callers hand to `create`/`recover`;
    /// segment files live beside it).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes, summed across all live segments.
    pub fn len_bytes(&self) -> u64 {
        self.files.lock().unwrap().bytes
    }

    /// Number of live segments (1 after create or checkpoint; grows with
    /// rotation).
    pub fn segment_count(&self) -> usize {
        self.files.lock().unwrap().segs.len() // check: allow(panic, "mutex poison propagates the original panic")
    }

    /// Set the rotation threshold: an append finding the active segment
    /// at or past `bytes` rotates first. Tests use tiny values to force
    /// many segments; production leaves [`DEFAULT_SEGMENT_BYTES`].
    pub fn set_max_segment_bytes(&self, bytes: u64) {
        self.files.lock().unwrap().max_seg_bytes = bytes.max(1); // check: allow(panic, "mutex poison propagates the original panic")
    }

    /// Total fsyncs performed since open (the group-commit amortization
    /// shows up as `fsyncs ≪ commits`).
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// `(batches, records_covered)` of group-commit fsyncs since open —
    /// `records_covered / batches` is the amortization factor commits
    /// are currently enjoying. Both zero under other fsync policies.
    pub fn group_commit_stats(&self) -> (u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.batched.load(Ordering::Relaxed),
        )
    }

    /// Append one committed transaction's record (buffered OS write, no
    /// fsync) and return its [`Lsn`]. Callers must append in commit-seq
    /// order — the publisher's commit path does this under its publication
    /// ticket. Rotates to a fresh segment first when the active one is
    /// past the size threshold.
    ///
    /// A failed append is rolled back (truncate to the pre-append length)
    /// so later records never sit beyond garbage bytes; if even the
    /// rollback fails, the log is poisoned and every further append
    /// errors.
    pub fn append_commit(&self, seq: u64, ops: &[WalOp]) -> Result<Lsn> {
        self.check_poisoned()?;
        let at = StageTimer::start(StageKind::WalAppend);
        let framed = frame(&WalRecord::Commit {
            seq,
            ops: ops.to_vec(),
        })?;
        let mut files = self.files.lock().unwrap();
        if files.seg_bytes >= files.max_seg_bytes {
            // rotate BEFORE the record goes anywhere: a rotation failure
            // aborts this append cleanly, with the old segment still
            // active and the log unpoisoned (unless the closing fsync
            // itself failed)
            self.rotate(&mut files)?;
        }
        let written = if self.fault.lock().unwrap().trip_append() {
            // injected fault: leave a torn partial frame behind, exactly
            // like a disk dying mid-write, then fail the append
            let cut = framed.len() / 2;
            let _ = files.file.write_all(&framed[..cut]);
            Err(std::io::Error::other("injected append fault"))
        } else {
            files.file.write_all(&framed)
        };
        if let Err(e) = written {
            // a partial frame may be on disk; cut the active segment back
            // to the last good byte so an acknowledged later commit is
            // never stranded behind a torn interior record
            let good = files.seg_bytes;
            let restore = files
                .file
                .set_len(good)
                .and_then(|()| files.file.seek(SeekFrom::Start(good)).map(|_| ()));
            if restore.is_err() {
                self.poisoned.store(true, Ordering::SeqCst);
            }
            return Err(io_err("append commit record", e));
        }
        files.bytes += framed.len() as u64;
        files.seg_bytes += framed.len() as u64;
        let lsn = files.next_lsn;
        files.next_lsn += 1;
        at.finish_info(&[("bytes", mad_model::bin::u64_of_usize(framed.len()))]);
        Ok(lsn)
    }

    /// Close the active segment and open the next one (caller holds the
    /// `files` lock). The closing segment is fsynced **before** the
    /// manifest grows, so every record in a non-last segment is durable —
    /// that is what lets [`Wal::wait_durable`] prove any LSN durable by
    /// fsyncing only the active segment, and what makes a torn interior
    /// segment a corruption signal rather than a crash artifact.
    fn rotate(&self, files: &mut Files) -> Result<()> {
        if let Err(e) = files.file.sync_data() {
            // records in the closing segment may have been acknowledged
            // as durable already; if its final fsync fails we can no
            // longer trust the file — same rule as a failed group fsync
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(io_err("fsync closing log segment", e));
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let next = files.segs.last().copied().unwrap_or(0) + 1;
        let spath = segment_path(&self.path, next);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&spath)
            .map_err(|e| io_err("create next log segment", e))?;
        file.write_all(MAGIC)
            .map_err(|e| io_err("write segment magic", e))?;
        file.sync_data()
            .map_err(|e| io_err("fsync new log segment", e))?;
        let mut names: Vec<String> = files
            .segs
            .iter()
            .map(|&n| segment_name(&self.path, n))
            .collect();
        names.push(segment_name(&self.path, next));
        write_manifest(&self.path, &names)?;
        files.segs.push(next);
        files.file = file;
        files.bytes += MAGIC.len() as u64;
        files.seg_bytes = MAGIC.len() as u64;
        Ok(())
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(MadError::wal(
                "write-ahead log is poisoned after an unrecoverable I/O failure; \
                 reopen the database to recover from the last durable state",
            ));
        }
        Ok(())
    }

    /// Block until the record at `lsn` is durable per the fsync policy.
    /// See [`FsyncPolicy`] for what each level guarantees.
    ///
    /// An fsync failure poisons the log (see [`Wal::append_commit`]): the
    /// kernel may have dropped the dirty pages, so no later fsync can
    /// retroactively prove this record durable.
    pub fn wait_durable(&self, lsn: Lsn) -> Result<()> {
        self.check_poisoned()?;
        match self.policy {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::PerCommit => {
                let ft = StageTimer::start(StageKind::FsyncWait);
                // baseline: one fsync per commit, no batching, serialized
                // through the sync lock
                let st = self.sync.lock().unwrap();
                let high = self.files.lock().unwrap().next_lsn;
                self.fsync_log()?;
                let mut st = st;
                st.durable_lsn = st.durable_lsn.max(high);
                ft.finish_info(&[("batch", 1)]);
                Ok(())
            }
            FsyncPolicy::Group => {
                let ft = StageTimer::start(StageKind::FsyncWait);
                let batch = self.wait_durable_grouped(lsn)?;
                // `batch` > 0 only when this thread was the elected
                // group-commit syncer; a pure waiter rode along
                ft.finish_info(&[("batch", batch)]);
                Ok(())
            }
        }
    }

    /// Returns the number of records this thread's own fsync batches
    /// covered (0 when the wait was satisfied by another thread's sync).
    fn wait_durable_grouped(&self, lsn: Lsn) -> Result<u64> {
        let mut covered = 0u64;
        let mut st = self.sync.lock().unwrap();
        loop {
            if st.durable_lsn > lsn {
                return Ok(covered);
            }
            if self.poisoned.load(Ordering::SeqCst) {
                drop(st);
                return self.check_poisoned().map(|()| covered);
            }
            if st.syncing {
                // an fsync is in flight; by the time it finishes it may or
                // may not cover our record — loop to re-check
                st = self.synced.wait(st).unwrap();
                continue;
            }
            // become the syncer for everything appended so far — but first
            // let the batch fill: committers that are mid-publication right
            // now would otherwise each trigger their own fsync. Yield while
            // the append stream is still growing (a `commit_delay` in the
            // PostgreSQL sense, but adaptive: a lone writer quiesces after
            // one yield and pays essentially nothing).
            st.syncing = true;
            let durable_before = st.durable_lsn;
            drop(st);
            let mut high = self.files.lock().unwrap().next_lsn;
            let batch_deadline =
                std::time::Instant::now() + std::time::Duration::from_micros(250);
            let mut quiet = 0u32;
            loop {
                std::thread::yield_now();
                let now_high = self.files.lock().unwrap().next_lsn;
                // two consecutive quiet observations, so one committer
                // that merely hasn't been scheduled yet doesn't shrink
                // the batch to a premature lone fsync
                quiet = if now_high == high { quiet + 1 } else { 0 };
                high = now_high;
                if quiet >= 2 || std::time::Instant::now() >= batch_deadline {
                    break;
                }
            }
            let res = self.fsync_log();
            st = self.sync.lock().unwrap();
            st.syncing = false;
            if res.is_ok() {
                st.durable_lsn = st.durable_lsn.max(high);
                let records = high.saturating_sub(durable_before);
                covered += records;
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.batched.fetch_add(records, Ordering::Relaxed);
            }
            // notify while holding the mutex: futex wait-morphing requeues
            // the waiters instead of stampeding them awake
            self.synced.notify_all();
            res?;
        }
    }

    /// One fsync of the **active** segment. Uses a duplicated handle so
    /// the append path is never blocked behind the flush. Syncing only
    /// the active segment is sufficient for any LSN: rotation fsyncs a
    /// segment before the manifest grows past it, so every record in a
    /// closed segment is already durable.
    fn fsync_log(&self) -> Result<()> {
        if self.fault.lock().unwrap().trip_fsync() {
            // injected fault: indistinguishable from a real failed fsync
            // — the log poisons and no covered commit is acknowledged
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(io_err(
                "fsync log",
                std::io::Error::other("injected fsync fault"),
            ));
        }
        let dup = self
            .files
            .lock()
            .unwrap()
            .file
            .try_clone()
            .map_err(|e| io_err("clone log handle", e))?;
        if let Err(e) = dup.sync_data() {
            self.poisoned.store(true, Ordering::SeqCst);
            return Err(io_err("fsync log", e));
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Arm (or with `None` disarm) a deterministic [`FaultPlan`]; ordinal
    /// counters restart from zero at every call. See [`crate::fault`].
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.lock().unwrap() = FaultState {
            plan,
            ..FaultState::default()
        };
    }

    /// Read every complete commit record with `seq > from_seq` back out of
    /// the log — the replication-stream source. Returns
    /// [`TailRead::SnapshotNeeded`] when a checkpoint has folded the
    /// requested records into the bootstrap image (the subscriber is
    /// behind the checkpoint horizon and needs a full snapshot instead).
    ///
    /// The scan goes through the manifest and segment *paths*, not the
    /// shared append handle, so tailing never contends with committers:
    /// appends are strictly ordered, rotation and checkpoint swap the
    /// manifest atomically (either image is a valid log), and a final
    /// frame torn by an in-flight append ends the scan exactly like
    /// recovery's torn-tail rule — the caller picks such records up from
    /// the live commit feed. A checkpoint may delete a segment between
    /// the manifest read and the segment read; the scan retries once
    /// against the fresh manifest.
    pub fn tail_commits(&self, from_seq: u64) -> Result<TailRead> {
        for _ in 0..2 {
            match self.tail_once(from_seq)? {
                Some(tail) => return Ok(tail),
                None => continue, // segment vanished under us — reread
            }
        }
        Err(MadError::wal(
            "log segments kept vanishing while tailing (concurrent checkpoints)",
        ))
    }

    /// One tailing attempt; `Ok(None)` means a listed segment disappeared
    /// (checkpoint race) and the caller should reread the manifest.
    fn tail_once(&self, from_seq: u64) -> Result<Option<TailRead>> {
        let head =
            std::fs::read(&self.path).map_err(|e| io_err("read log for tailing", e))?;
        let bufs: Vec<Vec<u8>> = if head.starts_with(MAGIC) {
            vec![head] // pre-segmentation log: one implicit segment
        } else if head.starts_with(MANIFEST_MAGIC) {
            let names = parse_manifest(&head)?;
            let mut bufs = Vec::with_capacity(names.len());
            for name in &names {
                match std::fs::read(self.path.with_file_name(name)) {
                    Ok(b) => bufs.push(b),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                    Err(e) => return Err(io_err("read log segment for tailing", e)),
                }
            }
            bufs
        } else {
            return Err(MadError::wal("tail of a non-WAL file (bad magic)"));
        };

        let last_i = bufs.len() - 1;
        let mut first = true;
        let mut commits = Vec::new();
        for (i, buf) in bufs.iter().enumerate() {
            if !buf.starts_with(MAGIC) {
                return Err(MadError::wal(
                    "log segment does not start with the WAL magic",
                ));
            }
            let mut offset = MAGIC.len();
            while let FrameRead::Ok(rec, end) = read_frame(buf, offset) {
                match (first, rec) {
                    (true, WalRecord::Bootstrap { base_seq, .. }) => {
                        if base_seq > from_seq {
                            return Ok(Some(TailRead::SnapshotNeeded { base_seq }));
                        }
                    }
                    (true, WalRecord::Commit { .. }) => {
                        return Err(MadError::wal(
                            "log does not start with a bootstrap record",
                        ))
                    }
                    (false, WalRecord::Commit { seq, ops }) if seq > from_seq => {
                        commits.push((seq, ops));
                    }
                    (false, WalRecord::Commit { .. }) => {}
                    (false, WalRecord::Bootstrap { .. }) => {
                        return Err(MadError::wal("unexpected bootstrap record mid-log"))
                    }
                }
                first = false;
                offset = end;
            }
            if offset < buf.len() && i != last_i {
                return Err(MadError::wal(
                    "torn record inside interior log segment while tailing",
                ));
            }
        }
        Ok(Some(TailRead::Commits(commits)))
    }

    /// Replace the log with a fresh bootstrap image of `db` (taken at
    /// commit sequence `base_seq`), dropping every commit record — the
    /// checkpoint-and-truncate operation. The bootstrap is written into
    /// the **next** segment number, fsynced, and the manifest is
    /// atomically rewritten to list just that segment, so a crash
    /// mid-checkpoint recovers from either the old or the new log, never
    /// a mix; old segment files are deleted best-effort afterwards.
    /// Because only the new segment is rewritten, checkpoint cost no
    /// longer scales with the total bytes the log accumulated.
    ///
    /// The caller must guarantee no concurrent [`Wal::append_commit`]
    /// (the publisher runs checkpoints under its commit ticket).
    pub fn checkpoint(&self, db: &Database, base_seq: u64) -> Result<CheckpointStats> {
        // claim the syncer slot so no fsync races the segment swap
        let mut st = self.sync.lock().unwrap();
        while st.syncing {
            st = self.synced.wait(st).unwrap();
        }
        st.syncing = true;
        drop(st);

        let result = self.checkpoint_inner(db, base_seq);

        let mut st = self.sync.lock().unwrap();
        st.syncing = false;
        if result.is_ok() {
            // the fresh log is fully durable — and trustworthy again,
            // even if an earlier fsync failure had poisoned the old file
            st.durable_lsn = self.files.lock().unwrap().next_lsn; // check: allow(panic, "mutex poison propagates the original panic")
            self.poisoned.store(false, Ordering::SeqCst);
        }
        self.synced.notify_all();
        result
    }

    fn checkpoint_inner(&self, db: &Database, base_seq: u64) -> Result<CheckpointStats> {
        let next = {
            let files = self.files.lock().unwrap();
            files.segs.last().copied().unwrap_or(0) + 1
        };
        let spath = segment_path(&self.path, next);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&spath)
            .map_err(|e| io_err("create checkpoint segment", e))?;
        let bytes_after = write_bootstrap(&mut file, db, base_seq)?;
        write_manifest(&self.path, &[segment_name(&self.path, next)])?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let (bytes_before, old) = {
            let mut files = self.files.lock().unwrap();
            let bytes_before = files.bytes;
            files.file = file;
            files.bytes = bytes_after;
            files.seg_bytes = bytes_after;
            files.next_lsn += 1; // the bootstrap record occupies one LSN
            (bytes_before, std::mem::replace(&mut files.segs, vec![next]))
        };
        // the manifest no longer references them; deletion is cleanup,
        // not correctness, so failures are ignored
        for n in old {
            let _ = std::fs::remove_file(segment_path(&self.path, n));
        }
        Ok(CheckpointStats {
            bytes_before,
            bytes_after,
            base_seq,
        })
    }
}

/// Migrate a pre-segmentation single-file log at `path` into the
/// manifest + segment layout: journal the manifest beside it, rename the
/// file to segment `0001`, then rename the journal into place. Crash
/// windows: before the first rename the file is still a valid legacy log
/// (migration simply reruns); between the renames, [`Wal::recover`]'s
/// journal-repair step completes the swap.
fn migrate_legacy(path: &Path) -> Result<Vec<String>> {
    let name = segment_name(path, 1);
    let journal = manifest_journal(path);
    let mut buf = Vec::from(MANIFEST_MAGIC);
    buf.extend_from_slice(name.as_bytes());
    buf.push(b'\n');
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&journal)
        .map_err(|e| io_err("create migration manifest journal", e))?;
    file.write_all(&buf)
        .map_err(|e| io_err("write migration manifest", e))?;
    file.sync_data()
        .map_err(|e| io_err("fsync migration manifest", e))?;
    drop(file);
    std::fs::rename(path, path.with_file_name(&name))
        .map_err(|e| io_err("rename legacy log to segment 0001", e))?;
    sync_parent_dir(path)?;
    std::fs::rename(&journal, path)
        .map_err(|e| io_err("swap migration manifest into place", e))?;
    sync_parent_dir(path)?;
    Ok(vec![name])
}

/// Write magic + bootstrap frame and fsync; returns the file length.
fn write_bootstrap(file: &mut File, db: &Database, base_seq: u64) -> Result<u64> {
    let record = WalRecord::Bootstrap {
        base_seq,
        snapshot: Box::new(DatabaseSnapshot::capture(db)),
    };
    let framed = frame(&record)?;
    file.write_all(MAGIC).map_err(|e| io_err("write magic", e))?;
    file.write_all(&framed)
        .map_err(|e| io_err("write bootstrap record", e))?;
    file.sync_data().map_err(|e| io_err("fsync bootstrap", e))?;
    Ok((MAGIC.len() + framed.len()) as u64)
}

/// Fsync the directory holding `path`, making a create/rename durable.
/// Best-effort on platforms where directories cannot be opened.
fn sync_parent_dir(path: &Path) -> Result<()> {
    let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(dir) {
        Ok(d) => d
            .sync_data()
            .map_err(|e| io_err("fsync log directory", e)),
        Err(_) => Ok(()), // e.g. platforms without O_DIRECTORY semantics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mad-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_db() -> Database {
        let schema = SchemaBuilder::new()
            .atom_type("state", &[("sname", AttrType::Text)])
            .atom_type("area", &[("aid", AttrType::Int)])
            .link_type("state-area", "state", "area")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let state = db.schema().atom_type_id("state").unwrap();
        db.insert_atom(state, vec![Value::from("SP")]).unwrap();
        db
    }

    #[test]
    fn create_append_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("mad.wal");
        let mut db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();

        // two committed "transactions", applied in parallel to our model db
        for (seq, name) in [(1u64, "MG"), (2, "RJ")] {
            let id = db.insert_atom(state, vec![Value::from(name)]).unwrap();
            let ops = vec![WalOp::Insert {
                ty: state,
                tuple: vec![Value::from(name)],
                id,
            }];
            let lsn = wal.append_commit(seq, &ops).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        drop(wal);

        let (wal2, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 2);
        assert_eq!(info.last_seq, 2);
        assert_eq!(info.truncated_bytes, 0);
        assert_eq!(info.segments, 1);
        assert_eq!(
            DatabaseSnapshot::capture(&recovered).to_json_string(),
            DatabaseSnapshot::capture(&db).to_json_string()
        );
        // the recovered log accepts further appends
        let lsn = wal2
            .append_commit(
                3,
                &[WalOp::UpdateAttr {
                    id: mad_model::AtomId::new(state, 0),
                    attr: 0,
                    value: Value::from("SP2"),
                }],
            )
            .unwrap();
        wal2.wait_durable(lsn).unwrap();
        drop(wal2);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 3);
        assert_eq!(
            recovered.atom(mad_model::AtomId::new(state, 0)).unwrap()[0],
            Value::from("SP2")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_file() {
        let dir = tmpdir("exists");
        let path = dir.join("mad.wal");
        let db = small_db();
        Wal::create(&path, &db, FsyncPolicy::Never).unwrap();
        assert!(Wal::create(&path, &db, FsyncPolicy::Never).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_truncates_torn_tail() {
        let dir = tmpdir("torn");
        let path = dir.join("mad.wal");
        let db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Never).unwrap();
        let ops = vec![WalOp::Insert {
            ty: state,
            tuple: vec![Value::from("MG")],
            id: mad_model::AtomId::new(state, 1),
        }];
        wal.append_commit(1, &ops).unwrap();
        drop(wal);
        // tear the final record: chop 3 bytes off the active segment
        let seg = active_segment_path(&path).unwrap();
        let full = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &full[..full.len() - 3]).unwrap();
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.commits_replayed, 0, "the torn commit is gone");
        assert!(info.truncated_bytes > 0);
        assert_eq!(recovered.atom_count(state), 1, "bootstrap state only");
        // the truncation is physical: a second recover sees a clean log
        let (_, _, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_after_torn_recovery_survive_the_next_recovery() {
        // regression: recover() repositions the write cursor after
        // truncating the torn tail — without the seek, post-recovery
        // appends landed past a zero-filled hole and the NEXT recovery
        // silently dropped every acknowledged commit
        let dir = tmpdir("torn-then-append");
        let path = dir.join("mad.wal");
        let db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();
        let ops = vec![WalOp::Insert {
            ty: state,
            tuple: vec![Value::from("MG")],
            id: mad_model::AtomId::new(state, 1),
        }];
        let lsn = wal.append_commit(1, &ops).unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        // tear the final record
        let seg = active_segment_path(&path).unwrap();
        let full = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &full[..full.len() - 3]).unwrap();
        // recover (truncates the tail), then commit again
        let (wal, _, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert!(info.truncated_bytes > 0);
        let lsn = wal.append_commit(1, &ops).unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        // the re-appended commit must be recoverable — no hole in the log
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.truncated_bytes, 0, "log must be hole-free");
        assert_eq!(info.commits_replayed, 1);
        assert!(recovered.atom_exists(mad_model::AtomId::new(state, 1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_non_wal_files() {
        let dir = tmpdir("badmagic");
        let path = dir.join("mad.wal");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::recover(&path, FsyncPolicy::Never).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_single_file_log_migrates_on_recover() {
        let dir = tmpdir("legacy");
        let path = dir.join("mad.wal");
        let mut db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        // hand-write a pre-segmentation log: magic + bootstrap + 1 commit,
        // all in the single file at `path`
        let mut file = File::create(&path).unwrap();
        write_bootstrap(&mut file, &db, 0).unwrap();
        let id = db.insert_atom(state, vec![Value::from("MG")]).unwrap();
        let framed = frame(&WalRecord::Commit {
            seq: 1,
            ops: vec![WalOp::Insert {
                ty: state,
                tuple: vec![Value::from("MG")],
                id,
            }],
        })
        .unwrap();
        file.write_all(&framed).unwrap();
        drop(file);

        let (wal, recovered, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.commits_replayed, 1);
        assert_eq!(info.segments, 1);
        assert_eq!(recovered.atom_count(state), 2);
        // the file at `path` is now a manifest pointing at segment 0001
        let head = std::fs::read(&path).unwrap();
        assert!(head.starts_with(MANIFEST_MAGIC));
        assert!(dir.join("mad.wal.0001").exists());
        // and the migrated log still appends and re-recovers
        let lsn = wal
            .append_commit(
                2,
                &[WalOp::Insert {
                    ty: state,
                    tuple: vec![Value::from("RJ")],
                    id: mad_model::AtomId::new(state, 2),
                }],
            )
            .unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        let (_, _, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.commits_replayed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `max_segment_bytes = 1`: every append rotates first, so commit `k`
    /// lands alone in segment `k + 1` (the bootstrap holds segment 1).
    fn rotated_log(path: &Path, commits: u64) -> (Wal, Database) {
        let mut db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(path, &db, FsyncPolicy::Group).unwrap();
        wal.set_max_segment_bytes(1);
        for seq in 1..=commits {
            let id = db
                .insert_atom(state, vec![Value::from(format!("r{seq}"))])
                .unwrap();
            let lsn = wal
                .append_commit(
                    seq,
                    &[WalOp::Insert {
                        ty: state,
                        tuple: vec![Value::from(format!("r{seq}"))],
                        id,
                    }],
                )
                .unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        (wal, db)
    }

    #[test]
    fn rotation_splits_the_log_and_recovery_walks_segments() {
        let dir = tmpdir("rotate");
        let path = dir.join("mad.wal");
        let (wal, db) = rotated_log(&path, 6);
        let state = db.schema().atom_type_id("state").unwrap();
        assert!(wal.segment_count() > 1, "tiny threshold must rotate");
        let total = wal.len_bytes();
        drop(wal);

        let (wal2, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 6);
        assert!(info.segments > 1);
        assert_eq!(info.segments as usize, wal2.segment_count());
        assert_eq!(wal2.len_bytes(), total);
        assert_eq!(recovered.atom_count(state), 7);
        // tailing crosses segment boundaries in order
        match wal2.tail_commits(0).unwrap() {
            TailRead::Commits(c) => assert_eq!(
                c.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                (1..=6).collect::<Vec<_>>()
            ),
            TailRead::SnapshotNeeded { .. } => panic!("no checkpoint ran"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_only_the_last_segment() {
        let dir = tmpdir("torn-last-seg");
        let path = dir.join("mad.wal");
        let (wal, _) = rotated_log(&path, 3);
        drop(wal);
        let active = active_segment_path(&path).unwrap();
        let full = std::fs::read(&active).unwrap();
        std::fs::write(&active, &full[..full.len() - 3]).unwrap();
        let (_, _, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 2, "only the torn last commit is lost");
        assert!(info.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_interior_segment_is_a_hard_error() {
        let dir = tmpdir("torn-interior");
        let path = dir.join("mad.wal");
        let (wal, _) = rotated_log(&path, 3);
        drop(wal);
        // commit 1 lives alone in segment 0002 — an interior segment
        let interior = dir.join("mad.wal.0002");
        let full = std::fs::read(&interior).unwrap();
        std::fs::write(&interior, &full[..full.len() - 3]).unwrap();
        let err = Wal::recover(&path, FsyncPolicy::Group).unwrap_err();
        assert!(
            err.to_string().contains("interior"),
            "must name the interior-segment rule: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_and_survives_recovery() {
        let dir = tmpdir("checkpoint");
        let path = dir.join("mad.wal");
        let mut db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();
        for seq in 1..=20u64 {
            let id = db
                .insert_atom(state, vec![Value::from(format!("s{seq}"))])
                .unwrap();
            let lsn = wal
                .append_commit(
                    seq,
                    &[WalOp::Insert {
                        ty: state,
                        tuple: vec![Value::from(format!("s{seq}"))],
                        id,
                    }],
                )
                .unwrap();
            wal.wait_durable(lsn).unwrap();
        }
        let stats = wal.checkpoint(&db, 20).unwrap();
        assert!(
            stats.bytes_after < stats.bytes_before,
            "checkpoint must shrink the log ({} -> {})",
            stats.bytes_before,
            stats.bytes_after
        );
        assert_eq!(wal.segment_count(), 1, "checkpoint collapses to one segment");
        assert!(
            !dir.join("mad.wal.0001").exists(),
            "the pre-checkpoint segment is deleted"
        );
        drop(wal);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, 0, "commits were folded into the image");
        assert_eq!(info.last_seq, 20, "sequence numbering continues");
        assert_eq!(recovered.atom_count(state), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_of_a_rotated_log_collapses_the_segments() {
        let dir = tmpdir("ckpt-rotated");
        let path = dir.join("mad.wal");
        let (wal, db) = rotated_log(&path, 5);
        let before = wal.segment_count();
        assert!(before > 1);
        wal.checkpoint(&db, 5).unwrap();
        assert_eq!(wal.segment_count(), 1);
        drop(wal);
        let (_, _, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.last_seq, 5);
        assert_eq!(info.segments, 1);
        // every pre-checkpoint segment file is gone
        for n in 1..=before as u64 {
            assert!(
                !dir.join(format!("mad.wal.{n:04}")).exists(),
                "segment {n:04} must be deleted"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reinitialize_replaces_the_log_at_a_new_base() {
        let dir = tmpdir("reinit");
        let path = dir.join("mad.wal");
        let (old_wal, db) = rotated_log(&path, 3);
        let state = db.schema().atom_type_id("state").unwrap();
        // resync: replace history with a snapshot stamped at seq 10,
        // while the old Wal still holds its open handle (as a standby's
        // ingest loop does)
        let wal = Wal::reinitialize(&path, &db, 10, FsyncPolicy::Never).unwrap();
        drop(old_wal);
        assert_eq!(wal.segment_count(), 1);
        let lsn = wal
            .append_commit(
                11,
                &[WalOp::Insert {
                    ty: state,
                    tuple: vec![Value::from("after")],
                    id: mad_model::AtomId::new(state, 4),
                }],
            )
            .unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(info.last_seq, 11);
        assert_eq!(info.commits_replayed, 1);
        assert_eq!(info.segments, 1);
        assert!(recovered.atom_exists(mad_model::AtomId::new(state, 4)));
        // the pre-resync segments are gone
        assert!(!dir.join("mad.wal.0001").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_amortizes_fsyncs_across_threads() {
        let dir = tmpdir("group");
        let path = dir.join("mad.wal");
        let db = small_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let wal = Wal::create(&path, &db, FsyncPolicy::Group).unwrap();
        // seq allocation + append happen under one lock (mirroring the
        // publisher's commit ticket: commit order IS append order);
        // only the durability wait runs concurrently
        let publication = Mutex::new(0u64);
        let writers = 8usize;
        let per_writer = 25u64;
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let wal = &wal;
                let publication = &publication;
                scope.spawn(move || {
                    for _ in 0..per_writer {
                        let lsn = {
                            let mut seq = publication.lock().unwrap();
                            *seq += 1;
                            let ops = vec![WalOp::Insert {
                                ty: state,
                                tuple: vec![Value::from(format!("g{seq}"))],
                                id: mad_model::AtomId::new(state, *seq as u32),
                            }];
                            wal.append_commit(*seq, &ops).unwrap()
                        };
                        wal.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        let commits = writers as u64 * per_writer;
        let fsyncs = wal.fsync_count();
        assert!(
            fsyncs < commits,
            "group commit should need fewer fsyncs than commits ({fsyncs} vs {commits})"
        );
        drop(wal);
        let (_, recovered, info) = Wal::recover(&path, FsyncPolicy::Group).unwrap();
        assert_eq!(info.commits_replayed, commits);
        assert_eq!(recovered.atom_count(state), 1 + commits as usize);
        std::fs::remove_dir_all(&dir).ok();
    }
}
