//! The WAL record format: logged operations, record payloads, framing.
//!
//! This module is the **normative spec** of what goes on disk (see
//! `ARCHITECTURE.md` for the prose version):
//!
//! ```text
//! file   := magic frame*
//! magic  := "MADWAL1\n"                         (8 bytes)
//! frame  := len:u32le crc:u32le payload[len]    (crc = CRC-32/IEEE of payload)
//! payload:= 0x00 bootstrap | 0x01 commit
//! bootstrap := base_seq:u64le DatabaseSnapshot  (mad_model::bin encoding)
//! commit    := seq:u64le Vec<WalOp>
//! ```
//!
//! The first frame of a log is always a bootstrap (the full database image
//! the following commits apply to — written at create and rewritten by
//! checkpoint); every further frame is one committed transaction's op log
//! with **resolved** atom ids: provisional-id remapping has already
//! happened at commit publication, so replay is deterministic — inserts
//! re-land on exactly the recorded slots, which recovery verifies.

use mad_model::bin::{put_u32, put_u64, usize_of_u32, BinDecode, BinEncode, Reader};
use mad_model::{AtomId, AtomTypeId, LinkTypeId, MadError, Result, Value};
use mad_storage::{Database, DatabaseSnapshot};

/// The 8-byte file magic ("MADWAL" + format version 1 + newline).
pub const MAGIC: &[u8; 8] = b"MADWAL1\n";

/// Size of a frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// One replayable operation of a committed transaction, with all atom ids
/// **resolved** (never provisional).
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// An atom insert; `id` is the slot the insert landed on at commit,
    /// which replay re-derives and verifies.
    Insert {
        /// The atom type.
        ty: AtomTypeId,
        /// The attribute tuple.
        tuple: Vec<Value>,
        /// The committed id (replay must land here).
        id: AtomId,
    },
    /// A batched insert of several atoms of one type.
    InsertBatch {
        /// The atom type.
        ty: AtomTypeId,
        /// The attribute tuples.
        tuples: Vec<Vec<Value>>,
        /// The committed ids, parallel to `tuples`.
        ids: Vec<AtomId>,
    },
    /// An atom delete (incident links cascade, as in
    /// [`Database::delete_atom`]).
    Delete {
        /// The deleted atom.
        id: AtomId,
    },
    /// A single-attribute update.
    UpdateAttr {
        /// The updated atom.
        id: AtomId,
        /// Attribute position.
        attr: u32,
        /// The new value.
        value: Value,
    },
    /// An oriented link insert.
    Connect {
        /// The link type.
        lt: LinkTypeId,
        /// Side-0 atom.
        side0: AtomId,
        /// Side-1 atom.
        side1: AtomId,
    },
    /// An oriented link removal.
    Disconnect {
        /// The link type.
        lt: LinkTypeId,
        /// Side-0 atom.
        side0: AtomId,
        /// Side-1 atom.
        side1: AtomId,
    },
}

impl BinEncode for WalOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::Insert { ty, tuple, id } => {
                out.push(0);
                ty.encode(out);
                tuple.encode(out);
                id.encode(out);
            }
            WalOp::InsertBatch { ty, tuples, ids } => {
                out.push(1);
                ty.encode(out);
                tuples.encode(out);
                ids.encode(out);
            }
            WalOp::Delete { id } => {
                out.push(2);
                id.encode(out);
            }
            WalOp::UpdateAttr { id, attr, value } => {
                out.push(3);
                id.encode(out);
                put_u32(out, *attr);
                value.encode(out);
            }
            WalOp::Connect { lt, side0, side1 } => {
                out.push(4);
                lt.encode(out);
                side0.encode(out);
                side1.encode(out);
            }
            WalOp::Disconnect { lt, side0, side1 } => {
                out.push(5);
                lt.encode(out);
                side0.encode(out);
                side1.encode(out);
            }
        }
    }
}

impl BinDecode for WalOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            0 => WalOp::Insert {
                ty: AtomTypeId::decode(r)?,
                tuple: Vec::decode(r)?,
                id: AtomId::decode(r)?,
            },
            1 => WalOp::InsertBatch {
                ty: AtomTypeId::decode(r)?,
                tuples: Vec::decode(r)?,
                ids: Vec::decode(r)?,
            },
            2 => WalOp::Delete {
                id: AtomId::decode(r)?,
            },
            3 => WalOp::UpdateAttr {
                id: AtomId::decode(r)?,
                attr: r.u32()?,
                value: Value::decode(r)?,
            },
            4 => WalOp::Connect {
                lt: LinkTypeId::decode(r)?,
                side0: AtomId::decode(r)?,
                side1: AtomId::decode(r)?,
            },
            5 => WalOp::Disconnect {
                lt: LinkTypeId::decode(r)?,
                side0: AtomId::decode(r)?,
                side1: AtomId::decode(r)?,
            },
            t => {
                return Err(MadError::codec(format!("unknown WalOp tag {t}")))
            }
        })
    }
}

/// Apply one logged operation to a database during recovery replay,
/// verifying that inserts land on the recorded slots (slot allocation is
/// deterministic, so a divergence means the log does not belong to this
/// bootstrap image).
pub fn apply_op(db: &mut Database, op: &WalOp) -> Result<()> {
    match op {
        WalOp::Insert { ty, tuple, id } => {
            let actual = db.insert_atom(*ty, tuple.clone())?;
            if actual != *id {
                return Err(MadError::wal(format!(
                    "replay divergence: logged insert landed on {actual}, log says {id}"
                )));
            }
        }
        WalOp::InsertBatch { ty, tuples, ids } => {
            let actual = db.insert_atoms(*ty, tuples.iter().cloned())?;
            if actual != *ids {
                return Err(MadError::wal(format!(
                    "replay divergence: logged batch insert landed on {actual:?}, log says {ids:?}"
                )));
            }
        }
        WalOp::Delete { id } => {
            db.delete_atom(*id)?;
        }
        WalOp::UpdateAttr { id, attr, value } => {
            db.update_attr(*id, usize_of_u32(*attr), value.clone())?;
        }
        WalOp::Connect { lt, side0, side1 } => {
            db.connect(*lt, *side0, *side1)?;
        }
        WalOp::Disconnect { lt, side0, side1 } => {
            db.disconnect(*lt, *side0, *side1)?;
        }
    }
    Ok(())
}

/// One frame payload.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// The full database image commits after it apply to. `base_seq` is the
    /// commit sequence number the image was taken at (0 for a fresh log).
    Bootstrap {
        /// Commit sequence of the image.
        base_seq: u64,
        /// The image itself.
        snapshot: Box<DatabaseSnapshot>,
    },
    /// One committed transaction.
    Commit {
        /// The commit sequence number it published at.
        seq: u64,
        /// The resolved op log.
        ops: Vec<WalOp>,
    },
}

impl BinEncode for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Bootstrap { base_seq, snapshot } => {
                out.push(0);
                put_u64(out, *base_seq);
                snapshot.encode(out);
            }
            WalRecord::Commit { seq, ops } => {
                out.push(1);
                put_u64(out, *seq);
                ops.encode(out);
            }
        }
    }
}

impl BinDecode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.u8()? {
            0 => WalRecord::Bootstrap {
                base_seq: r.u64()?,
                snapshot: Box::new(DatabaseSnapshot::decode(r)?),
            },
            1 => WalRecord::Commit {
                seq: r.u64()?,
                ops: Vec::decode(r)?,
            },
            t => {
                return Err(MadError::codec(format!("unknown WalRecord tag {t}")))
            }
        })
    }
}

/// Frame a record: `len` + `crc` + payload, ready to append to the log.
/// Errors if the payload exceeds the `u32` length field — a silently
/// wrapped length would render the whole log unrecoverable.
pub fn frame(record: &WalRecord) -> Result<Vec<u8>> {
    let payload = record.to_bytes();
    let Ok(len) = u32::try_from(payload.len()) else {
        return Err(MadError::wal(format!(
            "record payload of {} bytes exceeds the 4 GiB frame limit \
             (checkpoint the database in smaller units)",
            payload.len()
        )));
    };
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut out, len);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Outcome of reading one frame from a buffer position.
pub enum FrameRead {
    /// A record plus the offset just past its frame.
    Ok(WalRecord, usize),
    /// The bytes from this offset on are not a complete, checksummed frame
    /// — the torn tail (or the clean end of the log when the remainder is
    /// empty). Recovery truncates here.
    Torn,
}

/// Read the frame starting at `offset`. Any failure — short header, short
/// payload, checksum mismatch, undecodable payload — classifies as
/// [`FrameRead::Torn`]: the scan stops and the file is truncated at
/// `offset`. (A checksummed frame never *follows* a torn one, because the
/// log is append-only and written through one file handle.)
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    let Some(rest) = buf.get(offset..) else {
        return FrameRead::Torn;
    };
    if rest.len() < FRAME_HEADER {
        return FrameRead::Torn;
    }
    let len = usize_of_u32(u32::from_le_bytes(rest[0..4].try_into().unwrap()));
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return FrameRead::Torn;
    };
    if crc32(payload) != crc {
        return FrameRead::Torn;
    }
    match WalRecord::from_bytes(payload) {
        Ok(rec) => FrameRead::Ok(rec, offset + FRAME_HEADER + len),
        Err(_) => FrameRead::Torn,
    }
}

/// The byte offsets at which each complete, checksummed frame of a log
/// image ends — every element is a valid truncation point for simulating
/// a crash at a record boundary (element 0 is the end of the bootstrap
/// record). Scanning stops at the torn tail, like recovery does.
pub fn frame_boundaries(buf: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return out;
    }
    let mut offset = MAGIC.len();
    while let FrameRead::Ok(_, end) = read_frame(buf, offset) {
        out.push(end);
        offset = end;
    }
    out
}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven; the table is
/// computed at compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xff) as usize; // check: allow(cast, "masked to 0..=255, fits any usize")
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32; // check: allow(cast, "const-fn loop index bounded to 0..256; u32::try_from is not const")
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_model::{AttrType, SchemaBuilder};

    #[test]
    fn crc32_known_vectors() {
        // the classic check value of CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn oversized_declared_frame_is_torn_not_allocated() {
        // a header claiming a u32::MAX-byte payload over a short buffer
        // must classify as torn via the bounds check, not allocate
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        assert!(matches!(read_frame(&buf, 0), FrameRead::Torn));
    }

    fn sample_ops() -> Vec<WalOp> {
        let ty = AtomTypeId(0);
        let lt = LinkTypeId(0);
        vec![
            WalOp::Insert {
                ty,
                tuple: vec![Value::from("SP"), Value::Null],
                id: AtomId::new(ty, 3),
            },
            WalOp::InsertBatch {
                ty,
                tuples: vec![vec![Value::from(1)], vec![Value::from(2)]],
                ids: vec![AtomId::new(ty, 4), AtomId::new(ty, 5)],
            },
            WalOp::Delete {
                id: AtomId::new(ty, 4),
            },
            WalOp::UpdateAttr {
                id: AtomId::new(ty, 3),
                attr: 1,
                value: Value::from(2.5),
            },
            WalOp::Connect {
                lt,
                side0: AtomId::new(ty, 3),
                side1: AtomId::new(ty, 5),
            },
            WalOp::Disconnect {
                lt,
                side0: AtomId::new(ty, 3),
                side1: AtomId::new(ty, 5),
            },
        ]
    }

    #[test]
    fn ops_roundtrip() {
        let ops = sample_ops();
        let bytes = ops.to_bytes();
        assert_eq!(Vec::<WalOp>::from_bytes(&bytes).unwrap(), ops);
    }

    #[test]
    fn frame_roundtrip_and_torn_detection() {
        let rec = WalRecord::Commit {
            seq: 7,
            ops: sample_ops(),
        };
        let framed = frame(&rec).unwrap();
        match read_frame(&framed, 0) {
            FrameRead::Ok(WalRecord::Commit { seq, ops }, end) => {
                assert_eq!(seq, 7);
                assert_eq!(ops, sample_ops());
                assert_eq!(end, framed.len());
            }
            _ => panic!("expected a full frame"),
        }
        // every strict prefix is torn, never mis-decoded
        for cut in 0..framed.len() {
            assert!(matches!(read_frame(&framed[..cut], 0), FrameRead::Torn));
        }
        // a flipped payload byte breaks the checksum
        let mut corrupt = framed.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(read_frame(&corrupt, 0), FrameRead::Torn));
    }

    #[test]
    fn apply_op_verifies_insert_slot() {
        let schema = SchemaBuilder::new()
            .atom_type("a", &[("x", AttrType::Int)])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let ty = db.schema().atom_type_id("a").unwrap();
        // log says the insert landed on slot 5, but the db is empty
        let op = WalOp::Insert {
            ty,
            tuple: vec![Value::from(1)],
            id: AtomId::new(ty, 5),
        };
        let err = apply_op(&mut db, &op).unwrap_err();
        assert!(matches!(err, MadError::Wal { .. }), "got {err}");
    }
}
