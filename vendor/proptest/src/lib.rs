#![forbid(unsafe_code)]

//! A minimal, dependency-free subset of the `proptest` API.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim implements exactly the surface the test suite uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute),
//! * [`strategy::Strategy`] with `prop_map`, ranges over the common numeric
//!   types, tuples up to arity 6, [`collection::vec`], [`any`],
//!   [`prop_oneof!`] and [`strategy::Just`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: generation is **deterministic** (seeded
//! from the test name, so failures reproduce across runs) and there is **no
//! shrinking** — a failing case reports the generated inputs verbatim.

pub mod test_runner {
    /// Error type returned from a property-test body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure reason.
        pub message: String,
    }

    impl TestCaseError {
        /// Signal a failed property.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Number-of-cases configuration, mirroring `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Deterministic split-mix PRNG used for all generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // multiply-shift rejection-free mapping (tiny bias is irrelevant
        // for test-case generation)
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod strategy {
    use super::TestRng;

    /// A value generator; the shim's analogue of `proptest::Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adaptor.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        /// The alternatives.
        pub options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Strategy for "any value of `T`" ([`crate::any`]).
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    /// Types usable with [`crate::any`].
    pub trait ArbitraryValue: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    #[doc(hidden)]
    pub fn __boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

/// `any::<T>()` — an unconstrained value of `T`.
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::__boxed($strat)),+],
        }
    };
}

/// Property assertion: fails the current case without panicking the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    // FNV-1a over the test name: deterministic across runs and platforms
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The `proptest!` block: expands each contained `fn name(args in strategies)`
/// into a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::__seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9));
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
}
