#![forbid(unsafe_code)]

//! A minimal, dependency-free subset of the `criterion` API.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps the bench sources unchanged and performs *real*
//! wall-clock measurement:
//!
//! * warm-up for `warm_up_time`, then `sample_size` samples, each running as
//!   many iterations as fit into `measurement_time / sample_size`;
//! * the reported figure is the **median ns/iteration** over the samples
//!   (robust against noisy neighbors);
//! * results print as `<group>/<function>/<param>  time: <median> ns/iter`.
//!
//! Command-line flags (everything after `--` in `cargo bench ... -- <flags>`):
//!
//! * `--quick` — 3 samples and a quarter of the measurement time, and the
//!   results are written to `BENCH_derive.json` (merged with any existing
//!   content) so perf trajectories can be compared across commits;
//! * `--json <path>` — like `--quick`'s report but to an explicit path and
//!   without reducing the sample count;
//! * any other non-flag argument — substring filter on the benchmark id.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is a thin wrapper).
pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim sizes batches from the measurement budget).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing helper handed to the closure of `bench_function`/`bench_with_input`.
pub struct Bencher<'a> {
    samples_ns: &'a mut Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measure `f` (the routine under test) and record the samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // warm-up: run until the warm-up budget is spent
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(f());
        }
        // estimate the per-iteration cost to size the sample batches
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / est.as_secs_f64()).clamp(1.0, 1e7) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; only the routine is
    /// timed (setup cost is excluded by pre-building each batch).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // warm-up
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine(setup()));
        }
        // size the batches from one timed call
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let est = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / est.as_secs_f64()).clamp(1.0, 1e5) as usize;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

#[derive(Clone, Debug)]
struct Options {
    quick: bool,
    json_path: Option<String>,
    filters: Vec<String>,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options {
            quick: false,
            json_path: None,
            filters: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--json" => opts.json_path = args.next(),
                // flags cargo/criterion conventionally pass; ignore
                "--bench" | "--nocapture" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // unknown flag: skip (and its value if present and not a flag)
                }
                s => opts.filters.push(s.to_owned()),
            }
        }
        if opts.quick && opts.json_path.is_none() {
            opts.json_path = Some("BENCH_derive.json".to_owned());
        }
        opts
    }
}

/// The benchmark driver.
pub struct Criterion {
    opts: Options,
    results: BTreeMap<String, f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            opts: Options::from_args(),
            results: BTreeMap::new(),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
        }
    }

    /// Benchmark a routine outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(id.to_owned(), f);
        g.finish();
    }

    fn record(&mut self, id: &str, median_ns: f64) {
        println!("{id:<58} time: {median_ns:>14.1} ns/iter");
        self.results.insert(id.to_owned(), median_ns);
    }

    fn flush_json(&self) {
        let Some(path) = &self.opts.json_path else {
            return;
        };
        // merge with an existing report so several bench targets accumulate
        let mut merged: BTreeMap<String, f64> = std::fs::read_to_string(path)
            .ok()
            .map(|text| parse_flat_json(&text))
            .unwrap_or_default();
        merged.extend(self.results.iter().map(|(k, v)| (k.clone(), *v)));
        let mut out = String::from("{\n");
        for (i, (k, v)) in merged.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("  \"{}\": {:.1}", escape(k), v));
        }
        out.push_str("\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("bench report written to {path}");
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush_json();
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parse a flat `{"id": number, ...}` object (the only shape we emit).
fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(endq) = rest.find('"') else { break };
        let key = rest[..endq].to_owned();
        rest = &rest[endq + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let end = rest
            .find([',', '}'])
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.insert(key, v);
        }
        rest = &rest[end..];
    }
    out
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmark `f` under a plain string id.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id: String = id.into();
        self.run(id, |b| f(b));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let full_id = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let opts = self.criterion.opts.clone();
        if !opts.filters.is_empty() && !opts.filters.iter().any(|s| full_id.contains(s.as_str())) {
            return;
        }
        let (sample_size, measurement) = if opts.quick {
            (3usize.min(self.sample_size), self.measurement / 4)
        } else {
            (self.sample_size, self.measurement)
        };
        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        let mut bencher = Bencher {
            samples_ns: &mut samples,
            warm_up: self.warm_up,
            measurement,
            sample_size,
        };
        f(&mut bencher);
        if samples.is_empty() {
            return; // the closure never called iter()
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.criterion.record(&full_id, median);
    }

    /// End the group (kept for API compatibility; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// Declare the benchmark entry function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
