//! Property test: every derivation strategy — in particular the
//! second-generation `Strategy::Bitset` engine over the CSR snapshot and
//! its slot-range-partitioned `Strategy::Parallel` sibling — computes
//! exactly the same molecule sets as `PerRoot` and `LevelAtATime`, on
//! random schemas and databases covering:
//!
//! * shared subobjects (many molecules containing the same atom),
//! * diamond DAG structures (the ∀/∃ intersection of Def. 6),
//! * empty candidate sets (early exit paths),
//! * tombstoned slots (deleted atoms leave gaps in the dense slot space
//!   the bitsets are indexed by),
//! * arbitrary thread counts (1, equal to, and far beyond the root count),
//! * qualification pushdown (`evaluate_restricted` with per-node pruning
//!   vs. the naive derive-then-filter baseline, serial and parallel).

use mad::algebra::qual::QualExpr;
use mad::algebra::{
    derive_molecules, CmpOp, DeriveOptions, Engine, Strategy as DStrategy, StructureBuilder,
};
use mad::model::{AttrType, SchemaBuilder, Value};
use mad::storage::Database;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Shape {
    /// `t0 - t1 - t2 - t3`
    Chain,
    /// `t0 → (t1, t2) → t3` — diamond, t3 needs parents through BOTH edges
    Diamond,
    /// `t0 → (t1 - t3, t2)` — tree with two branches
    Tree,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (0usize..3).prop_map(|i| match i {
        0 => Shape::Chain,
        1 => Shape::Diamond,
        _ => Shape::Tree,
    })
}

/// Build a database over four atom types with the link types `shape` needs,
/// populate it from the generated parameters, and knock a few atoms out to
/// create tombstones.
fn build_db(
    shape: Shape,
    counts: [usize; 4],
    links: &[(usize, usize, usize)],
    deletions: &[usize],
) -> Database {
    let mut b = SchemaBuilder::new();
    for name in ["t0", "t1", "t2", "t3"] {
        b = b.atom_type(name, &[("v", AttrType::Int)]);
    }
    let edges: &[(&str, &str)] = match shape {
        Shape::Chain => &[("t0", "t1"), ("t1", "t2"), ("t2", "t3")],
        Shape::Diamond => &[("t0", "t1"), ("t0", "t2"), ("t1", "t3"), ("t2", "t3")],
        Shape::Tree => &[("t0", "t1"), ("t0", "t2"), ("t1", "t3")],
    };
    for (i, (a, bn)) in edges.iter().enumerate() {
        b = b.link_type(&format!("l{i}"), a, bn);
    }
    let schema = b.build().unwrap();
    let mut db = Database::new(schema);
    let mut ids = Vec::new();
    for (ti, &n) in counts.iter().enumerate() {
        let ty = db.schema().atom_type_id(&format!("t{ti}")).unwrap();
        let mut of_ty = Vec::new();
        for k in 0..n {
            of_ty.push(db.insert_atom(ty, vec![Value::Int(k as i64)]).unwrap());
        }
        ids.push(of_ty);
    }
    for &(ei, from, to) in links {
        let ei = ei % edges.len();
        let (fa, ta) = edges[ei];
        let fi: usize = fa[1..].parse().unwrap();
        let ti: usize = ta[1..].parse().unwrap();
        if ids[fi].is_empty() || ids[ti].is_empty() {
            continue;
        }
        let lt = db.schema().link_type_id(&format!("l{ei}")).unwrap();
        let a = ids[fi][from % ids[fi].len()];
        let b = ids[ti][to % ids[ti].len()];
        let _ = db.connect(lt, a, b);
    }
    // tombstone some non-root atoms so slot spaces have gaps
    for &d in deletions {
        let ti = 1 + d % 3;
        if !ids[ti].is_empty() {
            let victim = ids[ti][d % ids[ti].len()];
            if db.atom_exists(victim) {
                db.delete_atom(victim).unwrap();
            }
        }
    }
    db
}

fn structure_for(db: &Database, shape: Shape) -> mad::algebra::MoleculeStructure {
    let mut b = StructureBuilder::new(db.schema())
        .node("t0")
        .node("t1")
        .node("t2")
        .node("t3");
    b = match shape {
        Shape::Chain => b
            .edge_named("l0", "t0", "t1")
            .edge_named("l1", "t1", "t2")
            .edge_named("l2", "t2", "t3"),
        Shape::Diamond => b
            .edge_named("l0", "t0", "t1")
            .edge_named("l1", "t0", "t2")
            .edge_named("l2", "t1", "t3")
            .edge_named("l3", "t2", "t3"),
        Shape::Tree => b
            .edge_named("l0", "t0", "t1")
            .edge_named("l1", "t0", "t2")
            .edge_named("l2", "t1", "t3"),
    };
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitset_equals_classic_strategies(
        shape in shape_strategy(),
        c0 in 1usize..6,
        c1 in 0usize..7,
        c2 in 0usize..7,
        c3 in 0usize..7,
        links in prop::collection::vec((0usize..4, 0usize..32, 0usize..32), 0..90),
        deletions in prop::collection::vec(0usize..24, 0..5),
        threads in 1usize..9,
    ) {
        let db = build_db(shape, [c0, c1, c2, c3], &links, &deletions);
        let md = structure_for(&db, shape);
        let per_root =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::PerRoot)).unwrap();
        let level =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::LevelAtATime))
                .unwrap();
        let bitset =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Bitset)).unwrap();
        // root counts run 1..6, threads 1..9: covers 1 thread, threads ==
        // roots, and threads ≫ roots in one sweep
        let parallel = derive_molecules(
            &db,
            &md,
            &DeriveOptions::with_strategy(DStrategy::Parallel(threads)),
        )
        .unwrap();
        // the strategy entry point caps workers at the hardware's available
        // parallelism; drive the exact thread count too so the scoped
        // multi-worker fan-out is exercised even on small hosts
        let roots: Vec<_> = db.atom_ids_of(db.schema().atom_type_id("t0").unwrap());
        let exact = mad::algebra::derive_bitset_parallel(&db, &md, &roots, &[], threads).unwrap();
        prop_assert_eq!(&per_root, &level, "LevelAtATime diverged from PerRoot");
        prop_assert_eq!(&per_root, &bitset, "Bitset diverged from PerRoot");
        prop_assert_eq!(&per_root, &parallel, "Parallel diverged from PerRoot");
        prop_assert_eq!(&per_root, &exact, "exact-thread Parallel diverged from PerRoot");
    }

    #[test]
    fn bitset_pushdown_equals_derive_then_filter(
        shape in shape_strategy(),
        c0 in 1usize..6,
        c1 in 0usize..7,
        c2 in 0usize..7,
        c3 in 0usize..7,
        links in prop::collection::vec((0usize..4, 0usize..32, 0usize..32), 0..90),
        root_threshold in 0i64..6,
        child_threshold in 0i64..6,
    ) {
        let db = build_db(shape, [c0, c1, c2, c3], &links, &[]);
        let md = structure_for(&db, shape);
        let engine = Engine::new(db);
        // root conjunct + existential child conjunct, both pushed by the
        // bitset planner; node 3 exercises the no-witness molecule pruning
        let qual = QualExpr::cmp_const(0, 0, CmpOp::Lt, root_threshold)
            .and(QualExpr::cmp_const(3, 0, CmpOp::Ge, child_threshold));
        let pushed = engine
            .evaluate_restricted(&md, &qual, DStrategy::Bitset)
            .unwrap();
        let naive = engine
            .evaluate_filtered(&md, &qual, DStrategy::PerRoot)
            .unwrap();
        prop_assert_eq!(&pushed, &naive, "bitset pushdown changed the result set");
        // the parallel engine shares the same pushdown plan across workers
        let parallel = engine
            .evaluate_restricted(&md, &qual, DStrategy::Parallel(3))
            .unwrap();
        prop_assert_eq!(&parallel, &naive, "parallel pushdown changed the result set");
    }
}

/// Deterministic edge cases the proptest sweep may not pin down exactly.
mod parallel_edge_cases {
    use super::*;
    use mad::algebra::derive_bitset_parallel;
    use mad::model::AtomId;

    fn tiny_db() -> Database {
        build_db(
            Shape::Chain,
            [3, 2, 2, 2],
            &[(0, 0, 0), (0, 1, 1), (1, 0, 0), (1, 1, 1), (2, 0, 0), (2, 1, 1)],
            &[],
        )
    }

    #[test]
    fn empty_root_set_yields_empty_result() {
        let db = tiny_db();
        let md = structure_for(&db, Shape::Chain);
        for threads in [1, 2, 8] {
            let opts = DeriveOptions {
                strategy: DStrategy::Parallel(threads),
                roots: Some(Vec::new()),
            };
            assert!(derive_molecules(&db, &md, &opts).unwrap().is_empty());
        }
    }

    #[test]
    fn one_thread_equals_serial_bitset() {
        let db = tiny_db();
        let md = structure_for(&db, Shape::Chain);
        let serial =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Bitset)).unwrap();
        let one =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Parallel(1)))
                .unwrap();
        // Parallel(0) is normalized to one worker, not a panic
        let zero =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Parallel(0)))
                .unwrap();
        assert_eq!(serial, one);
        assert_eq!(serial, zero);
    }

    #[test]
    fn many_more_threads_than_roots_keeps_root_order() {
        let db = tiny_db();
        let md = structure_for(&db, Shape::Chain);
        let serial =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Bitset)).unwrap();
        let wide =
            derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Parallel(64)))
                .unwrap();
        assert_eq!(serial, wide);
        let roots: Vec<_> = wide.iter().map(|m| m.root).collect();
        let mut sorted = roots.clone();
        sorted.sort_unstable();
        assert_eq!(roots, sorted, "parallel results lost root order");
    }

    #[test]
    fn invalid_roots_rejected_before_spawning() {
        let db = tiny_db();
        let md = structure_for(&db, Shape::Chain);
        let t0 = db.schema().atom_type_id("t0").unwrap();
        let t1 = db.schema().atom_type_id("t1").unwrap();
        // wrong type and nonexistent slot both error, like every other path
        assert!(derive_bitset_parallel(&db, &md, &[AtomId::new(t1, 0)], &[], 4).is_err());
        assert!(derive_bitset_parallel(&db, &md, &[AtomId::new(t0, 99)], &[], 4).is_err());
    }
}
