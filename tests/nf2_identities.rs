//! Property tests for the NF² algebra identities ([SS86]):
//! `μ_B(ν_B(R)) = R` for every flat relation, and `ν∘μ = id` exactly on
//! relations in partitioned normal form.

use mad::model::AttrType;
use mad::nf2::ops::{nest, unnest};
use mad::nf2::{NestedAttr, NestedRelation, NestedValue};
use proptest::prelude::*;

fn flat_relation(rows: &[(i64, i64, i64)]) -> NestedRelation {
    let mut r = NestedRelation::new(
        "r",
        vec![
            NestedAttr::atomic("a", AttrType::Int),
            NestedAttr::atomic("b", AttrType::Int),
            NestedAttr::atomic("c", AttrType::Int),
        ],
    );
    for (a, b, c) in rows {
        r.insert(vec![
            NestedValue::Atomic(mad::model::Value::Int(*a)),
            NestedValue::Atomic(mad::model::Value::Int(*b)),
            NestedValue::Atomic(mad::model::Value::Int(*c)),
        ])
        .unwrap();
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// μ(ν(R)) = R on arbitrary flat relations, for every nest column set —
    /// up to attribute order (relations are over attribute *sets*; ν moves
    /// the nested columns to the end, so we re-project into the original
    /// order before comparing).
    #[test]
    fn unnest_inverts_nest(rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..40)) {
        let r = flat_relation(&rows);
        for cols in [vec!["c"], vec!["b", "c"], vec!["a", "c"]] {
            let refs: Vec<&str> = cols.clone();
            let n = nest(&r, &refs, "g").unwrap();
            let u = unnest(&n, "g").unwrap();
            let u = mad::nf2::ops::project(&u, &["a", "b", "c"]).unwrap();
            prop_assert_eq!(&u.tuples, &r.tuples, "nest cols {:?}", cols);
        }
    }

    /// ν(μ(N)) = N when N was produced by a nest (i.e. is partitioned).
    #[test]
    fn nest_unnest_identity_on_pnf(rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 1..40)) {
        let r = flat_relation(&rows);
        let n = nest(&r, &["c"], "g").unwrap();
        // n is in PNF by construction: groups are keyed by (a, b)
        let u = unnest(&n, "g").unwrap();
        let n2 = nest(&u, &["c"], "g").unwrap();
        prop_assert_eq!(n.tuples, n2.tuples);
    }

    /// Nesting never increases the tuple count, and unnesting never
    /// decreases it below the group count.
    #[test]
    fn cardinality_bounds(rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..40)) {
        let r = flat_relation(&rows);
        let n = nest(&r, &["b", "c"], "g").unwrap();
        prop_assert!(n.len() <= r.len());
        let u = unnest(&n, "g").unwrap();
        prop_assert_eq!(u.len(), r.len());
    }

    /// Double nesting round-trips through double unnesting.
    #[test]
    fn double_nesting_roundtrip(rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..4), 0..25)) {
        let r = flat_relation(&rows);
        let n1 = nest(&r, &["c"], "inner").unwrap();
        let n2 = nest(&n1, &["b", "inner"], "outer").unwrap();
        let u1 = unnest(&n2, "outer").unwrap();
        prop_assert_eq!(&u1.tuples, &n1.tuples);
        let u2 = unnest(&u1, "inner").unwrap();
        prop_assert_eq!(&u2.tuples, &r.tuples);
    }
}
