//! Property tests for prepared statements: `PREPARE` + `EXECUTE` is
//! observationally identical to executing the statement text directly
//! (results, commit sequences, conflicts), the cached plan is never
//! served stale across concurrent committers, and executing a
//! deallocated name fails cleanly without wedging the session.

use mad::model::{AttrType, MadError, SchemaBuilder, Value};
use mad::mql::Session;
use mad::storage::Database;
use mad::txn::DbHandle;
use proptest::prelude::*;

fn geo_db() -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("state", &[("sname", AttrType::Text), ("pop", AttrType::Int)])
        .atom_type("area", &[("aid", AttrType::Int)])
        .link_type("state-area", "state", "area")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state").unwrap();
    for (name, pop) in [("SP", 10), ("MG", 9), ("RJ", 6), ("BA", 4), ("RS", 3)] {
        db.insert_atom(state, vec![Value::from(name), Value::from(pop)])
            .unwrap();
    }
    db
}

/// One generated operation, applied identically to both sessions.
#[derive(Clone, Debug)]
enum Op {
    /// `EXECUTE sel (threshold)` vs the direct SELECT with the literal.
    Select(i64),
    /// `EXECUTE ins (name, pop)` vs the direct INSERT with the literals.
    Insert(u16, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..12).prop_map(Op::Select),
        (0u16..999, 0i64..12).prop_map(|(n, p)| Op::Insert(n, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core equivalence: a session driving everything through
    /// prepared statements and a session executing the same statements
    /// directly produce identical rendered results and identical commit
    /// sequences, step by step.
    #[test]
    fn prepare_execute_equals_direct_execution(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        let mut prep = Session::shared(DbHandle::new(geo_db()));
        let mut direct = Session::shared(DbHandle::new(geo_db()));
        prep.execute_rendered(
            "PREPARE sel AS SELECT ALL FROM state WHERE state.pop > $1",
        ).unwrap();
        prep.execute_rendered(
            "PREPARE ins AS INSERT ATOM state (sname = $1, pop = $2)",
        ).unwrap();
        for op in &ops {
            let (via_prep, via_direct) = match op {
                Op::Select(t) => (
                    prep.execute_rendered(&format!("EXECUTE sel ({t})")),
                    direct.execute_rendered(&format!(
                        "SELECT ALL FROM state WHERE state.pop > {t}"
                    )),
                ),
                Op::Insert(n, p) => (
                    prep.execute_rendered(&format!("EXECUTE ins ('N{n}', {p})")),
                    direct.execute_rendered(&format!(
                        "INSERT ATOM state (sname = 'N{n}', pop = {p})"
                    )),
                ),
            };
            prop_assert_eq!(via_prep.unwrap(), via_direct.unwrap());
            prop_assert_eq!(
                prep.handle().unwrap().commit_seq(),
                direct.handle().unwrap().commit_seq(),
                "prepared and direct execution diverged in commit history"
            );
        }
    }

    /// Conflicts are equivalent too: two writers racing on the same
    /// handle behave identically whether the loser's statements went
    /// through PREPARE/EXECUTE or direct text. Whatever the outcome of
    /// the race, it is the SAME outcome on both handles.
    #[test]
    fn prepared_conflicts_match_direct_conflicts(pop in 0i64..100) {
        let run = |prepared: bool| -> (bool, u64) {
            let handle = DbHandle::new(geo_db());
            let mut a = Session::shared(handle.clone());
            let mut b = Session::shared(handle.clone());
            if prepared {
                a.execute_rendered("PREPARE pw AS INSERT ATOM state (sname = $1, pop = $2)")
                    .unwrap();
            }
            a.execute_rendered("BEGIN").unwrap();
            let first = if prepared {
                a.execute_rendered(&format!("EXECUTE pw ('AA', {pop})"))
            } else {
                a.execute_rendered(&format!("INSERT ATOM state (sname = 'AA', pop = {pop})"))
            };
            first.unwrap();
            // b commits a competing write on the same atom type while
            // a's transaction is open
            b.execute_rendered(&format!("INSERT ATOM state (sname = 'BB', pop = {pop})"))
                .unwrap();
            let commit = a.execute_rendered("COMMIT");
            (commit.is_ok(), handle.commit_seq())
        };
        let (ok_p, seq_p) = run(true);
        let (ok_d, seq_d) = run(false);
        prop_assert_eq!(ok_p, ok_d, "conflict outcome diverged");
        prop_assert_eq!(seq_p, seq_d, "commit history diverged");
    }

    /// The plan cache is keyed by commit sequence: a committer on a
    /// *different* session of the same handle must be visible to the
    /// very next EXECUTE — the cached plan is revalidated, never stale.
    #[test]
    fn cached_plans_are_invalidated_by_concurrent_committers(
        batches in proptest::collection::vec(1usize..4, 1..6)
    ) {
        let handle = DbHandle::new(geo_db());
        let mut reader = Session::shared(handle.clone());
        let mut writer = Session::shared(handle);
        reader
            .execute_rendered("PREPARE qall AS SELECT ALL FROM state")
            .unwrap();
        let count_of = |text: &str| -> usize {
            let marker = " molecule(s)";
            let end = text.find(marker).expect("rendered SELECT has a count");
            let start = text[..end].rfind(|c: char| !c.is_ascii_digit()).map_or(0, |i| i + 1);
            text[start..end].parse().unwrap()
        };
        let mut expected = 5usize;
        // warm the plan cache, then interleave commits from the writer
        prop_assert_eq!(count_of(&reader.execute_rendered("EXECUTE qall").unwrap()), expected);
        for (round, batch) in batches.iter().enumerate() {
            for i in 0..*batch {
                writer
                    .execute_rendered(&format!(
                        "INSERT ATOM state (sname = 'W{round}_{i}', pop = {i})"
                    ))
                    .unwrap();
                expected += 1;
            }
            prop_assert_eq!(
                count_of(&reader.execute_rendered("EXECUTE qall").unwrap()),
                expected,
                "EXECUTE served a stale cached plan after a concurrent commit"
            );
        }
        // the fast path was actually exercised: one miss per
        // invalidating commit round (the plan had to be rebuilt)
        let counter = |name: &str| -> u64 {
            reader
                .obs()
                .snapshot(Some(name))
                .into_iter()
                .find_map(|(n, v)| match v {
                    mad::obs::MetricValue::Counter(c) if n == name => Some(c),
                    _ => None,
                })
                .unwrap_or(0)
        };
        prop_assert!(
            counter("mql.prepared.misses") >= batches.len() as u64,
            "expected a plan-cache miss per commit round"
        );
    }

    /// EXECUTE of a deallocated (or never-prepared) name is a clean
    /// UnknownName error: the session stays usable, other prepared
    /// statements survive, and re-preparing the name works.
    #[test]
    fn deallocated_execute_errors_cleanly(n in 0u16..999) {
        let mut s = Session::shared(DbHandle::new(geo_db()));
        s.execute_rendered("PREPARE gone AS SELECT ALL FROM state").unwrap();
        s.execute_rendered("PREPARE kept AS SELECT ALL FROM state WHERE state.pop > $1")
            .unwrap();
        s.execute_rendered("DEALLOCATE gone").unwrap();
        let err = s.execute_rendered("EXECUTE gone").unwrap_err();
        prop_assert!(
            matches!(&err, MadError::UnknownName { kind, .. } if *kind == "prepared statement"),
            "got: {err:?}"
        );
        // the session is not wedged: the surviving prepared statement
        // and plain statements still run
        s.execute_rendered(&format!("EXECUTE kept ({})", i64::from(n) % 12)).unwrap();
        s.execute_rendered(&format!("INSERT ATOM state (sname = 'X{n}', pop = 1)"))
            .unwrap();
        // deallocating twice is the same clean error
        let err = s.execute_rendered("DEALLOCATE gone").unwrap_err();
        prop_assert!(matches!(err, MadError::UnknownName { .. }), "got: {err:?}");
        // and the name can be re-prepared with a different body
        s.execute_rendered("PREPARE gone AS SELECT ALL FROM state WHERE state.pop > 100")
            .unwrap();
        let text = s.execute_rendered("EXECUTE gone").unwrap();
        prop_assert!(text.contains("0 molecule(s)"), "got: {text}");
    }
}
