//! Property tests for recursive molecule types ([Schö89] / §5) against the
//! relational transitive-closure semantics, on random BOM DAGs.

use mad::algebra::recursive::{derive_recursive_one, RecursiveSpec};
use mad::algebra::Direction;
use mad::model::Value;
use mad::relational::closure::{reachable_from, transitive_closure};
use mad::relational::RelationalImage;
use mad::workload::{generate_bom, BomParams};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = BomParams> {
    (1usize..5, 3usize..20, 1usize..4, 0.0f64..1.0, any::<u64>()).prop_map(
        |(depth, width, fanout, share, seed)| BomParams {
            depth,
            width,
            fanout,
            share,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recursive molecule's atom set equals relational reachability
    /// from the same root, for every root.
    #[test]
    fn explosion_equals_reachability(p in params()) {
        let (db, h) = generate_bom(&p).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let aux = image.link_mapping(h.composition).1.as_ref().unwrap();
        let spec = RecursiveSpec {
            atom_type: h.parts,
            link: h.composition,
            dir: Direction::Fwd,
            max_depth: None,
        };
        for &root in h.roots.iter().take(5) {
            let m = derive_recursive_one(&db, &spec, root).unwrap();
            let mut mad_set: Vec<i64> =
                m.atom_set().into_iter().map(|a| a.pack() as i64).collect();
            mad_set.sort_unstable();
            let rel_set: Vec<i64> =
                reachable_from(aux, &Value::Int(root.pack() as i64))
                    .unwrap()
                    .into_iter()
                    .map(|v| v.as_int().unwrap())
                    .collect();
            prop_assert_eq!(mad_set, rel_set);
        }
    }

    /// Depth-bounded explosions are monotone: deeper bounds contain
    /// shallower ones, and the unbounded explosion contains them all.
    #[test]
    fn depth_bound_monotone(p in params()) {
        let (db, h) = generate_bom(&p).unwrap();
        let root = h.roots[0];
        let mut previous: Option<Vec<mad::model::AtomId>> = None;
        for depth in 0..=p.depth + 1 {
            let spec = RecursiveSpec {
                atom_type: h.parts,
                link: h.composition,
                dir: Direction::Fwd,
                max_depth: Some(depth),
            };
            let m = derive_recursive_one(&db, &spec, root).unwrap();
            prop_assert!(m.depth() <= depth);
            let atoms = m.atom_set();
            if let Some(prev) = &previous {
                prop_assert!(
                    prev.iter().all(|a| atoms.binary_search(a).is_ok()),
                    "depth {depth} lost atoms of depth {}",
                    depth - 1
                );
            }
            previous = Some(atoms);
        }
        // the generator builds ≤ p.depth levels, so the unbounded result
        // equals the bound at p.depth
        let unbounded = derive_recursive_one(
            &db,
            &RecursiveSpec {
                atom_type: h.parts,
                link: h.composition,
                dir: Direction::Fwd,
                max_depth: None,
            },
            root,
        )
        .unwrap();
        prop_assert_eq!(unbounded.atom_set(), previous.unwrap());
    }

    /// Down- and up-explosions are converses: `b ∈ down(a) ⟺ a ∈ up(b)`
    /// (spot-checked over the first roots and their components).
    #[test]
    fn down_up_converse(p in params()) {
        let (db, h) = generate_bom(&p).unwrap();
        let down = |root| {
            derive_recursive_one(
                &db,
                &RecursiveSpec {
                    atom_type: h.parts,
                    link: h.composition,
                    dir: Direction::Fwd,
                    max_depth: None,
                },
                root,
            )
            .unwrap()
        };
        let up = |root| {
            derive_recursive_one(
                &db,
                &RecursiveSpec {
                    atom_type: h.parts,
                    link: h.composition,
                    dir: Direction::Bwd,
                    max_depth: None,
                },
                root,
            )
            .unwrap()
        };
        let root = h.roots[0];
        let exploded = down(root);
        for &component in exploded.atom_set().iter().take(8) {
            let used_in = up(component);
            prop_assert!(
                used_in.atom_set().binary_search(&root).is_ok(),
                "{component} is below {root} but {root} not above {component}"
            );
        }
    }

    /// The full transitive closure contains every (root, component) pair of
    /// every explosion.
    #[test]
    fn closure_covers_explosions(p in params()) {
        let (db, h) = generate_bom(&p).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        let aux = image.link_mapping(h.composition).1.as_ref().unwrap();
        let closure = transitive_closure(aux, None).unwrap();
        let spec = RecursiveSpec {
            atom_type: h.parts,
            link: h.composition,
            dir: Direction::Fwd,
            max_depth: None,
        };
        for &root in h.roots.iter().take(3) {
            let m = derive_recursive_one(&db, &spec, root).unwrap();
            for a in m.atom_set() {
                if a == root {
                    continue;
                }
                prop_assert!(closure.contains(&[
                    Value::Int(root.pack() as i64),
                    Value::Int(a.pack() as i64)
                ]));
            }
        }
    }
}
