//! Property test: the FROM-clause rendering of a molecule structure
//! (`render_compact`, the §4 syntax) parses and analyzes back to the same
//! structure — i.e. the MQL surface syntax is a faithful notation for
//! Def. 5 descriptions.

use mad::algebra::structure::{MoleculeStructure, StructureBuilder};
use mad::model::Schema;
use mad::mql;
use mad::workload::brazil_database;
use proptest::prelude::*;

/// Random structures over the Brazil schema: grow a tree by repeatedly
/// attaching a random linkable atom type under a random existing node.
fn random_structure(schema: &Schema, choices: &[usize]) -> Option<MoleculeStructure> {
    let type_names: Vec<String> = schema
        .atom_types()
        .map(|(_, d)| d.name.clone())
        .collect();
    let mut c = choices.iter().copied();
    let root = type_names[c.next()? % type_names.len()].clone();
    let mut nodes: Vec<String> = vec![root.clone()];
    let mut edges: Vec<(String, String)> = Vec::new();
    for _ in 0..(choices.len().saturating_sub(1) / 2) {
        let parent_i = c.next()? % nodes.len();
        let parent = nodes[parent_i].clone();
        // candidate children: types linked to parent's type, not yet used
        let pty = schema.atom_type_id(&parent).ok()?;
        let mut candidates: Vec<String> = schema
            .link_types_of(pty)
            .iter()
            .filter_map(|&lt| {
                let other = schema.link_type(lt).other_end(pty)?;
                let name = schema.atom_type(other).name.clone();
                if nodes.contains(&name) {
                    None
                } else {
                    Some(name)
                }
            })
            .collect();
        candidates.sort();
        candidates.dedup();
        if candidates.is_empty() {
            continue;
        }
        let child = candidates[c.next()? % candidates.len()].clone();
        nodes.push(child.clone());
        edges.push((parent, child));
    }
    let mut b = StructureBuilder::new(schema);
    for n in &nodes {
        b = b.node(n);
    }
    for (p, ch) in &edges {
        b = b.edge(p, ch);
    }
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn render_parse_roundtrip(choices in prop::collection::vec(0usize..100, 1..12)) {
        let (db, _) = brazil_database().unwrap();
        let schema = db.schema();
        let Some(md) = random_structure(schema, &choices) else {
            return Ok(());
        };
        let rendered = md.render_compact(schema);
        let query = format!("SELECT ALL FROM {rendered}");
        let stmt = mql::parse(&query)
            .unwrap_or_else(|e| panic!("`{query}` failed to parse: {e}"));
        let mad::mql::ast::Statement::Select(sel) = stmt else {
            panic!()
        };
        let mad::mql::ast::FromClause::Inline { structure, .. } = sel.from else {
            // single-node structures render as a bare name
            let mad::mql::ast::FromClause::Named(name) = sel.from else {
                panic!()
            };
            prop_assert_eq!(md.node_count(), 1);
            prop_assert_eq!(&name, &md.root_node().alias);
            return Ok(());
        };
        let back = mql::analyze::analyze_structure(schema, &structure)
            .unwrap_or_else(|e| panic!("`{rendered}` failed to analyze: {e}"));
        // the canonical rendering is a fixpoint …
        prop_assert_eq!(
            back.render_compact(schema),
            rendered.clone(),
            "rendering is not canonical"
        );
        // … and both structures derive the same molecules (strongest
        // observable equivalence; node/edge order may legitimately differ)
        let orig = mad::algebra::derive_molecules(
            &db,
            &md,
            &mad::algebra::DeriveOptions::default(),
        )
        .unwrap();
        let reparsed = mad::algebra::derive_molecules(
            &db,
            &back,
            &mad::algebra::DeriveOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(orig.len(), reparsed.len());
        for (a, b) in orig.iter().zip(&reparsed) {
            prop_assert_eq!(a.root, b.root);
            prop_assert_eq!(a.atom_set(), b.atom_set());
            prop_assert_eq!(a.link_set(), b.link_set());
        }
    }
}

#[test]
fn roundtrip_of_the_paper_structures() {
    let (db, _) = brazil_database().unwrap();
    let schema = db.schema();
    for src in [
        "state-area-edge-point",
        "point-edge-(area-state,net-river)",
        "river-net-edge-point",
        "city-point-edge-(area-state,net-river)",
    ] {
        let stmt = mql::parse(&format!("SELECT ALL FROM {src}")).unwrap();
        let mad::mql::ast::Statement::Select(sel) = stmt else {
            panic!()
        };
        let mad::mql::ast::FromClause::Inline { structure, .. } = sel.from else {
            panic!()
        };
        let md = mql::analyze::analyze_structure(schema, &structure).unwrap();
        assert_eq!(md.render_compact(schema), src, "canonical rendering");
    }
}
