//! Property tests: the relational-baseline evaluators compute the very same
//! molecule sets as the MAD engine (the correctness precondition of the B1
//! benchmark), and the NF² materialization flattens back to the join
//! result.

use mad::algebra::molecule::MoleculeType;
use mad::algebra::structure::path;
use mad::algebra::{derive_molecules, DeriveOptions};
use mad::nf2::materialize;
use mad::nf2::ops as nf2_ops;
use mad::relational::derive_join::{derive_via_algebra, derive_via_hash_joins};
use mad::relational::RelationalImage;
use mad::workload::{generate_bom, generate_geo, BomParams, GeoParams};
use proptest::prelude::*;

fn geo_params() -> impl Strategy<Value = GeoParams> {
    (2usize..10, 1usize..5, 0usize..5, 0.0f64..1.0, any::<u64>()).prop_map(
        |(states, edges_per_state, rivers, share, seed)| GeoParams {
            states,
            edges_per_state,
            rivers,
            edges_per_river: 3,
            share,
            cities: 1,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// MAD link traversal == relational hash joins == relational algebra
    /// plan, molecule for molecule.
    #[test]
    fn relational_evaluators_agree_with_mad(params in geo_params()) {
        let (db, _) = generate_geo(&params).unwrap();
        let image = RelationalImage::from_database(&db).unwrap();
        for names in [
            ["state", "area", "edge", "point"].as_slice(),
            ["river", "net", "edge"].as_slice(),
            ["point", "edge", "area"].as_slice(),
        ] {
            let md = path(db.schema(), names).unwrap();
            let mad_side = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
            let hash_side = derive_via_hash_joins(&image, &md).unwrap();
            prop_assert_eq!(&mad_side, &hash_side);
            let algebra_side = derive_via_algebra(&image, &md).unwrap();
            prop_assert_eq!(&mad_side, &algebra_side);
        }
    }

    /// Unnesting the NF² materialization level by level yields exactly the
    /// flat path tuples (state, area, edge) of the join result — i.e. the
    /// NF² image loses nothing *except* identity/sharing.
    #[test]
    fn nf2_flattens_to_join_paths(params in geo_params()) {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["state", "area", "edge"]).unwrap();
        let molecules = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
        // count (state, area, edge) paths in the molecule set
        let mut path_count = 0usize;
        for m in &molecules {
            for (_, area) in m.links_at(0) {
                path_count += m
                    .links_at(1)
                    .iter()
                    .filter(|(p, _)| p == area)
                    .count();
            }
        }
        let mt = MoleculeType {
            name: "mt".into(),
            structure: md,
            molecules,
        };
        let mat = materialize(&db, &mt).unwrap();
        let u1 = nf2_ops::unnest(&mat.relation, "area").unwrap();
        let u2 = nf2_ops::unnest(&u1, "edge").unwrap();
        // each flat tuple is one (state, area, edge) path; value-level
        // duplicates can collapse, so flattening gives at most path_count
        prop_assert!(u2.len() <= path_count);
        // and the duplication factor is never below 1
        prop_assert!(mat.duplication_factor() >= 1.0);
    }

    /// On BOM DAGs, the duplication factor grows monotonically-ish with the
    /// sharing parameter (weak check: share=1.0 duplicates at least as much
    /// as share=0.0 for identical seeds).
    #[test]
    fn bom_sharing_increases_duplication(seed in any::<u64>()) {
        let mk = |share: f64| {
            let (db, h) = generate_bom(&BomParams {
                depth: 3,
                width: 30,
                fanout: 2,
                share,
                seed,
            })
            .unwrap();
            let md = mad::algebra::structure::StructureBuilder::new(db.schema())
                .node_as("l0", "parts")
                .node_as("l1", "parts")
                .node_as("l2", "parts")
                .edge_directed("composition", "l0", "l1", mad::algebra::Direction::Fwd)
                .edge_directed("composition", "l1", "l2", mad::algebra::Direction::Fwd)
                .build()
                .unwrap();
            let opts = DeriveOptions {
                roots: Some(h.roots.clone()),
                ..Default::default()
            };
            let molecules = derive_molecules(&db, &md, &opts).unwrap();
            let mt = MoleculeType {
                name: "x".into(),
                structure: md,
                molecules,
            };
            materialize(&db, &mt).unwrap().duplication_factor()
        };
        let disjoint = mk(0.0);
        let shared = mk(1.0);
        prop_assert!(shared >= disjoint - 1e-9, "shared={shared}, disjoint={disjoint}");
    }
}
