//! Property tests for the WAL binary codec: `decode ∘ encode = id` for
//! arbitrary values, tuples and op logs, and decoding never panics on
//! truncated input (the recovery path feeds it torn tails).

use mad::model::bin::{BinDecode, BinEncode};
use mad::model::{AtomId, AtomTypeId, LinkTypeId, Value};
use mad::wal::WalOp;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0u64..2).prop_map(|b| Value::Bool(b == 1)),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(|bits| Value::Float(f64::from_bits(bits))),
        (0usize..12, 0u64..1000).prop_map(|(len, salt)| {
            // strings with multi-byte chars and embedded quotes
            let alphabet = ['a', 'ß', '√', '\'', ';', '\n', '0', '—'];
            Value::Text(
                (0..len)
                    .map(|i| alphabet[(salt as usize + i * 7) % alphabet.len()])
                    .collect(),
            )
        }),
        (0u32..8, 0u32..1 << 20).prop_map(|(ty, slot)| Value::Id(AtomId::new(
            AtomTypeId(ty),
            slot
        ))),
    ]
}

fn atom_id_strategy() -> impl Strategy<Value = AtomId> {
    (0u32..6, 0u32..1 << 16).prop_map(|(ty, slot)| AtomId::new(AtomTypeId(ty), slot))
}

fn op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (
            0u32..6,
            proptest::collection::vec(value_strategy(), 0..5),
            atom_id_strategy()
        )
            .prop_map(|(ty, tuple, id)| WalOp::Insert {
                ty: AtomTypeId(ty),
                tuple,
                id
            }),
        (
            0u32..6,
            proptest::collection::vec(value_strategy(), 0..4),
            proptest::collection::vec(atom_id_strategy(), 0..4),
        )
            .prop_map(|(ty, tuple, ids)| WalOp::InsertBatch {
                ty: AtomTypeId(ty),
                tuples: ids.iter().map(|_| tuple.clone()).collect(),
                ids
            }),
        atom_id_strategy().prop_map(|id| WalOp::Delete { id }),
        (atom_id_strategy(), 0u32..6, value_strategy()).prop_map(|(id, attr, value)| {
            WalOp::UpdateAttr { id, attr, value }
        }),
        (0u32..6, atom_id_strategy(), atom_id_strategy()).prop_map(|(lt, side0, side1)| {
            WalOp::Connect {
                lt: LinkTypeId(lt),
                side0,
                side1,
            }
        }),
        (0u32..6, atom_id_strategy(), atom_id_strategy()).prop_map(|(lt, side0, side1)| {
            WalOp::Disconnect {
                lt: LinkTypeId(lt),
                side0,
                side1,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn value_roundtrip(v in value_strategy()) {
        let bytes = v.to_bytes();
        let back = Value::from_bytes(&bytes).unwrap();
        // bit-exact for floats (NaN payloads included), structural otherwise
        match (&v, &back) {
            (Value::Float(a), Value::Float(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
            _ => prop_assert_eq!(&v, &back),
        }
    }

    #[test]
    fn tuple_roundtrip(tuple in proptest::collection::vec(value_strategy(), 0..8)) {
        let bytes = tuple.to_bytes();
        prop_assert_eq!(Vec::<Value>::from_bytes(&bytes).unwrap(), tuple);
    }

    #[test]
    fn op_log_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..12)) {
        let bytes = ops.to_bytes();
        prop_assert_eq!(Vec::<WalOp>::from_bytes(&bytes).unwrap(), ops);
    }

    #[test]
    fn truncated_op_logs_error_not_panic(
        ops in proptest::collection::vec(op_strategy(), 1..6),
        cut_permille in 0usize..1000,
    ) {
        let bytes = ops.to_bytes();
        let cut = cut_permille * bytes.len() / 1000;
        if cut < bytes.len() {
            // every strict prefix must fail cleanly
            prop_assert!(Vec::<WalOp>::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
