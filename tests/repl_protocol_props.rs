//! Property tests for the replication stream codec: `decode ∘ encode = id`
//! (checked as byte equality — the stream transports `WalRecord`s, which
//! have no structural equality) for every message kind including full
//! bootstrap snapshots, and decoding never panics on arbitrary or
//! truncated bytes (a standby feeds it whatever the wire delivers,
//! including the fault injector's mutilations).

use mad::model::{AtomId, AtomTypeId, AttrType, SchemaBuilder, Value};
use mad::repl::proto::{decode_msg, encode_msg, ReplMsg};
use mad::storage::{Database, DatabaseSnapshot};
use mad::wal::{WalOp, WalRecord};
use proptest::prelude::*;

fn id_strategy() -> impl Strategy<Value = AtomId> {
    (0u32..6, 0u32..1 << 16).prop_map(|(ty, slot)| AtomId::new(AtomTypeId(ty), slot))
}

fn op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (0u32..6, any::<i64>(), id_strategy()).prop_map(|(ty, n, id)| WalOp::Insert {
            ty: AtomTypeId(ty),
            tuple: vec![Value::Int(n), Value::Text(format!("t{n}"))],
            id,
        }),
        id_strategy().prop_map(|id| WalOp::Delete { id }),
        (id_strategy(), 0u32..6, any::<i64>()).prop_map(|(id, attr, n)| WalOp::UpdateAttr {
            id,
            attr,
            value: Value::Int(n),
        }),
        (0u32..6, id_strategy(), id_strategy()).prop_map(|(lt, side0, side1)| WalOp::Connect {
            lt: mad::model::LinkTypeId(lt),
            side0,
            side1,
        }),
    ]
}

/// A real snapshot of a small database with `atoms` committed atoms —
/// the bootstrap payload a fresh standby receives.
fn snapshot_with(atoms: usize) -> DatabaseSnapshot {
    let schema = SchemaBuilder::new()
        .atom_type("item", &[("label", AttrType::Text), ("rank", AttrType::Int)])
        .build()
        .expect("static schema");
    let mut db = Database::new(schema);
    let item = db.schema().atom_type_id("item").expect("item type");
    for i in 0..atoms {
        db.insert_atom(item, vec![Value::from(format!("i{i}")), Value::Int(i as i64)])
            .expect("insert");
    }
    DatabaseSnapshot::capture(&db)
}

fn msg_strategy() -> impl Strategy<Value = ReplMsg> {
    prop_oneof![
        (0u32..9, 0u64..2, 0u64..1 << 40).prop_map(|(protocol, flag, cursor)| {
            ReplMsg::StandbyHello {
                protocol,
                have: (flag == 1).then_some(cursor),
            }
        }),
        (0u32..9, 0u64..1 << 40)
            .prop_map(|(protocol, last_seq)| ReplMsg::PrimaryHello { protocol, last_seq }),
        any::<u64>().prop_map(|seq| ReplMsg::Ack { seq }),
        (1u64..1 << 40, proptest::collection::vec(op_strategy(), 0..6))
            .prop_map(|(seq, ops)| ReplMsg::Record(WalRecord::Commit { seq, ops })),
        (0u64..1 << 40, 0usize..4).prop_map(|(base_seq, atoms)| {
            ReplMsg::Record(WalRecord::Bootstrap {
                base_seq,
                snapshot: Box::new(snapshot_with(atoms)),
            })
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_is_identity_on_the_bytes(msg in msg_strategy()) {
        let bytes = encode_msg(&msg);
        let back = decode_msg(&bytes).expect("own encoding must decode");
        // `WalRecord` carries a full snapshot and has no `PartialEq`;
        // byte equality of the re-encoding is the stronger statement
        prop_assert_eq!(encode_msg(&back), bytes);
    }

    #[test]
    fn decoding_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..300)
    ) {
        // Ok or Err are both acceptable; a panic is not
        let _ = decode_msg(&bytes);
    }

    #[test]
    fn truncated_messages_error_not_panic(
        msg in msg_strategy(), cut_permille in 0usize..1000
    ) {
        let bytes = encode_msg(&msg);
        let cut = cut_permille * bytes.len() / 1000;
        if cut < bytes.len() {
            // every strict prefix must fail cleanly — the CRC framing
            // below this layer makes truncation unlikely to arrive here,
            // but the decoder must not rely on that
            prop_assert!(decode_msg(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(msg in msg_strategy(), extra in 1usize..5) {
        let mut bytes = encode_msg(&msg);
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(decode_msg(&bytes).is_err());
    }
}
