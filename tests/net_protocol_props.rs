//! Property tests for the wire codec: `decode ∘ encode = id` for requests,
//! responses and transported errors, and decoding never panics on
//! arbitrary or truncated bytes (the server feeds it whatever a client
//! sends).

use mad::model::MadError;
use mad::net::frame::{
    decode_request, decode_response, encode_request, encode_response, read_frame, FrameIn,
    Request, Response,
};
use proptest::prelude::*;

fn text_strategy() -> impl Strategy<Value = String> {
    (0usize..24, 0u64..1000).prop_map(|(len, salt)| {
        // statement-ish text with quotes, unicode and newlines
        let alphabet = [
            'S', 'E', 'L', ' ', '\'', ';', '\n', 'ß', '√', '-', '(', ')', '=', '0',
        ];
        (0..len)
            .map(|i| alphabet[(salt as usize + i * 11) % alphabet.len()])
            .collect()
    })
}

fn error_strategy() -> impl Strategy<Value = MadError> {
    let leaf = prop_oneof![
        text_strategy().prop_map(|name| MadError::UnknownName {
            kind: "atom type",
            name
        }),
        (text_strategy(), text_strategy(), text_strategy()).prop_map(
            |(context, expected, found)| MadError::TypeMismatch {
                context,
                expected,
                found
            }
        ),
        (text_strategy(), 0usize..9, 0usize..9).prop_map(|(context, expected, found)| {
            MadError::ArityMismatch {
                context,
                expected,
                found,
            }
        }),
        text_strategy().prop_map(|detail| MadError::IntegrityViolation { detail }),
        (text_strategy(), text_strategy())
            .prop_map(|(link_type, detail)| MadError::CardinalityViolation { link_type, detail }),
        (0usize..500, text_strategy())
            .prop_map(|(offset, detail)| MadError::Parse { offset, detail }),
        text_strategy().prop_map(|detail| MadError::Analysis { detail }),
        text_strategy().prop_map(MadError::txn_conflict),
        text_strategy().prop_map(MadError::txn_state),
        text_strategy().prop_map(MadError::wal),
        text_strategy().prop_map(MadError::codec),
        text_strategy().prop_map(MadError::protocol),
        text_strategy().prop_map(MadError::io),
    ];
    (leaf, 0usize..3, text_strategy()).prop_map(|(source, index, statement)| {
        if index == 0 {
            source
        } else {
            MadError::Script {
                index,
                statement,
                source: Box::new(source),
            }
        }
    })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        text_strategy().prop_map(Response::Result),
        error_strategy().prop_map(Response::Error),
        Just(Response::Pong),
        (0u32..9, 0u64..1 << 40, 0u64..2, any::<u8>()).prop_map(
            |(protocol, commit_seq, d, encodings)| Response::Hello {
                protocol,
                commit_seq,
                durable: d == 1,
                encodings,
            }
        ),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Response::BinResult),
        any::<u8>().prop_map(Response::EncodingAck),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        text_strategy().prop_map(Request::Statement),
        Just(Request::Ping),
        any::<u8>().prop_map(Request::SetEncoding),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let decoded = decode_request(&encode_request(&req)).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let decoded = decode_response(&encode_response(&resp)).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn conflict_flag_survives_transport(detail in text_strategy(), wrap in 0usize..2) {
        let err = if wrap == 1 {
            MadError::Script {
                index: 1,
                statement: "COMMIT".into(),
                source: Box::new(MadError::txn_conflict(detail)),
            }
        } else {
            MadError::txn_conflict(detail)
        };
        let Response::Error(back) =
            decode_response(&encode_response(&Response::Error(err))).unwrap()
        else {
            panic!("error response decoded as something else");
        };
        prop_assert!(back.is_conflict());
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        // Ok or Err are both fine; a panic is not
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn truncated_payloads_never_roundtrip_wrong(
        resp in response_strategy(), cut_salt in 0usize..1000
    ) {
        // any strict prefix of a valid payload must decode to an error or
        // to a *different* value — never panic, never silently truncate a
        // Result payload into the same shape with lost data
        let full = encode_response(&resp);
        if full.len() > 1 {
            let cut = 1 + cut_salt % (full.len() - 1);
            if let Ok(decoded) = decode_response(&full[..cut]) {
                prop_assert!(decoded != resp, "truncated payload decoded as the original");
            }
        }
    }

    #[test]
    fn truncated_frames_never_panic(
        resp in response_strategy(), cut_salt in 0usize..1000
    ) {
        let mut wire = Vec::new();
        mad::net::frame::write_frame(&mut wire, &encode_response(&resp)).unwrap();
        let cut = cut_salt % wire.len();
        match read_frame(&mut &wire[..cut]) {
            Ok(FrameIn::Closed) => prop_assert_eq!(cut, 0, "only EOF-at-boundary is Closed"),
            Ok(FrameIn::Payload(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(e) => prop_assert!(matches!(e, MadError::Protocol { .. })),
        }
    }
}
