//! MQL end-to-end over the realistic workloads: the full
//! parse → analyze → algebra → result pipeline on the Brazil and VLSI
//! databases, plus a DML-then-query session and MQL-vs-direct-algebra
//! equivalence checks.

use mad::algebra::ops::Engine;
use mad::algebra::qual::{CmpOp, QualExpr};
use mad::algebra::structure::path;
use mad::mql::{Session, StatementResult};
use mad::workload::{brazil_database, generate_vlsi, VlsiParams};

fn molecules(r: StatementResult) -> mad::algebra::molecule::MoleculeType {
    match r {
        StatementResult::Molecules(mt) => mt,
        other => panic!("expected molecules, got {other:?}"),
    }
}

#[test]
fn mql_equals_direct_algebra() {
    let (db, _) = brazil_database().unwrap();
    let mut session = Session::new(db);
    let via_mql = molecules(
        session
            .execute("SELECT ALL FROM state-area-edge WHERE state.hectare > 700.0")
            .unwrap(),
    );
    // the same through the algebra API on a fresh engine
    let (db, _) = brazil_database().unwrap();
    let mut engine = Engine::new(db);
    let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
    let mt = engine.define("mt", md).unwrap();
    let direct = engine
        .restrict(&mt, &QualExpr::cmp_const(0, 2, CmpOp::Gt, 700.0))
        .unwrap();
    assert_eq!(via_mql.len(), direct.len());
    // canonical atom sets agree molecule-by-molecule
    let canon = |e: &Engine, mt: &mad::algebra::molecule::MoleculeType| -> Vec<Vec<mad::model::AtomId>> {
        let mut v: Vec<Vec<mad::model::AtomId>> = mt
            .molecules
            .iter()
            .map(|m| m.map_atoms(|a| e.provenance().canonical_atom(a)).atom_set())
            .collect();
        v.sort();
        v
    };
    assert_eq!(canon(session.engine(), &via_mql), canon(&engine, &direct));
}

#[test]
fn quantifiers_and_aggregates_in_where() {
    let (db, _) = brazil_database().unwrap();
    let mut s = Session::new(db);
    // every state has exactly 4 border edges in the fixture
    let all4 = molecules(
        s.execute("SELECT ALL FROM state-area-edge WHERE COUNT(edge) = 4")
            .unwrap(),
    );
    assert_eq!(all4.len(), 10);
    // FORALL over the edge set
    let all = molecules(
        s.execute("SELECT ALL FROM state-area-edge WHERE FORALL(edge: edge.eid >= 0)")
            .unwrap(),
    );
    assert_eq!(all.len(), 10);
    // EXISTS with inner conjunction
    let some = molecules(
        s.execute(
            "SELECT ALL FROM state-area-edge WHERE EXISTS(edge: edge.eid >= 0 AND edge.eid < 4)",
        )
        .unwrap(),
    );
    assert_eq!(some.len(), 1, "only MG owns edges 0..4");
    // aggregate over a child attribute
    let sum = molecules(
        s.execute("SELECT ALL FROM state-area-edge WHERE SUM(edge.eid) > 100")
            .unwrap(),
    );
    assert!(sum.len() < 10);
}

#[test]
fn vlsi_queries_with_explicit_link_names() {
    let (db, _) = generate_vlsi(&VlsiParams::default()).unwrap();
    let mut s = Session::new(db);
    // `cell` and `inst` are connected by TWO link types (cell-inst and
    // inst-of), so the bare `-` must fail…
    let err = s.execute("SELECT ALL FROM cell-inst").unwrap_err();
    assert!(err.to_string().contains("link types"), "{err}");
    // …and the explicit label must work
    let mt = molecules(
        s.execute("SELECT ALL FROM top:cell-[cell-inst]-inst-[inst-of]-def:cell WHERE top.level = 2")
            .unwrap(),
    );
    assert_eq!(mt.len(), 8, "eight level-2 cells");
    for m in &mt.molecules {
        assert_eq!(m.atoms_at(1).len(), 6, "six instances each");
    }
}

#[test]
fn dml_session_lifecycle() {
    let (db, _) = brazil_database().unwrap();
    let mut s = Session::new(db);
    let results = s
        .execute_script(
            "INSERT ATOM state (sname = 'TO', fullname = 'Tocantins', hectare = 277.7);
             INSERT ATOM area (aid = 99);
             CONNECT state[sname='TO'] TO area[aid=99] VIA state-area;
             SELECT ALL FROM state-area WHERE state.sname = 'TO';",
        )
        .unwrap();
    assert_eq!(results.len(), 4);
    let StatementResult::Molecules(mt) = &results[3] else {
        panic!()
    };
    assert_eq!(mt.len(), 1);
    assert_eq!(mt.molecules[0].atoms_at(1).len(), 1);
    // deleting the area cascades the new link
    let r = s.execute("DELETE ATOM area[aid=99]").unwrap();
    let StatementResult::Deleted { atoms, links } = r else {
        panic!()
    };
    assert_eq!((atoms, links), (1, 1));
    assert!(s.db().audit_referential_integrity().is_empty());
}

#[test]
fn named_molecule_types_are_session_state() {
    let (db, _) = brazil_database().unwrap();
    let mut s = Session::new(db);
    s.execute("DEFINE MOLECULE borders AS state-area-edge")
        .unwrap();
    s.execute("DEFINE MOLECULE courses AS river-net-edge")
        .unwrap();
    assert_eq!(s.catalog_names(), vec!["borders", "courses"]);
    let b = molecules(s.execute("SELECT ALL FROM borders").unwrap());
    let c = molecules(s.execute("SELECT ALL FROM courses").unwrap());
    assert_eq!(b.len(), 10);
    assert_eq!(c.len(), 3);
    // projection over a named type
    let p = molecules(
        s.execute("SELECT state.sname, area FROM borders WHERE state.hectare >= 900.0")
            .unwrap(),
    );
    assert_eq!(p.structure.node_count(), 2);
    assert_eq!(p.len(), 3, "MG, BA, SP");
}

#[test]
fn recursive_mql_on_generated_bom() {
    let (db, h) = mad::workload::generate_bom(&mad::workload::BomParams {
        depth: 3,
        width: 10,
        fanout: 2,
        share: 0.5,
        seed: 3,
    })
    .unwrap();
    let root_name = db.atom(h.roots[0]).unwrap()[0].as_text().unwrap().to_owned();
    let mut s = Session::new(db);
    let r = s
        .execute(&format!(
            "SELECT ALL FROM RECURSIVE parts VIA composition DOWN WHERE parts.pname = '{root_name}'"
        ))
        .unwrap();
    let StatementResult::Recursive(ms) = r else {
        panic!()
    };
    assert_eq!(ms.len(), 1);
    assert!(ms[0].size() > 1);
    assert!(ms[0].depth() <= 3);
}
