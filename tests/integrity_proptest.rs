//! Property test: under *any* sequence of DML operations the storage engine
//! preserves the §3.1 guarantee — "there are no dangling references" — and
//! keeps its secondary indexes exact.

use mad::model::{AtomId, AttrType, Cardinality, SchemaBuilder, Value};
use mad::storage::{Database, IndexKind};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    InsertState(i64),
    InsertArea(i64),
    Connect(usize, usize),
    Disconnect(usize, usize),
    DeleteState(usize),
    DeleteArea(usize),
    Update(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..100).prop_map(Op::InsertState),
        (0i64..100).prop_map(Op::InsertArea),
        (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Connect(a, b)),
        (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Disconnect(a, b)),
        (0usize..32).prop_map(Op::DeleteState),
        (0usize..32).prop_map(Op::DeleteArea),
        (0usize..32, 0i64..100).prop_map(|(i, v)| Op::Update(i, v)),
    ]
}

fn fresh_db() -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("state", &[("v", AttrType::Int)])
        .atom_type("area", &[("w", AttrType::Int)])
        .link_type_card(
            "state-area",
            "state",
            Cardinality::MANY,
            "area",
            Cardinality::range(0, Some(3)),
        )
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state").unwrap();
    db.create_index(state, "v", IndexKind::Ordered).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn referential_integrity_under_random_dml(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut db = fresh_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let mut states: Vec<AtomId> = Vec::new();
        let mut areas: Vec<AtomId> = Vec::new();
        for op in ops {
            match op {
                Op::InsertState(v) => {
                    states.push(db.insert_atom(state, vec![Value::Int(v)]).unwrap());
                }
                Op::InsertArea(w) => {
                    areas.push(db.insert_atom(area, vec![Value::Int(w)]).unwrap());
                }
                Op::Connect(i, j) => {
                    if !states.is_empty() && !areas.is_empty() {
                        let s = states[i % states.len()];
                        let a = areas[j % areas.len()];
                        if db.atom_exists(s) && db.atom_exists(a) {
                            // may fail the max-3 cardinality — that is fine,
                            // it must never corrupt state
                            let _ = db.connect(sa, s, a);
                        }
                    }
                }
                Op::Disconnect(i, j) => {
                    if !states.is_empty() && !areas.is_empty() {
                        let s = states[i % states.len()];
                        let a = areas[j % areas.len()];
                        let _ = db.disconnect(sa, s, a);
                    }
                }
                Op::DeleteState(i) => {
                    if !states.is_empty() {
                        let s = states[i % states.len()];
                        if db.atom_exists(s) {
                            db.delete_atom(s).unwrap();
                        }
                    }
                }
                Op::DeleteArea(i) => {
                    if !areas.is_empty() {
                        let a = areas[i % areas.len()];
                        if db.atom_exists(a) {
                            db.delete_atom(a).unwrap();
                        }
                    }
                }
                Op::Update(i, v) => {
                    if !states.is_empty() {
                        let s = states[i % states.len()];
                        if db.atom_exists(s) {
                            db.update_attr(s, 0, Value::Int(v)).unwrap();
                        }
                    }
                }
            }
            // invariant 1: no dangling references, ever
            let problems = db.audit_referential_integrity();
            prop_assert!(problems.is_empty(), "{problems:?}");
        }
        // invariant 2: the index is exact — lookup(v) returns precisely the
        // live atoms whose attribute equals v
        for v in 0..100i64 {
            let via_index: Vec<AtomId> =
                db.lookup_eq(state, 0, &Value::Int(v)).unwrap().to_vec();
            let mut via_scan: Vec<AtomId> = db
                .atoms_of(state)
                .filter(|(_, t)| t[0] == Value::Int(v))
                .map(|(id, _)| id)
                .collect();
            via_scan.sort_unstable();
            prop_assert_eq!(via_index, via_scan);
        }
        // invariant 3: cardinality bound was honoured (≤ 3 states per area)
        for (a, _) in db.atoms_of(area) {
            prop_assert!(db.link_store(sa).degree_bwd(a) <= 3);
        }
    }

    /// Snapshot round-trips preserve atoms, links and indexes exactly.
    #[test]
    fn snapshot_roundtrip(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut db = fresh_db();
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        let sa = db.schema().link_type_id("state-area").unwrap();
        let mut states: Vec<AtomId> = Vec::new();
        let mut areas: Vec<AtomId> = Vec::new();
        for op in ops {
            match op {
                Op::InsertState(v) => {
                    states.push(db.insert_atom(state, vec![Value::Int(v)]).unwrap())
                }
                Op::InsertArea(w) => {
                    areas.push(db.insert_atom(area, vec![Value::Int(w)]).unwrap())
                }
                Op::Connect(i, j) if !states.is_empty() && !areas.is_empty() => {
                    let s = states[i % states.len()];
                    let a = areas[j % areas.len()];
                    if db.atom_exists(s) && db.atom_exists(a) {
                        let _ = db.connect(sa, s, a);
                    }
                }
                Op::DeleteState(i) if !states.is_empty() => {
                    let s = states[i % states.len()];
                    if db.atom_exists(s) {
                        db.delete_atom(s).unwrap();
                    }
                }
                _ => {}
            }
        }
        let snap = mad::storage::DatabaseSnapshot::capture(&db);
        let restored = snap.restore().unwrap();
        prop_assert_eq!(restored.total_atoms(), db.total_atoms());
        prop_assert_eq!(restored.total_links(), db.total_links());
        // identical atom ids and tuples
        for (id, tuple) in db.atoms_of(state) {
            prop_assert_eq!(restored.atom(id).unwrap(), tuple);
        }
        // identical links
        let orig: Vec<(AtomId, AtomId)> = db.links_of(sa).collect();
        let rest: Vec<(AtomId, AtomId)> = restored.links_of(sa).collect();
        prop_assert_eq!(orig, rest);
    }
}
