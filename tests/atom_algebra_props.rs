//! Property tests for the atom-type algebra (Def. 4 / Theorem 1): on flat
//! data, every operation must **degenerate to the relational algebra** —
//! the paper's "these formal specifications will contain the relational
//! model … as degeneration". For each random tuple set we execute the MAD
//! op and its relational counterpart and compare value-level results; plus
//! the classical set laws.

use mad::algebra::atom_ops::{self, AtomPred};
use mad::algebra::qual::CmpOp;
use mad::model::{AtomTypeId, AttrType, SchemaBuilder, Value};
use mad::relational::algebra as rel;
use mad::relational::Relation;
use mad::storage::Database;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a MAD database with one flat atom type and the matching relation.
fn make_both(rows: &[(i64, i64)]) -> (Database, AtomTypeId, Relation) {
    let schema = SchemaBuilder::new()
        .atom_type("item", &[("k", AttrType::Int), ("v", AttrType::Int)])
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let item = db.schema().atom_type_id("item").unwrap();
    let mut r = Relation::with_attrs("item", &[("k", AttrType::Int), ("v", AttrType::Int)]);
    for (k, v) in rows {
        db.insert_atom(item, vec![Value::Int(*k), Value::Int(*v)])
            .unwrap();
        r.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
    }
    (db, item, r)
}

/// Value-level tuple set of a MAD atom type (ignoring identities), for
/// comparison with a relation.
fn tuple_set(db: &Database, ty: AtomTypeId) -> BTreeSet<Vec<Value>> {
    db.atoms_of(ty).map(|(_, t)| t.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// σ degenerates to relational selection.
    #[test]
    fn sigma_degenerates(rows in prop::collection::vec((0i64..20, 0i64..20), 0..40),
                         threshold in 0i64..20) {
        let (mut db, item, r) = make_both(&rows);
        let mad_res = atom_ops::restrict(
            &mut db, item, &AtomPred::cmp(1, CmpOp::Lt, threshold), None,
        ).unwrap();
        let rel_res = rel::select(&r, &rel::Pred::cmp("v", rel::Cmp::Lt, threshold)).unwrap();
        // note: σ keeps duplicates-by-value apart as distinct atoms, while
        // the relation is a set; compare as value sets
        prop_assert_eq!(tuple_set(&db, mad_res), rel_res.tuples);
    }

    /// π degenerates to relational projection (with duplicate elimination).
    #[test]
    fn pi_degenerates(rows in prop::collection::vec((0i64..10, 0i64..5), 0..40)) {
        let (mut db, item, r) = make_both(&rows);
        let mad_res = atom_ops::project(&mut db, item, &["v"], None).unwrap();
        let rel_res = rel::project(&r, &["v"]).unwrap();
        prop_assert_eq!(tuple_set(&db, mad_res), rel_res.tuples);
    }

    /// ω/δ degenerate to relational ∪/−, and the set laws hold:
    /// A∪A = A, A−A = ∅, (A−B)∪(A∩B) = A.
    #[test]
    fn omega_delta_set_laws(rows in prop::collection::vec((0i64..10, 0i64..10), 0..30),
                            threshold in 0i64..10) {
        let (mut db, item, r) = make_both(&rows);
        let low = atom_ops::restrict(&mut db, item, &AtomPred::cmp(1, CmpOp::Lt, threshold), None).unwrap();
        let high = atom_ops::restrict(&mut db, item, &AtomPred::cmp(1, CmpOp::Ge, threshold), None).unwrap();
        // union of the parts rebuilds the whole (as value sets)
        let u = atom_ops::union(&mut db, low, high, None).unwrap();
        prop_assert_eq!(tuple_set(&db, u), r.tuples.clone());
        // self-union idempotent
        let uu = atom_ops::union(&mut db, item, item, None).unwrap();
        prop_assert_eq!(tuple_set(&db, uu), r.tuples.clone());
        // self-difference empty
        let dd = atom_ops::difference(&mut db, item, item, None).unwrap();
        prop_assert_eq!(db.atom_count(dd), 0);
        // difference degenerates
        let d = atom_ops::difference(&mut db, item, low, None).unwrap();
        let mut rel_low = rel::select(&r, &rel::Pred::cmp("v", rel::Cmp::Lt, threshold)).unwrap();
        rel_low.schema = r.schema.clone(); // align names for ∪-compatibility
        let rel_d = rel::difference(&r, &rel_low).unwrap();
        prop_assert_eq!(tuple_set(&db, d), rel_d.tuples);
        // intersection via double difference degenerates to ∩
        let i = atom_ops::intersection(&mut db, item, low, None).unwrap();
        let rel_i = rel::intersect(&r, &rel_low).unwrap();
        prop_assert_eq!(tuple_set(&db, i), rel_i.tuples);
    }

    /// × degenerates to the relational product (arity and value sets).
    #[test]
    fn product_degenerates(rows_a in prop::collection::vec((0i64..6, 0i64..6), 0..12),
                           rows_b in prop::collection::vec(0i64..6, 0..12)) {
        let schema = SchemaBuilder::new()
            .atom_type("a", &[("k", AttrType::Int), ("v", AttrType::Int)])
            .atom_type("b", &[("w", AttrType::Int)])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let a = db.schema().atom_type_id("a").unwrap();
        let b = db.schema().atom_type_id("b").unwrap();
        let mut ra = Relation::with_attrs("a", &[("k", AttrType::Int), ("v", AttrType::Int)]);
        let mut rb = Relation::with_attrs("b", &[("w", AttrType::Int)]);
        for (k, v) in &rows_a {
            db.insert_atom(a, vec![Value::Int(*k), Value::Int(*v)]).unwrap();
            ra.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        for w in &rows_b {
            db.insert_atom(b, vec![Value::Int(*w)]).unwrap();
            rb.insert(vec![Value::Int(*w)]).unwrap();
        }
        let x = atom_ops::product(&mut db, a, b, None).unwrap();
        let rx = rel::product(&ra, &rb).unwrap();
        prop_assert_eq!(tuple_set(&db, x), rx.tuples);
        prop_assert_eq!(db.schema().atom_type(x).arity(), 3);
    }

    /// σ commutes: σ_p(σ_q(A)) has the same value set as σ_q(σ_p(A)).
    #[test]
    fn sigma_commutes(rows in prop::collection::vec((0i64..10, 0i64..10), 0..30),
                      p in 0i64..10, q in 0i64..10) {
        let (mut db, item, _) = make_both(&rows);
        let pq = {
            let s1 = atom_ops::restrict(&mut db, item, &AtomPred::cmp(0, CmpOp::Lt, p), None).unwrap();
            atom_ops::restrict(&mut db, s1, &AtomPred::cmp(1, CmpOp::Ge, q), None).unwrap()
        };
        let qp = {
            let s1 = atom_ops::restrict(&mut db, item, &AtomPred::cmp(1, CmpOp::Ge, q), None).unwrap();
            atom_ops::restrict(&mut db, s1, &AtomPred::cmp(0, CmpOp::Lt, p), None).unwrap()
        };
        prop_assert_eq!(tuple_set(&db, pq), tuple_set(&db, qp));
    }

    /// π ∘ σ ≡ σ ∘ π when the restriction only touches kept attributes.
    #[test]
    fn pi_sigma_commute(rows in prop::collection::vec((0i64..10, 0i64..10), 0..30),
                        threshold in 0i64..10) {
        let (mut db, item, _) = make_both(&rows);
        let sigma_pi = {
            let s = atom_ops::restrict(&mut db, item, &AtomPred::cmp(1, CmpOp::Lt, threshold), None).unwrap();
            atom_ops::project(&mut db, s, &["v"], None).unwrap()
        };
        let pi_sigma = {
            let p = atom_ops::project(&mut db, item, &["v"], None).unwrap();
            atom_ops::restrict(&mut db, p, &AtomPred::cmp(0, CmpOp::Lt, threshold), None).unwrap()
        };
        prop_assert_eq!(tuple_set(&db, sigma_pi), tuple_set(&db, pi_sigma));
    }
}
