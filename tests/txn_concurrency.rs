//! The concurrent-serving smoke test of the transaction subsystem
//! (acceptance: ≥2 writer + ≥2 reader threads over one `DbHandle`).
//!
//! * readers always observe a consistent committed snapshot — never a
//!   partial write-set (every committed group is whole, referential
//!   integrity holds, a pinned snapshot is immutable);
//! * committed writes become visible to transactions begun afterwards;
//! * a forced write-write conflict aborts **exactly one** of the two
//!   transactions (first-committer-wins).

use mad::model::{AtomId, Value};
use mad::mql::Session;
use mad::txn::{DbHandle, Transaction};
use mad::workload::{mixed_database, run_mixed, MixedParams};

#[test]
fn two_writers_two_readers_over_one_handle() {
    let handle = DbHandle::new(mixed_database().unwrap());
    let params = MixedParams {
        readers: 2,
        writers: 2,
        txns_per_writer: 20,
        areas_per_state: 4,
        seed: 1,
    };
    let stats = run_mixed(&handle, &params).unwrap();
    assert_eq!(stats.commits, 40, "every writer transaction eventually commits");
    assert_eq!(
        stats.inconsistencies, 0,
        "a reader observed a partial write-set or an unstable snapshot"
    );
    assert!(stats.reads >= 2, "each reader derived at least once");
    // the contended counter proves no lost updates slipped past validation
    let db = handle.committed();
    let state = db.schema().atom_type_id("state").unwrap();
    assert_eq!(
        db.atom_value(AtomId::new(state, 0), 1).unwrap(),
        &Value::Float(40.0)
    );
    assert!(db.audit_referential_integrity().is_empty());
}

#[test]
fn committed_writes_visible_to_later_transactions() {
    let handle = DbHandle::new(mixed_database().unwrap());
    let db = handle.committed();
    let state = db.schema().atom_type_id("state").unwrap();

    // a transaction begun BEFORE the commit must not see the write…
    let early = Transaction::begin(&handle);
    let mut writer = Transaction::begin(&handle);
    let rj = writer
        .insert_atom(state, vec![Value::from("RJ"), Value::from(1.0)])
        .unwrap();
    let info = writer.commit().unwrap();
    let rj = info.resolve(rj);
    assert!(!early.db().atom_exists(rj), "begin snapshot must stay frozen");
    early.abort();

    // …while one begun AFTER the commit sees it in full
    let late = Transaction::begin(&handle);
    assert!(late.db().atom_exists(rj));
    assert_eq!(late.db().atom(rj).unwrap()[0], Value::from("RJ"));
    late.abort();
}

#[test]
fn forced_conflict_aborts_exactly_one() {
    let handle = DbHandle::new(mixed_database().unwrap());
    let state = handle.committed().schema().atom_type_id("state").unwrap();
    let contended = AtomId::new(state, 0);

    // both transactions overlap in lifetime and write the same atom, from
    // two threads, committing concurrently: exactly one must survive
    let barrier = std::sync::Barrier::new(2);
    let outcomes: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let handle = handle.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut t = Transaction::begin(&handle);
                    t.update_attr(contended, 1, Value::from((i + 1) as f64)).unwrap();
                    barrier.wait(); // both hold open overlapping writes
                    t.commit().is_ok()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let committed = outcomes.iter().filter(|ok| **ok).count();
    assert_eq!(committed, 1, "exactly one of two conflicting transactions commits");
    let v = handle.committed().atom_value(contended, 1).unwrap().clone();
    assert!(
        v == Value::Float(1.0) || v == Value::Float(2.0),
        "the surviving write is one of the two, whole: {v:?}"
    );
}

#[test]
fn concurrent_mql_sessions_serve_one_handle() {
    // multi-session serving at the MQL level: one session per thread, all
    // over one shared handle; writers use BEGIN/COMMIT with retry, readers
    // assert group atomicity through SELECT
    let handle = DbHandle::new(mixed_database().unwrap());
    let writers = 2;
    let per_writer = 8;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let handle = handle.clone();
            scope.spawn(move || {
                let mut s = Session::shared(handle);
                for i in 0..per_writer {
                    let script = format!(
                        "BEGIN;\n\
                         INSERT ATOM state (sname = 'w{w}s{i}', hectare = 1.0);\n\
                         INSERT ATOM area (aid = {aid});\n\
                         CONNECT state[sname='w{w}s{i}'] TO area[aid={aid}] VIA state-area;\n\
                         COMMIT;",
                        aid = w * 1000 + i
                    );
                    loop {
                        match s.execute_script(&script) {
                            Ok(_) => break,
                            Err(e) if e.is_conflict() => {
                                if s.in_transaction() {
                                    s.abort().unwrap();
                                }
                            }
                            Err(e) => panic!("writer session failed: {e}"),
                        }
                    }
                }
            });
        }
        for _ in 0..2 {
            let handle = handle.clone();
            scope.spawn(move || {
                let mut s = Session::shared(handle);
                for _ in 0..20 {
                    let r = s.execute("SELECT ALL FROM state-area").unwrap();
                    let mad::mql::StatementResult::Molecules(mt) = r else {
                        panic!("expected molecules");
                    };
                    for m in &mt.molecules {
                        let areas = m.atoms_at(1).len();
                        assert!(
                            areas == 0 && m.root.slot == 0 || areas == 1,
                            "partial group observed: {areas} areas"
                        );
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    let db = handle.committed();
    let state = db.schema().atom_type_id("state").unwrap();
    let sa = db.schema().link_type_id("state-area").unwrap();
    assert_eq!(db.atom_count(state), 1 + writers * per_writer);
    assert_eq!(db.link_count(sa), writers * per_writer);
    assert!(db.audit_referential_integrity().is_empty());
}

#[test]
fn pinned_commit_log_does_not_inflate_commit_latency() {
    // Regression for the pruning bugfix: an old open snapshot pins the
    // commit log, but validation is a per-key hash probe and pruning is
    // off the commit critical path — so a 10k-record pinned log must
    // not slow commits down. The ratio bound is deliberately generous
    // (a reintroduced per-commit log scan would blow past it by an
    // order of magnitude; honest timing noise will not).
    use std::time::Instant;

    let commit_one = |handle: &DbHandle, v: f64| {
        let db = handle.committed();
        let state = db.schema().atom_type_id("state").unwrap();
        let mut t = Transaction::begin(handle);
        t.update_attr(AtomId::new(state, 0), 1, Value::Float(v)).unwrap();
        t.commit().unwrap();
    };
    let time_commits = |handle: &DbHandle, n: usize| {
        let start = Instant::now();
        for i in 0..n {
            commit_one(handle, i as f64);
        }
        start.elapsed()
    };

    const SAMPLE: usize = 200;
    // baseline: commits against an empty, unpinned log
    let fresh = DbHandle::new(mixed_database().unwrap());
    time_commits(&fresh, SAMPLE); // warm-up
    let baseline = time_commits(&fresh, SAMPLE);

    // pinned: an open transaction holds its begin registration, so the
    // log accumulates 10k records that cannot prune
    let pinned = DbHandle::new(mixed_database().unwrap());
    let pin = Transaction::begin(&pinned);
    for i in 0..10_000 {
        commit_one(&pinned, i as f64);
    }
    assert!(
        pinned.commit_log_len() >= 10_000,
        "the pin did not hold: log length {}",
        pinned.commit_log_len()
    );
    let loaded = time_commits(&pinned, SAMPLE);
    drop(pin);

    let ratio = loaded.as_secs_f64() / baseline.as_secs_f64().max(1e-6);
    assert!(
        ratio < 15.0,
        "commits over a 10k-record pinned log are {ratio:.1}x slower than over an \
         empty log ({loaded:?} vs {baseline:?} for {SAMPLE} commits)"
    );
}
