//! Integration tests of the TCP front-end over real loopback sockets:
//! concurrent writers + readers, forced first-committer-wins conflicts
//! across the wire, transactions spanning round-trips, and the
//! disconnect-mid-transaction registry drain.

use mad::model::MadError;
use mad::net::{Client, Server};
use mad::txn::DbHandle;
use mad::workload::mixed_database;
use std::time::{Duration, Instant};

fn serve_mixed() -> Server {
    Server::serve(DbHandle::new(mixed_database().unwrap()), "127.0.0.1:0").unwrap()
}

#[test]
fn two_writers_two_readers_over_real_sockets() {
    let server = serve_mixed();
    let addr = server.local_addr();
    let writers = 2usize;
    let per_writer = 6usize;
    let areas = 2usize;
    std::thread::scope(|scope| {
        for w in 0..writers {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..per_writer {
                    loop {
                        client.execute("BEGIN").unwrap();
                        client
                            .execute(&format!(
                                "INSERT ATOM state (sname = 'w{w}-{i}', hectare = 1.0)"
                            ))
                            .unwrap();
                        for j in 0..areas {
                            let aid = (w * per_writer + i) * areas + j;
                            client
                                .execute(&format!("INSERT ATOM area (aid = {aid})"))
                                .unwrap();
                            client
                                .execute(&format!(
                                    "CONNECT state[sname='w{w}-{i}'] TO area[aid={aid}] \
                                     VIA state-area"
                                ))
                                .unwrap();
                        }
                        // the contended write forces real conflicts
                        client
                            .execute("UPDATE state[sname='contended'] SET hectare = 1.0")
                            .unwrap();
                        match client.execute("COMMIT") {
                            Ok(ack) => {
                                assert!(ack.contains("at sequence"), "got: {ack}");
                                break;
                            }
                            Err(e) if e.is_conflict() => continue, // retry the group
                            Err(e) => panic!("writer {w} failed non-retryably: {e}"),
                        }
                    }
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..20 {
                    let text = client.execute("SELECT ALL FROM state-area").unwrap();
                    assert!(text.contains("molecule(s)"), "got: {text}");
                }
            });
        }
    });
    // every group arrived whole
    let db = server.handle().committed();
    let state = db.schema().atom_type_id("state").unwrap();
    let area = db.schema().atom_type_id("area").unwrap();
    let sa = db.schema().link_type_id("state-area").unwrap();
    assert_eq!(db.atom_count(state), 1 + writers * per_writer);
    assert_eq!(db.atom_count(area), writers * per_writer * areas);
    assert_eq!(db.link_count(sa), writers * per_writer * areas);
    assert!(db.audit_referential_integrity().is_empty());
    server.shutdown();
}

#[test]
fn forced_conflict_aborts_exactly_one_client() {
    let server = serve_mixed();
    let addr = server.local_addr();
    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    c1.execute("BEGIN").unwrap();
    c2.execute("BEGIN").unwrap();
    c1.execute("UPDATE state[sname='contended'] SET hectare = 1.0").unwrap();
    c2.execute("UPDATE state[sname='contended'] SET hectare = 2.0").unwrap();
    c1.execute("COMMIT").unwrap();
    let err = c2.execute("COMMIT").unwrap_err();
    assert!(err.is_conflict(), "conflict flag lost across the wire: {err:?}");
    assert!(matches!(err, MadError::TxnConflict { .. }), "got {err:?}");
    // the losing session was aborted server-side and keeps serving: the
    // first committer's value is visible, and a fresh transaction works
    let text = c2
        .execute("SELECT ALL FROM state WHERE state.hectare = 1.0")
        .unwrap();
    assert!(text.contains("1 molecule(s)"), "got: {text}");
    c2.execute("BEGIN").unwrap();
    c2.execute("UPDATE state[sname='contended'] SET hectare = 3.0").unwrap();
    c2.execute("COMMIT").unwrap();
    server.shutdown();
}

#[test]
fn transaction_spans_round_trips_with_isolation() {
    let server = serve_mixed();
    let addr = server.local_addr();
    let mut writer = Client::connect(addr).unwrap();
    let mut observer = Client::connect(addr).unwrap();
    writer.execute("BEGIN").unwrap();
    writer
        .execute("INSERT ATOM state (sname = 'open', hectare = 5.0)")
        .unwrap();
    // the writer reads its own uncommitted insert…
    let text = writer
        .execute("SELECT ALL FROM state WHERE state.sname = 'open'")
        .unwrap();
    assert!(text.contains("1 molecule(s)"), "got: {text}");
    // …the observer (a different connection = different session) does not
    let text = observer
        .execute("SELECT ALL FROM state WHERE state.sname = 'open'")
        .unwrap();
    assert!(text.contains("0 molecule(s)"), "uncommitted overlay leaked: {text}");
    writer.execute("COMMIT").unwrap();
    let text = observer
        .execute("SELECT ALL FROM state WHERE state.sname = 'open'")
        .unwrap();
    assert!(text.contains("1 molecule(s)"), "commit not visible: {text}");
    server.shutdown();
}

#[test]
fn disconnect_mid_transaction_drains_the_commit_log() {
    // the acceptance regression: a client that vanishes mid-BEGIN must not
    // pin the commit log — the server-side session drop aborts the
    // transaction and unregisters it
    let server = serve_mixed();
    let addr = server.local_addr();
    let handle = server.handle().clone();

    let mut ghost = Client::connect(addr).unwrap();
    ghost.execute("BEGIN").unwrap();
    ghost
        .execute("UPDATE state[sname='contended'] SET hectare = 9.0")
        .unwrap();
    // commits land while the ghost's transaction pins the log (updates of
    // a pre-existing atom, so each record carries a write key)
    let mut worker = Client::connect(addr).unwrap();
    for i in 0..3 {
        worker
            .execute(&format!("UPDATE state[sname='contended'] SET hectare = {i}.0"))
            .unwrap();
    }
    assert_eq!(handle.commit_log_len(), 3, "the open transaction pins the log");
    assert_eq!(handle.conflict_index_len(), 1, "one contended key, newest seq wins");

    // the client vanishes without COMMIT/ABORT
    drop(ghost);

    // the server notices the disconnect and the registry drains; the next
    // commit prunes the log back to empty
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        worker
            .execute("UPDATE state[sname='contended'] SET hectare = 0.5")
            .unwrap();
        if handle.commit_log_len() == 0 && handle.conflict_index_len() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned connection still pins the commit log: len = {}, index = {}",
            handle.commit_log_len(),
            handle.conflict_index_len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}
