//! Property tests for the transaction overlay (snapshot isolation).
//!
//! For *any* interleaving of two transactions' random DML sequences:
//!
//! 1. **overlay = direct**: derivation inside a transaction (through the
//!    write overlay) equals derivation on a fresh database where that
//!    transaction's ops were applied directly — and the full state views
//!    agree, byte for byte, at every step;
//! 2. **isolation**: neither transaction's view is perturbed by the other's
//!    interleaved ops;
//! 3. **no trace**: an aborted transaction leaves the committed state
//!    byte-identical, while the committed one publishes exactly its
//!    direct-application image.

use mad::algebra::derive::{derive_molecules, DeriveOptions, Strategy as DeriveStrategy};
use mad::algebra::structure::path;
use mad::model::{AtomId, AttrType, SchemaBuilder, Value};
use mad::storage::{Database, DatabaseSnapshot};
use mad::txn::{DbHandle, Transaction};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    InsertState(i64),
    InsertArea(i64),
    Connect(usize, usize),
    Disconnect(usize, usize),
    DeleteState(usize),
    DeleteArea(usize),
    Update(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50).prop_map(Op::InsertState),
        (0i64..50).prop_map(Op::InsertArea),
        (0usize..16, 0usize..16).prop_map(|(a, b)| Op::Connect(a, b)),
        (0usize..16, 0usize..16).prop_map(|(a, b)| Op::Disconnect(a, b)),
        (0usize..16).prop_map(Op::DeleteState),
        (0usize..16).prop_map(Op::DeleteArea),
        (0usize..16, 0i64..50).prop_map(|(i, v)| Op::Update(i, v)),
    ]
}

fn base_db() -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("state", &[("v", AttrType::Int)])
        .atom_type("area", &[("w", AttrType::Int)])
        .link_type("state-area", "state", "area")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state").unwrap();
    let area = db.schema().atom_type_id("area").unwrap();
    let sa = db.schema().link_type_id("state-area").unwrap();
    // a little committed substrate so deletes/updates have targets
    let mut states = Vec::new();
    let mut areas = Vec::new();
    for i in 0..4i64 {
        states.push(db.insert_atom(state, vec![Value::Int(i)]).unwrap());
        areas.push(db.insert_atom(area, vec![Value::Int(i)]).unwrap());
    }
    for (s, a) in states.iter().zip(&areas) {
        db.connect(sa, *s, *a).unwrap();
    }
    db
}

/// A mutation target that keeps a roster of known atom ids so random ops
/// can address them. Applied identically to a `Transaction` overlay and to
/// a plain `Database`, the two must stay indistinguishable.
struct Roster {
    states: Vec<AtomId>,
    areas: Vec<AtomId>,
}

impl Roster {
    fn seeded(db: &Database) -> Self {
        let state = db.schema().atom_type_id("state").unwrap();
        let area = db.schema().atom_type_id("area").unwrap();
        Roster {
            states: db.atom_ids_of(state),
            areas: db.atom_ids_of(area),
        }
    }
}

/// Apply one op through the overlay and directly; results must agree.
fn apply_both(
    txn: &mut Transaction,
    direct: &mut Database,
    roster: &mut Roster,
    op: &Op,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    let state = direct.schema().atom_type_id("state").unwrap();
    let area = direct.schema().atom_type_id("area").unwrap();
    let sa = direct.schema().link_type_id("state-area").unwrap();
    match op {
        Op::InsertState(v) => {
            let a = txn.insert_atom(state, vec![Value::Int(*v)]).unwrap();
            let b = direct.insert_atom(state, vec![Value::Int(*v)]).unwrap();
            prop_assert_eq!(a, b, "overlay and direct slot allocation diverged");
            roster.states.push(a);
        }
        Op::InsertArea(v) => {
            let a = txn.insert_atom(area, vec![Value::Int(*v)]).unwrap();
            let b = direct.insert_atom(area, vec![Value::Int(*v)]).unwrap();
            prop_assert_eq!(a, b);
            roster.areas.push(a);
        }
        Op::Connect(i, j) => {
            if roster.states.is_empty() || roster.areas.is_empty() {
                return Ok(());
            }
            let s = roster.states[i % roster.states.len()];
            let a = roster.areas[j % roster.areas.len()];
            let r1 = txn.connect(sa, s, a);
            let r2 = direct.connect(sa, s, a);
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
            if let (Ok(x), Ok(y)) = (r1, r2) {
                prop_assert_eq!(x, y);
            }
        }
        Op::Disconnect(i, j) => {
            if roster.states.is_empty() || roster.areas.is_empty() {
                return Ok(());
            }
            let s = roster.states[i % roster.states.len()];
            let a = roster.areas[j % roster.areas.len()];
            let r1 = txn.disconnect(sa, s, a);
            let r2 = direct.disconnect(sa, s, a);
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
            if let (Ok(x), Ok(y)) = (r1, r2) {
                prop_assert_eq!(x, y);
            }
        }
        Op::DeleteState(i) => {
            if roster.states.is_empty() {
                return Ok(());
            }
            let s = roster.states[i % roster.states.len()];
            let r1 = txn.delete_atom(s);
            let r2 = direct.delete_atom(s);
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
            if let (Ok(x), Ok(y)) = (r1, r2) {
                prop_assert_eq!(x, y, "cascade counts diverged");
            }
        }
        Op::DeleteArea(i) => {
            if roster.areas.is_empty() {
                return Ok(());
            }
            let a = roster.areas[i % roster.areas.len()];
            let r1 = txn.delete_atom(a);
            let r2 = direct.delete_atom(a);
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
        }
        Op::Update(i, v) => {
            if roster.states.is_empty() {
                return Ok(());
            }
            let s = roster.states[i % roster.states.len()];
            let r1 = txn.update_attr(s, 0, Value::Int(*v));
            let r2 = direct.update_attr(s, 0, Value::Int(*v));
            prop_assert_eq!(r1.is_ok(), r2.is_ok());
        }
    }
    Ok(())
}

fn derive_all(db: &Database) -> Vec<mad::algebra::molecule::Molecule> {
    let md = path(db.schema(), &["state", "area"]).unwrap();
    derive_molecules(db, &md, &DeriveOptions::with_strategy(DeriveStrategy::Bitset)).unwrap()
}

fn snapshot_of(db: &Database) -> String {
    DatabaseSnapshot::capture(db).to_json_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn overlay_view_equals_direct_application(
        ops_a in prop::collection::vec(op_strategy(), 1..40),
        ops_b in prop::collection::vec(op_strategy(), 1..40),
        schedule in prop::collection::vec(any::<bool>(), 1..80),
    ) {
        let base = base_db();
        let handle = DbHandle::new(base.clone());
        let before = snapshot_of(&handle.committed());

        // two transactions with interleaved op application (the schedule
        // picks which transaction steps next), each shadowed by a direct-
        // application reference database forked from the same base
        let mut txn_a = Transaction::begin(&handle);
        let mut txn_b = Transaction::begin(&handle);
        let mut ref_a = base.clone();
        let mut ref_b = base.clone();
        let mut roster_a = Roster::seeded(&base);
        let mut roster_b = Roster::seeded(&base);

        let (mut ia, mut ib) = (0usize, 0usize);
        for pick_a in schedule {
            if pick_a && ia < ops_a.len() {
                apply_both(&mut txn_a, &mut ref_a, &mut roster_a, &ops_a[ia])?;
                ia += 1;
            } else if ib < ops_b.len() {
                apply_both(&mut txn_b, &mut ref_b, &mut roster_b, &ops_b[ib])?;
                ib += 1;
            }
        }

        // 1. the overlay view IS the direct-application state…
        prop_assert_eq!(snapshot_of(txn_a.db()), snapshot_of(&ref_a));
        prop_assert_eq!(snapshot_of(txn_b.db()), snapshot_of(&ref_b));
        // …including through the derivation engine (pushdown + frontiers)
        prop_assert_eq!(derive_all(txn_a.db()), derive_all(&ref_a));
        prop_assert_eq!(derive_all(txn_b.db()), derive_all(&ref_b));
        // 2. nothing leaked between the interleaved transactions, and the
        // committed state never moved
        prop_assert_eq!(snapshot_of(&handle.committed()), before.clone());

        // 3a. the aborted transaction leaves no trace
        txn_b.abort();
        prop_assert_eq!(snapshot_of(&handle.committed()), before);
        // 3b. the committed one publishes exactly its direct image
        txn_a.commit().unwrap();
        prop_assert_eq!(snapshot_of(&handle.committed()), snapshot_of(&ref_a));
        prop_assert!(handle.committed().audit_referential_integrity().is_empty());
    }
}
