//! Integration tests reproducing every in-text example of the paper on the
//! Fig. 1/4 Brazil database, through the public facade API.

use mad::algebra::atom_ops::{self, AtomPred};
use mad::algebra::ops::Engine;
use mad::algebra::qual::{CmpOp, QualExpr};
use mad::algebra::structure::{path, StructureBuilder};
use mad::algebra::{derive_molecules, DeriveOptions, Strategy};
use mad::mql::{Session, StatementResult};
use mad::relational::algebra as rel;
use mad::relational::RelationalImage;
use mad::workload::brazil_database;

/// §3.1: ×(state, edge) = border; all link types of the operands inherited;
/// σ[hectare>1000](border) matches the relational algebra's result.
#[test]
fn e6_border_product_and_restriction() {
    let (db, h) = brazil_database().unwrap();
    let image = RelationalImage::from_database(&db).unwrap();
    let mut db = db;
    let border = atom_ops::product(&mut db, h.state, h.edge, Some("border")).unwrap();
    assert_eq!(
        db.atom_count(border),
        db.atom_count(h.state) * db.atom_count(h.edge)
    );
    // the result atom type carries the attributes of both operands
    let def = db.schema().atom_type(border);
    assert_eq!(def.arity(), 3 + 1);
    // inherited link types exist for both operand sides
    assert!(db.schema().link_types_of(border).len() >= 3);
    // σ[hectare > 1000](border)
    let big = atom_ops::restrict(
        &mut db,
        border,
        &AtomPred::cmp(2, CmpOp::Gt, 1000.0),
        None,
    )
    .unwrap();
    // relational equivalent
    let s = rel::rename(image.atom_relation(h.state), &[("_id", "_sid")]).unwrap();
    let e = rel::rename(image.atom_relation(h.edge), &[("_id", "_eid")]).unwrap();
    let prod = rel::product(&s, &e).unwrap();
    let sel = rel::select(&prod, &rel::Pred::cmp("hectare", rel::Cmp::Gt, 1000.0)).unwrap();
    assert_eq!(db.atom_count(big), sel.len());
}

/// §4 query 1: SELECT ALL FROM mt_state(state-area-edge-point).
#[test]
fn e7_mql_mt_state() {
    let (db, _) = brazil_database().unwrap();
    let mut session = Session::new(db);
    let r = session
        .execute("SELECT ALL FROM mt_state(state-area-edge-point);")
        .unwrap();
    let StatementResult::Molecules(mt) = r else {
        panic!()
    };
    assert_eq!(mt.len(), 10);
    // every molecule carries its full hierarchy
    for m in &mt.molecules {
        assert_eq!(m.atoms_at(1).len(), 1);
        assert_eq!(m.atoms_at(2).len(), 4);
        assert_eq!(m.atoms_at(3).len(), 4);
    }
}

/// §4 query 2: the symmetric `point neighborhood` with WHERE restriction —
/// "this example stresses the flexible and symmetric use of a link type".
#[test]
fn e7_mql_point_neighborhood() {
    let (db, h) = brazil_database().unwrap();
    // pick the name of a point on a shared Paraná edge
    let ep = db.schema().link_type_id("edge-point").unwrap();
    let shared_point = db.link_store(ep).partners_fwd(h.shared_edges[0])[0];
    let pname = db.atom(shared_point).unwrap()[0]
        .as_text()
        .unwrap()
        .to_owned();
    let mut session = Session::new(db);
    let r = session
        .execute(&format!(
            "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.pname = '{pname}'"
        ))
        .unwrap();
    let StatementResult::Molecules(mt) = r else {
        panic!()
    };
    assert_eq!(mt.len(), 1);
    let m = &mt.molecules[0];
    assert!(!m.atoms_at(3).is_empty(), "a state is reached");
    assert!(!m.atoms_at(5).is_empty(), "the Paraná is reached");
}

/// §3.2: Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)).
#[test]
fn e8_intersection_via_double_difference() {
    let (db, _) = brazil_database().unwrap();
    let mut engine = Engine::new(db);
    let md = path(engine.db().schema(), &["state", "area"]).unwrap();
    let mt = engine.define("mt", md).unwrap();
    let a = engine
        .restrict(&mt, &QualExpr::cmp_const(0, 2, CmpOp::Gt, 400.0))
        .unwrap();
    let b = engine
        .restrict(&mt, &QualExpr::cmp_const(0, 2, CmpOp::Le, 800.0))
        .unwrap();
    let psi = engine.intersection(&a, &b, "psi").unwrap();
    // direct intersection for comparison
    let direct = engine
        .restrict(
            &mt,
            &QualExpr::cmp_const(0, 2, CmpOp::Gt, 400.0)
                .and(QualExpr::cmp_const(0, 2, CmpOp::Le, 800.0)),
        )
        .unwrap();
    assert_eq!(psi.len(), direct.len());
    engine.verify_closure(&psi).unwrap();
}

/// Fig. 2: the same database yields totally different molecule types by
/// just specifying different structures — and they share subobjects.
#[test]
fn fig2_dynamic_definition_and_sharing() {
    let (db, _) = brazil_database().unwrap();
    let mt_state_md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
    let pn_md = StructureBuilder::new(db.schema())
        .node("point")
        .node("edge")
        .node("area")
        .node("state")
        .node("net")
        .node("river")
        .edge("point", "edge")
        .edge("edge", "area")
        .edge("area", "state")
        .edge("edge", "net")
        .edge("net", "river")
        .build()
        .unwrap();
    let ms = derive_molecules(&db, &mt_state_md, &DeriveOptions::default()).unwrap();
    let pn = derive_molecules(&db, &pn_md, &DeriveOptions::default()).unwrap();
    assert_eq!(ms.len(), 10);
    assert_eq!(pn.len(), 40);
    // shared subobjects inside mt_state: the Paraná's shared border edges
    // (plus their points) belong to two state molecules... shared edges
    // belong to ONE state each here, but border corner points are shared
    // between neighbouring states:
    let mt = mad::algebra::molecule::MoleculeType {
        name: "mt_state".into(),
        structure: mt_state_md,
        molecules: ms,
    };
    assert!(!mt.shared_atoms().is_empty());
}

/// All three derivation strategies agree on the Brazil database for every
/// structure shape used in the paper.
#[test]
fn strategies_agree_on_brazil() {
    let (db, _) = brazil_database().unwrap();
    let structures = vec![
        path(db.schema(), &["state", "area", "edge", "point"]).unwrap(),
        path(db.schema(), &["river", "net", "edge", "point"]).unwrap(),
        path(db.schema(), &["point", "edge", "area", "state"]).unwrap(),
        path(db.schema(), &["city", "point", "edge"]).unwrap(),
    ];
    for md in structures {
        let a = derive_molecules(&db, &md, &DeriveOptions::with_strategy(Strategy::PerRoot))
            .unwrap();
        let b = derive_molecules(
            &db,
            &md,
            &DeriveOptions::with_strategy(Strategy::LevelAtATime),
        )
        .unwrap();
        let c = derive_molecules(
            &db,
            &md,
            &DeriveOptions::with_strategy(Strategy::Parallel(4)),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
