//! End-to-end durability acceptance tests.
//!
//! * torn-write recovery: truncating the log at **every byte offset** of
//!   the final record must recover cleanly to the previous commit;
//! * kill-at-arbitrary-record-boundary: the workload crash scenario over
//!   many seeds;
//! * MQL sessions over a recovered handle.

use mad::model::Value;
use mad::storage::DatabaseSnapshot;
use mad::txn::{DbHandle, FsyncPolicy, Transaction};
use mad::wal::{active_segment_path, frame_boundaries};
use mad::workload::{run_crash_recovery, CrashParams, MixedParams};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mad-walrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a small durable history: bootstrap + 3 commits.
fn build_history(path: &std::path::Path) -> Vec<String> {
    let db = mad::workload::mixed_database().unwrap();
    let handle = DbHandle::create_durable(db, path, FsyncPolicy::Group).unwrap();
    let state = handle.committed().schema().atom_type_id("state").unwrap();
    let area = handle.committed().schema().atom_type_id("area").unwrap();
    let sa = handle.committed().schema().link_type_id("state-area").unwrap();
    // snapshot after every commit, so any prefix is checkable
    let mut images = vec![DatabaseSnapshot::capture(&handle.committed()).to_json_string()];
    for i in 0..3i64 {
        let mut t = Transaction::begin(&handle);
        let s = t
            .insert_atom(state, vec![Value::from(format!("s{i}")), Value::from(i as f64)])
            .unwrap();
        let a = t.insert_atom(area, vec![Value::from(i)]).unwrap();
        t.connect(sa, s, a).unwrap();
        if i == 2 {
            // make the final record heterogeneous: update + delete too
            t.update_attr(mad::model::AtomId::new(state, 0), 1, Value::from(9.0))
                .unwrap();
        }
        t.commit().unwrap();
        images.push(DatabaseSnapshot::capture(&handle.committed()).to_json_string());
    }
    images
}

#[test]
fn torn_final_record_recovers_to_previous_commit_at_every_byte_offset() {
    let dir = tmpdir("everybyte");
    let path = dir.join("mad.wal");
    let images = build_history(&path);
    // the record bytes live in the active segment (one segment here —
    // the history is far below the rotation threshold); a prefix of them
    // is itself a valid pre-segmentation log, which `open_durable`
    // migrates on the fly
    let full = std::fs::read(active_segment_path(&path).unwrap()).unwrap();
    let boundaries = frame_boundaries(&full);
    assert_eq!(boundaries.len(), 4, "bootstrap + 3 commits");
    let last_start = boundaries[2];
    let last_end = boundaries[3];
    assert_eq!(last_end, full.len());

    let torn = dir.join("torn.wal");
    for cut in last_start..last_end {
        std::fs::write(&torn, &full[..cut]).unwrap();
        let handle = DbHandle::open_durable(&torn, FsyncPolicy::Never)
            .unwrap_or_else(|e| panic!("cut at byte {cut} failed recovery: {e}"));
        let info = handle.recovery_info().unwrap();
        assert_eq!(
            info.commits_replayed, 2,
            "cut at {cut}: the torn third commit must vanish"
        );
        assert_eq!(
            info.truncated_bytes,
            (cut - last_start) as u64,
            "cut at {cut}: exactly the torn bytes are discarded"
        );
        assert_eq!(
            DatabaseSnapshot::capture(&handle.committed()).to_json_string(),
            images[2],
            "cut at {cut}: state must be the second commit exactly"
        );
        drop(handle);
        std::fs::remove_file(&torn).unwrap();
    }
    // and the complete log recovers the full history
    let handle = DbHandle::open_durable(&path, FsyncPolicy::Never).unwrap();
    assert_eq!(
        DatabaseSnapshot::capture(&handle.committed()).to_json_string(),
        images[3]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_byte_in_final_record_is_treated_as_torn() {
    let dir = tmpdir("corrupt");
    let path = dir.join("mad.wal");
    let images = build_history(&path);
    let seg = active_segment_path(&path).unwrap();
    let full = std::fs::read(&seg).unwrap();
    let boundaries = frame_boundaries(&full);
    let last_start = boundaries[2];
    // flip one byte inside the final record's payload
    let mut bad = full.clone();
    bad[last_start + 10] ^= 0xFF;
    std::fs::write(&seg, &bad).unwrap();
    let handle = DbHandle::open_durable(&path, FsyncPolicy::Never).unwrap();
    assert_eq!(handle.recovery_info().unwrap().commits_replayed, 2);
    assert_eq!(
        DatabaseSnapshot::capture(&handle.committed()).to_json_string(),
        images[2]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_scenario_holds_across_seeds_and_policies() {
    // the acceptance scenario: run mixed, kill at a random record
    // boundary (+ torn tail), reopen, verify the recovered state is a
    // consistent commit prefix
    let dir = tmpdir("scenario");
    for (i, fsync) in [FsyncPolicy::Group, FsyncPolicy::PerCommit, FsyncPolicy::Never]
        .into_iter()
        .enumerate()
    {
        for seed in 0..3u64 {
            let path = dir.join(format!("crash-{i}-{seed}.wal"));
            let stats = run_crash_recovery(
                &path,
                &CrashParams {
                    mixed: MixedParams {
                        readers: 1,
                        writers: 3,
                        txns_per_writer: 6,
                        areas_per_state: 2,
                        seed: 1000 + seed,
                    },
                    fsync,
                    tear_tail: true,
                    seed,
                },
            )
            .unwrap();
            assert_eq!(stats.violations, 0, "{fsync:?} seed {seed}: {stats:?}");
            assert_eq!(stats.commits, 18);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mql_sessions_resume_on_recovered_state() {
    let dir = tmpdir("mql");
    let path = dir.join("mad.wal");
    {
        let handle = DbHandle::create_durable(
            mad::workload::mixed_database().unwrap(),
            &path,
            FsyncPolicy::Group,
        )
        .unwrap();
        let mut s = mad::mql::Session::shared(handle);
        s.execute("INSERT ATOM state (sname = 'durable', hectare = 1.0)").unwrap();
        s.execute_script(
            "BEGIN; INSERT ATOM area (aid = 7); \
             CONNECT state[sname='durable'] TO area[aid=7] VIA state-area; COMMIT;",
        )
        .unwrap();
    } // process "dies"
    let handle = DbHandle::open_durable(&path, FsyncPolicy::Group).unwrap();
    let mut s = mad::mql::Session::shared(handle);
    let r = s
        .execute("SELECT ALL FROM state-area WHERE state.sname = 'durable'")
        .unwrap();
    let mad::mql::StatementResult::Molecules(mt) = r else {
        panic!("expected molecules")
    };
    assert_eq!(mt.len(), 1);
    assert_eq!(mt.molecules[0].atoms_at(1).len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
