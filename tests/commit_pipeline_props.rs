//! Property tests for the staged commit pipeline
//! (ARCHITECTURE.md, "The commit pipeline").
//!
//! 1. **oracle equivalence**: for arbitrary begin/commit interleavings,
//!    the sharded+pipelined path publishes the same image, assigns the
//!    same sequences and aborts the same transaction set as the legacy
//!    single-lock oracle (`CommitMode::SingleLock`);
//! 2. **gap-free feed**: a subscriber registered before concurrent
//!    writers start (exactly how a standby attaches) observes the
//!    commit sequence as a strictly consecutive, gap-free run;
//! 3. **never-panic under faults**: fsync failures injected mid-pipeline
//!    surface as clean errors on the committing threads, and recovery
//!    still lands on a consistent prefix covering every acked commit.

use mad::model::{AtomId, AttrType, SchemaBuilder, Value};
use mad::storage::{Database, DatabaseSnapshot};
use mad::txn::{CommitMode, DbHandle, FaultPlan, FsyncPolicy, Transaction};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pre-seeded conflict targets: `KEYS` atoms of one type, updated by key
/// index. Every generated write-set addresses these, so overlap — and
/// with it first-committer-wins — is common.
const KEYS: usize = 6;

fn base_db() -> Database {
    let schema = SchemaBuilder::new()
        .atom_type("state", &[("v", AttrType::Int)])
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    let state = db.schema().atom_type_id("state").unwrap();
    for i in 0..KEYS as i64 {
        db.insert_atom(state, vec![Value::Int(i)]).unwrap();
    }
    db
}

fn key_atom(db: &Database, key: usize) -> AtomId {
    let state = db.schema().atom_type_id("state").unwrap();
    AtomId::new(state, u32::try_from(key % KEYS).unwrap())
}

fn snapshot_of(db: &Database) -> String {
    DatabaseSnapshot::capture(db).to_json_string()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mad-pipeprops-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One generated transaction: which conflict keys it writes, with what
/// value.
#[derive(Clone, Debug)]
struct GenTxn {
    keys: Vec<usize>,
    val: i64,
}

fn txn_strategy() -> impl Strategy<Value = GenTxn> {
    (prop::collection::vec(0..KEYS, 1..4), 0i64..1000)
        .prop_map(|(keys, val)| GenTxn { keys, val })
}

/// What one transaction's commit came back as.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    Committed(u64),
    Conflict,
}

/// Normalize a raw index stream into a begin/commit event list: the
/// first occurrence of a transaction index begins it, the second
/// commits it; missing events are appended at the end in index order.
/// `(index, is_commit)` — every transaction begins before it commits.
fn event_list(n: usize, raw: &[usize]) -> Vec<(usize, bool)> {
    let mut seen = vec![0usize; n];
    let mut events = Vec::with_capacity(2 * n);
    for &r in raw {
        let i = r % n;
        if seen[i] < 2 {
            events.push((i, seen[i] == 1));
            seen[i] += 1;
        }
    }
    for (i, &s) in seen.iter().enumerate() {
        if s == 0 {
            events.push((i, false));
        }
    }
    for (i, &s) in seen.iter().enumerate() {
        if s < 2 {
            events.push((i, true));
        }
    }
    events
}

/// Drive the generated transactions through one interleaving under the
/// given commit mode; return per-transaction outcomes, the final image
/// and the final commit sequence.
fn run_mode(
    mode: CommitMode,
    txns: &[GenTxn],
    events: &[(usize, bool)],
) -> (Vec<Outcome>, String, u64) {
    let handle = DbHandle::new(base_db());
    handle.set_commit_mode(mode);
    let mut open: HashMap<usize, Transaction> = HashMap::new();
    let mut outcomes: Vec<Option<Outcome>> = vec![None; txns.len()];
    for &(i, is_commit) in events {
        if !is_commit {
            let mut t = Transaction::begin(&handle);
            for &k in &txns[i].keys {
                t.update_attr(key_atom(&handle.committed(), k), 0, Value::Int(txns[i].val))
                    .unwrap();
            }
            open.insert(i, t);
        } else {
            let t = open.remove(&i).expect("event list begins before committing");
            outcomes[i] = Some(match t.commit() {
                Ok(info) => Outcome::Committed(info.seq),
                Err(e) if e.is_conflict() => Outcome::Conflict,
                Err(e) => panic!("unexpected commit error: {e}"),
            });
        }
    }
    let outcomes = outcomes.into_iter().map(|o| o.unwrap()).collect();
    (outcomes, snapshot_of(&handle.committed()), handle.commit_seq())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipelined path and the single-lock oracle are observationally
    /// identical on every interleaving: same commit/abort decisions,
    /// same sequence assignment, same published image.
    #[test]
    fn pipelined_commit_matches_the_single_lock_oracle(
        txns in prop::collection::vec(txn_strategy(), 2..6),
        raw in prop::collection::vec(0usize..8, 4..24),
    ) {
        let events = event_list(txns.len(), &raw);
        let (po, pimg, pseq) = run_mode(CommitMode::Pipelined, &txns, &events);
        let (so, simg, sseq) = run_mode(CommitMode::SingleLock, &txns, &events);
        prop_assert_eq!(&po, &so, "commit/abort decisions diverged: {:?}", events);
        prop_assert_eq!(pseq, sseq, "sequence assignment diverged");
        prop_assert_eq!(pimg, simg, "published images diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A commit-feed subscriber registered before the writers start —
    /// exactly how a replication standby attaches — sees a strictly
    /// consecutive sequence run: no gap, no reorder, no duplicate, under
    /// full pipelined concurrency.
    #[test]
    fn feed_sequences_are_gap_free_under_concurrent_writers(
        writers in 1usize..5,
        per_writer in 1usize..7,
    ) {
        let dir = tmpdir("feed");
        let rx = {
            let handle = Arc::new(
                DbHandle::create_durable(base_db(), dir.join("mad.wal"), FsyncPolicy::Group)
                    .unwrap(),
            );
            let rx = handle.subscribe_commits();
            let threads: Vec<_> = (0..writers)
                .map(|w| {
                    let handle = Arc::clone(&handle);
                    std::thread::spawn(move || {
                        for n in 0..per_writer {
                            // disjoint write-sets: writer w only touches key w
                            let mut t = Transaction::begin(&handle);
                            t.update_attr(
                                key_atom(&handle.committed(), w),
                                0,
                                Value::Int(i64::try_from(n).unwrap()),
                            )
                            .unwrap();
                            t.commit().unwrap();
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            rx
        }; // handle dropped: the feed sender disconnects and rx drains
        let seqs: Vec<u64> = rx.iter().map(|c| c.seq).collect();
        prop_assert_eq!(seqs.len(), writers * per_writer, "a commit never reached the feed");
        for (i, &s) in seqs.iter().enumerate() {
            prop_assert_eq!(
                s,
                u64::try_from(i).unwrap() + 1,
                "feed gap or reorder at position {}: {:?}", i, seqs
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An fsync failure injected mid-pipeline never panics a committing
    /// thread: commits fail cleanly, and reopening the log recovers a
    /// consistent prefix that contains every commit that was acked.
    #[test]
    fn fsync_faults_mid_pipeline_fail_cleanly_and_preserve_acked_commits(
        writers in 1usize..4,
        per_writer in 2usize..6,
        fail_at in 1u64..8,
        group in any::<bool>(),
    ) {
        let dir = tmpdir("fault");
        let path = dir.join("mad.wal");
        let policy = if group { FsyncPolicy::Group } else { FsyncPolicy::PerCommit };
        let acked = Arc::new(AtomicUsize::new(0));
        {
            let handle =
                Arc::new(DbHandle::create_durable(base_db(), &path, policy).unwrap());
            prop_assert!(handle.set_wal_fault_plan(Some(FaultPlan {
                fail_append_at: None,
                fail_fsync_at: Some(fail_at),
            })));
            let threads: Vec<_> = (0..writers)
                .map(|w| {
                    let handle = Arc::clone(&handle);
                    let acked = Arc::clone(&acked);
                    std::thread::spawn(move || {
                        for n in 0..per_writer {
                            let mut t = Transaction::begin(&handle);
                            t.update_attr(
                                key_atom(&handle.committed(), w),
                                0,
                                Value::Int(i64::try_from(n).unwrap()),
                            )
                            .unwrap();
                            // the property under test: Ok or Err, never a
                            // panic — a poisoned log must surface as an
                            // error on every later commit too
                            if t.commit().is_ok() {
                                acked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                })
                .collect();
            for t in threads {
                prop_assert!(t.join().is_ok(), "a committing thread panicked");
            }
        }
        // recovery: must come up clean (recovery itself verifies the
        // gap-free sequence run) and cover at least every acked commit
        let handle = DbHandle::open_durable(&path, FsyncPolicy::Never).unwrap();
        let info = handle.recovery_info().unwrap();
        prop_assert!(
            info.commits_replayed >= u64::try_from(acked.load(Ordering::Relaxed)).unwrap(),
            "an acked commit vanished: {} acked, {} recovered",
            acked.load(Ordering::Relaxed),
            info.commits_replayed
        );
        prop_assert!(handle.committed().audit_referential_integrity().is_empty());
        drop(handle);
        std::fs::remove_dir_all(&dir).ok();
    }
}
