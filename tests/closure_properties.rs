//! Property tests for the closure theorems (1–3) of the paper: the result
//! of every molecule-type operation is a valid molecule type over the
//! correspondingly enlarged database. We verify this *experimentally* on
//! randomized databases: re-deriving `m_dom(md)` over DB′ must reproduce
//! the operator's result exactly, and every molecule must pass the
//! `mv_graph`/`total` check of Def. 6.

use mad::algebra::ops::Engine;
use mad::algebra::qual::{CmpOp, QualExpr};
use mad::algebra::structure::path;
use mad::algebra::{check_molecule, derive_molecules, DeriveOptions, Strategy as DStrategy};
use mad::workload::{generate_geo, GeoParams};
use proptest::prelude::*;

fn geo_params() -> impl Strategy<Value = GeoParams> {
    (2usize..12, 1usize..6, 1usize..6, 0.0f64..1.0, any::<u64>()).prop_map(
        |(states, edges_per_state, rivers, share, seed)| GeoParams {
            states,
            edges_per_state,
            rivers,
            edges_per_river: 4,
            share,
            cities: 2,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem (α): every derived molecule is valid and maximal (`total`).
    #[test]
    fn alpha_produces_valid_molecules(params in geo_params()) {
        let (db, _) = generate_geo(&params).unwrap();
        let md = path(db.schema(), &["state", "area", "edge", "point"]).unwrap();
        let ms = derive_molecules(&db, &md, &DeriveOptions::default()).unwrap();
        prop_assert_eq!(ms.len(), params.states);
        for m in &ms {
            check_molecule(&db, &md, m).unwrap();
        }
    }

    /// Theorem 2 (Σ): the restriction result is a valid molecule type over
    /// DB′ — re-derivation over the propagated types reproduces it.
    #[test]
    fn sigma_closure(params in geo_params(), threshold in 100.0f64..2000.0) {
        let (db, _) = generate_geo(&params).unwrap();
        let mut engine = Engine::new(db);
        let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
        let mt = engine.define("mt", md).unwrap();
        let r = engine
            .restrict(&mt, &QualExpr::cmp_const(0, 1, CmpOp::Gt, threshold))
            .unwrap();
        engine.verify_closure(&r).unwrap();
    }

    /// Theorem 3 (Π): branch pruning keeps totality.
    #[test]
    fn pi_closure(params in geo_params()) {
        let (db, _) = generate_geo(&params).unwrap();
        let mut engine = Engine::new(db);
        let md = path(engine.db().schema(), &["state", "area", "edge", "point"]).unwrap();
        let mt = engine.define("mt", md).unwrap();
        let r = engine.project(&mt, &["state", "area"], &[]).unwrap();
        engine.verify_closure(&r).unwrap();
        prop_assert_eq!(r.len(), mt.len());
    }

    /// Theorem 3 (Ω, Δ, Ψ): set operators stay closed, and the derived
    /// intersection equals the set-theoretic one.
    #[test]
    fn set_ops_closure_and_psi(params in geo_params(), cut in 200.0f64..1800.0) {
        let (db, _) = generate_geo(&params).unwrap();
        let mut engine = Engine::new(db);
        let md = path(engine.db().schema(), &["state", "area"]).unwrap();
        let mt = engine.define("mt", md).unwrap();
        let low = engine
            .restrict(&mt, &QualExpr::cmp_const(0, 1, CmpOp::Le, cut))
            .unwrap();
        let high = engine
            .restrict(&mt, &QualExpr::cmp_const(0, 1, CmpOp::Gt, cut))
            .unwrap();
        // Ω: disjoint halves rebuild the whole
        let u = engine.union(&low, &high, "u").unwrap();
        prop_assert_eq!(u.len(), mt.len());
        engine.verify_closure(&u).unwrap();
        // Δ: whole minus low = high
        let d = engine.difference(&mt, &low, "d").unwrap();
        prop_assert_eq!(d.len(), high.len());
        engine.verify_closure(&d).unwrap();
        // Ψ of disjoint halves is empty; Ψ(mt, low) = low
        let empty = engine.intersection(&low, &high, "e").unwrap();
        prop_assert_eq!(empty.len(), 0);
        let i = engine.intersection(&mt, &low, "i").unwrap();
        prop_assert_eq!(i.len(), low.len());
        engine.verify_closure(&i).unwrap();
    }

    /// Theorem 3 (X): the cartesian product is closed and has |mt1|·|mt2|
    /// molecules.
    #[test]
    fn product_closure(params in geo_params()) {
        let (db, _) = generate_geo(&params).unwrap();
        let mut engine = Engine::new(db);
        let md1 = path(engine.db().schema(), &["state", "area"]).unwrap();
        let md2 = path(engine.db().schema(), &["river", "net"]).unwrap();
        let mt1 = engine.define("a", md1).unwrap();
        let mt2 = engine.define("b", md2).unwrap();
        let x = engine.product(&mt1, &mt2, "x").unwrap();
        prop_assert_eq!(x.len(), mt1.len() * mt2.len());
        engine.verify_closure(&x).unwrap();
    }

    /// The three derivation strategies compute the same function `m_dom`.
    #[test]
    fn strategies_equivalent(params in geo_params()) {
        let (db, _) = generate_geo(&params).unwrap();
        for names in [
            ["state", "area", "edge", "point"],
            ["river", "net", "edge", "point"],
        ] {
            let md = path(db.schema(), &names).unwrap();
            let a = derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::PerRoot)).unwrap();
            let b = derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::LevelAtATime)).unwrap();
            let c = derive_molecules(&db, &md, &DeriveOptions::with_strategy(DStrategy::Parallel(3))).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &c);
        }
    }

    /// Pushdown evaluation ≡ naive derive-then-filter (benchmark B4's
    /// correctness precondition).
    #[test]
    fn pushdown_equivalent(params in geo_params(), threshold in 100.0f64..2000.0) {
        let (db, _) = generate_geo(&params).unwrap();
        let mut engine = Engine::new(db);
        engine
            .create_index("state", "hectare", mad::storage::IndexKind::Ordered)
            .unwrap();
        let md = path(engine.db().schema(), &["state", "area", "edge"]).unwrap();
        let qual = QualExpr::cmp_const(0, 1, CmpOp::Gt, threshold);
        let pushed = engine
            .evaluate_restricted(&md, &qual, DStrategy::PerRoot)
            .unwrap();
        let naive = engine
            .evaluate_filtered(&md, &qual, DStrategy::PerRoot)
            .unwrap();
        prop_assert_eq!(pushed, naive);
    }
}
